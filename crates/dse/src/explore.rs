//! The unified design-space explorer: one [`SearchSpace`] spanning the
//! per-layer-class strategy axes, the optional pipeline axes
//! `(stages, microbatches, schedule)`, and the optional serve axes
//! (decode batch), and one [`Explorer`] that evaluates every candidate
//! through `madmax_engine::Scenario` — in parallel on a scoped worker
//! pool — and returns a single [`SearchOutcome`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use madmax_core::IterationReport;
use madmax_engine::{EngineError, Scenario};
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, ModelArch};
use madmax_obs::{
    CandidateEvent, CandidateOutcome, LatencyHistogram, NullSink, ProgressSink, SearchTelemetry,
    WorkerStats,
};
use madmax_parallel::{HierStrategy, PipelineConfig, PipelineSchedule, Plan, Workload};

/// Fallback sink when no [`ProgressSink`] is attached.
static NULL_SINK: NullSink = NullSink;

/// Classifies one evaluation result for telemetry and progress events.
fn classify(result: &Result<IterationReport, EngineError>) -> CandidateOutcome {
    match result {
        Ok(_) => CandidateOutcome::Ok,
        Err(e) if e.is_oom() => CandidateOutcome::OutOfMemory,
        Err(e) if e.is_unmappable_pipeline() => CandidateOutcome::Unmappable,
        Err(_) => CandidateOutcome::Invalid,
    }
}

/// One worker's locally-accumulated telemetry (merged after the pool
/// joins, so the hot loop never contends on a lock).
#[derive(Debug, Default)]
struct WorkerLocal {
    stats: WorkerStats,
    latency: LatencyHistogram,
}

/// Distinct layer classes present in a model, in first-appearance order.
pub(crate) fn classes_in(model: &ModelArch) -> Vec<LayerClass> {
    let mut v: Vec<LayerClass> = Vec::new();
    for g in &model.groups {
        if !v.contains(&g.class) {
            v.push(g.class);
        }
    }
    v
}

/// Enumerates every per-class strategy assignment: the cartesian product of
/// `HierStrategy::enumerate_for` over `classes` (all classes in the model
/// when `None`), applied on top of `base`. This is the strategy axis of
/// the unified [`SearchSpace`].
pub(crate) fn strategy_combos(
    model: &ModelArch,
    classes: Option<&[LayerClass]>,
    base: &Plan,
) -> Vec<Plan> {
    let classes: Vec<LayerClass> = match classes {
        Some(c) => c.to_vec(),
        None => classes_in(model),
    };
    let per_class: Vec<Vec<HierStrategy>> = classes
        .iter()
        .map(|&c| HierStrategy::enumerate_for(c))
        .collect();
    let total: usize = per_class.iter().map(Vec::len).product();
    let mut plans = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut plan = base.clone();
        for (ci, choices) in per_class.iter().enumerate() {
            let choice = choices[idx % choices.len()];
            idx /= choices.len();
            plan = plan.with_strategy(classes[ci], choice);
        }
        plans.push(plan);
    }
    plans
}

/// The pipeline dimensions of a [`SearchSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineAxes {
    /// Pipeline depths to try (`1` = no pipelining; always worth including
    /// so the flat baseline is part of the same sweep).
    pub stages: Vec<usize>,
    /// Microbatch counts to try for pipelined configurations.
    pub microbatches: Vec<usize>,
    /// Schedules to try for pipelined configurations.
    pub schedules: Vec<PipelineSchedule>,
}

impl PipelineAxes {
    /// Axes fitted to `cluster`: power-of-two depths the device hierarchy
    /// can actually be split into (exactly the depths
    /// `madmax_pipeline`'s `stage_cluster` accepts), a standard microbatch
    /// ladder, and both schedules.
    pub fn default_for(cluster: &ClusterSpec) -> Self {
        let stages = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&p| p == 1 || madmax_pipeline::cost::stage_cluster(cluster, p).is_ok())
            .collect();
        Self {
            stages,
            microbatches: vec![4, 8, 16, 32],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
        }
    }
}

/// The serve dimensions of a [`SearchSpace`]: workload-side axes swept
/// jointly with the plan axes. Only meaningful when the explorer's
/// workload is [`Workload::Serve`]; each decode batch yields one workload
/// variant, and candidates are then compared by output tokens per second
/// (iteration times at different batch sizes are not comparable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeAxes {
    /// Decode (serving) batch sizes to try.
    pub decode_batch: Vec<usize>,
}

impl ServeAxes {
    /// A standard serving-batch ladder.
    pub fn batches(decode_batch: impl IntoIterator<Item = usize>) -> Self {
        Self {
            decode_batch: decode_batch.into_iter().collect(),
        }
    }
}

/// The unified design space: strategy axes x optional pipeline axes x
/// optional serve axes.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    /// Search per-layer-class hierarchical strategies (otherwise the FSDP
    /// baseline assignments are kept).
    pub search_strategies: bool,
    /// Restrict the strategy search to these classes (others keep the
    /// baseline assignment). `None` searches every class in the model.
    pub classes: Option<Vec<LayerClass>>,
    /// Pipeline dimensions to sweep jointly; `None` keeps every candidate
    /// flat.
    pub pipeline: Option<PipelineAxes>,
    /// Serve dimensions to sweep jointly (decode batch); `None` keeps the
    /// workload as configured.
    pub serve: Option<ServeAxes>,
    /// Explore mappings beyond current memory capacities (the orange bars
    /// of Fig. 10).
    pub ignore_memory_limits: bool,
}

impl SearchSpace {
    /// The strategy-only space of the paper's Fig. 10/18 joint search:
    /// every per-class assignment, no pipeline axes.
    pub fn strategies() -> Self {
        Self {
            search_strategies: true,
            ..Self::default()
        }
    }

    /// A pipeline space fitted to `cluster` (depths it can split into,
    /// both schedules), with the per-class strategies held at the
    /// baseline.
    pub fn pipeline_for(cluster: &ClusterSpec) -> Self {
        Self {
            pipeline: Some(PipelineAxes::default_for(cluster)),
            ..Self::default()
        }
    }

    /// Restricts the strategy search to `classes` (enables the strategy
    /// axes).
    #[must_use]
    pub fn with_classes(mut self, classes: Vec<LayerClass>) -> Self {
        self.search_strategies = true;
        self.classes = Some(classes);
        self
    }

    /// Attaches pipeline axes to the space.
    #[must_use]
    pub fn with_pipeline(mut self, axes: PipelineAxes) -> Self {
        self.pipeline = Some(axes);
        self
    }

    /// Attaches serve axes to the space.
    #[must_use]
    pub fn with_serve(mut self, axes: ServeAxes) -> Self {
        self.serve = Some(axes);
        self
    }

    /// Lifts the memory-capacity constraint.
    #[must_use]
    pub fn unconstrained(mut self) -> Self {
        self.ignore_memory_limits = true;
        self
    }

    /// Enables (or disables) the per-class strategy axes.
    #[must_use]
    pub fn with_strategies(mut self, on: bool) -> Self {
        self.search_strategies = on;
        self
    }
}

/// Result of one [`Explorer::explore`] run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The throughput-optimal plan found (pipeline config included when
    /// the space has pipeline axes).
    pub best_plan: Plan,
    /// The workload the best plan ran (differs from the explorer's
    /// workload only when serve axes varied it).
    pub best_workload: Workload,
    /// Its simulation report.
    pub best: IterationReport,
    /// The flat FSDP-baseline report for the same workload (the first
    /// serve-axis variant when serve axes are present).
    pub baseline: IterationReport,
    /// Candidate (plan, workload) combinations accounted for (simulated,
    /// OOM, unmappable, or invalid — nothing is silently dropped).
    pub evaluated: usize,
    /// Candidates rejected for memory infeasibility.
    pub oom: usize,
    /// Candidates rejected as unmappable pipelines (too few layers,
    /// indivisible device counts, ...).
    pub unmappable: usize,
    /// Candidates rejected for any other plan error (e.g. a strategy
    /// invalid for a layer class).
    pub invalid: usize,
    /// What the search did and where the time went: outcome counters
    /// (reconciling with [`SearchOutcome::evaluated`]), cache hit/miss
    /// snapshots from the shared cost tables, per-worker throughput, and
    /// the evaluation-latency histogram.
    pub telemetry: SearchTelemetry,
    /// The winner's verification report when [`Explorer::verify_winner`]
    /// was enabled (`None` otherwise). Its error/warning counts also land
    /// in [`SearchTelemetry::verify_errors`] /
    /// [`SearchTelemetry::verify_warnings`].
    pub verify: Option<madmax_verify::VerifyReport>,
}

impl SearchOutcome {
    /// Throughput improvement of the best plan over the FSDP baseline.
    /// For serve searches this compares output tokens/sec (batch sizes
    /// may differ); otherwise it is the iteration-time ratio.
    pub fn speedup(&self) -> f64 {
        match (
            self.best.serve_tokens_per_sec(),
            self.baseline.serve_tokens_per_sec(),
        ) {
            (Some(b), Some(base)) if base > 0.0 => b / base,
            _ => self.best.speedup_over(&self.baseline),
        }
    }

    /// Paper-style summary of the winning per-class strategies.
    pub fn winning_strategies(&self) -> String {
        self.best_plan.summary()
    }

    /// Whether a pipelined plan (rather than a flat mapping) won.
    pub fn pipeline_won(&self) -> bool {
        self.best_plan.pipeline_stages() > 1
    }
}

/// The unified, parallel design-space explorer.
///
/// # Examples
///
/// ```
/// use madmax_dse::{Explorer, SearchSpace};
/// use madmax_hw::catalog;
/// use madmax_model::ModelId;
/// use madmax_parallel::Workload;
///
/// let model = ModelId::DlrmA.build();
/// let system = catalog::zionex_dlrm_system();
/// let outcome = Explorer::new(&model, &system)
///     .workload(Workload::pretrain())
///     .space(SearchSpace::strategies())
///     .explore()
///     .unwrap();
/// assert!(outcome.speedup() >= 1.0);
/// ```
#[derive(Debug)]
pub struct Explorer<'a> {
    model: &'a ModelArch,
    system: &'a ClusterSpec,
    workload: Workload,
    space: SearchSpace,
    threads: Option<NonZeroUsize>,
    progress: Option<&'a dyn ProgressSink>,
    verify_winner: bool,
    analytic_serve: bool,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer over the strategy-only space for the
    /// pre-training workload, evaluating candidates on all available
    /// cores.
    pub fn new(model: &'a ModelArch, system: &'a ClusterSpec) -> Self {
        Self {
            model,
            system,
            workload: Workload::pretrain(),
            space: SearchSpace::strategies(),
            threads: None,
            progress: None,
            verify_winner: false,
            analytic_serve: true,
        }
    }

    /// Enables or disables the closed-form steady-state decode path for
    /// serve candidates (`madmax_core::steady`; on by default). The
    /// closed form is byte-identical to full simulation — searches return
    /// the same winners and reports either way — so this knob exists for
    /// A/B validation and as an escape hatch.
    #[must_use]
    pub fn analytic_serve(mut self, on: bool) -> Self {
        self.analytic_serve = on;
        self
    }

    /// Verifies the winner's trace and schedule with `madmax-verify`
    /// after the search: the full rule set (trace well-formedness,
    /// schedule legality, pipeline rules, critical path) runs once on the
    /// best candidate, the report lands in [`SearchOutcome::verify`], and
    /// its error/warning counts feed
    /// [`SearchTelemetry::verify_errors`] /
    /// [`SearchTelemetry::verify_warnings`]. One extra one-shot engine
    /// run; the per-candidate hot path is untouched.
    #[must_use]
    pub fn verify_winner(mut self, on: bool) -> Self {
        self.verify_winner = on;
        self
    }

    /// Attaches a [`ProgressSink`] receiving one
    /// [`CandidateEvent`] per evaluated candidate, live from whichever
    /// worker completes it, plus a summary per evaluation batch. The sink
    /// observes the search; it cannot change its outcome — reports are
    /// byte-identical with and without one attached.
    #[must_use]
    pub fn progress(mut self, sink: &'a dyn ProgressSink) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Sets the workload (default: [`Workload::pretrain`]).
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the design space (default: [`SearchSpace::strategies`]).
    #[must_use]
    pub fn space(mut self, space: SearchSpace) -> Self {
        self.space = space;
        self
    }

    /// Caps the worker pool at `n` threads (`1` forces a sequential run;
    /// `0` is treated as `1`). The default is
    /// [`std::thread::available_parallelism`]. Results are deterministic
    /// regardless of the thread count: candidates are reduced in
    /// enumeration order after evaluation.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero"));
        self
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let hw = self
            .threads
            .or_else(|| std::thread::available_parallelism().ok())
            .map_or(1, NonZeroUsize::get);
        hw.min(jobs).max(1)
    }

    /// The baseline plan every candidate is measured against.
    fn base_plan(&self) -> Plan {
        let mut plan = Plan::fsdp_baseline(self.model);
        plan.options.ignore_memory_limits = self.space.ignore_memory_limits;
        plan
    }

    /// The model this explorer searches over (for the load search).
    pub(crate) fn model_arch(&self) -> &'a ModelArch {
        self.model
    }

    /// The system this explorer searches over (for the load search).
    pub(crate) fn cluster(&self) -> &'a ClusterSpec {
        self.system
    }

    /// The configured workload (for the load search).
    pub(crate) fn base_workload(&self) -> &Workload {
        &self.workload
    }

    /// The configured space (for the load search).
    pub(crate) fn search_space(&self) -> &SearchSpace {
        &self.space
    }

    /// The workload variants the serve axes induce (the configured
    /// workload alone when no axis applies).
    pub(crate) fn workload_variants(&self) -> Vec<Workload> {
        match (&self.space.serve, self.workload.serve_config()) {
            (Some(axes), Some(cfg)) if !axes.decode_batch.is_empty() => axes
                .decode_batch
                .iter()
                .map(|&b| Workload::serve(cfg.with_decode_batch(b)))
                .collect(),
            _ => vec![self.workload.clone()],
        }
    }

    /// Enumerates every candidate plan of the space: the cartesian product
    /// of the per-class strategy assignments and the pipeline axes.
    pub fn candidates(&self) -> Vec<Plan> {
        let base = self.base_plan();
        let strategy_plans = if self.space.search_strategies {
            strategy_combos(self.model, self.space.classes.as_deref(), &base)
        } else {
            vec![base.clone()]
        };
        let Some(axes) = &self.space.pipeline else {
            return strategy_plans;
        };
        let mut candidates = Vec::new();
        for strat_plan in &strategy_plans {
            for &p in &axes.stages {
                if p <= 1 {
                    candidates.push(strat_plan.clone());
                    continue;
                }
                for &m in &axes.microbatches {
                    for &sched in &axes.schedules {
                        candidates.push(strat_plan.clone().with_pipeline(PipelineConfig {
                            stages: p,
                            microbatches: m,
                            schedule: sched,
                        }));
                    }
                }
            }
        }
        candidates
    }

    /// Evaluates an explicit list of plans through the engine against
    /// this explorer's workload, preserving order. See
    /// [`Explorer::evaluate_with`].
    pub fn evaluate(&self, plans: &[Plan]) -> Vec<Result<IterationReport, EngineError>> {
        self.evaluate_with(&self.workload, plans)
    }

    /// Evaluates an explicit list of plans against one workload, in
    /// order. Plans are distributed over the worker pool; the result at
    /// index `i` is always plan `i`'s, so the output is deterministic
    /// regardless of the thread count.
    ///
    /// This is the search hot path: when every plan shares one set of
    /// options (always true for [`Explorer::candidates`]), one
    /// [`madmax_engine::CostTable`] is priced up front and shared
    /// read-only across the workers, and each worker recycles one
    /// [`madmax_engine::EngineScratch`] (trace arena, schedule, stream
    /// table) across the candidates it evaluates — so per-candidate work
    /// is assembly and simulation, not pricing and allocation.
    pub fn evaluate_with(
        &self,
        workload: &Workload,
        plans: &[Plan],
    ) -> Vec<Result<IterationReport, EngineError>> {
        self.evaluate_with_telemetry(workload, plans).0
    }

    /// [`Explorer::evaluate_with`], additionally returning the batch's
    /// [`SearchTelemetry`]: outcome counters tallied from the results,
    /// cache hit/miss snapshots taken from the shared cost tables after
    /// the pool joins, per-worker throughput, and the evaluation-latency
    /// histogram. The attached [`ProgressSink`] (if any) receives one
    /// event per candidate while the batch runs and the telemetry once it
    /// finishes.
    pub fn evaluate_with_telemetry(
        &self,
        workload: &Workload,
        plans: &[Plan],
    ) -> (Vec<Result<IterationReport, EngineError>>, SearchTelemetry) {
        let started = Instant::now();
        let workers = self.worker_count(plans.len());
        let scenario = Scenario::new(self.model, self.system)
            .workload_ref(workload)
            .analytic_serve(self.analytic_serve);
        // Mixed-option plan lists (e.g. ablating prefetch on/off) cannot
        // share a pricing context; they fall back to per-plan pricing.
        let uniform_options = plans.windows(2).all(|w| w[0].options == w[1].options);
        let table = uniform_options.then(|| scenario.price_plans(plans));
        let has_pipelined = plans
            .iter()
            .any(|p| p.pipeline.is_some_and(|c| c.is_pipelined()));
        let pipeline_table =
            (uniform_options && has_pipelined).then(|| scenario.price_pipeline_plans(plans));
        let sink: &dyn ProgressSink = self.progress.unwrap_or(&NULL_SINK);
        let total = plans.len();
        let run = |plan: &Plan, scratch: &mut madmax_engine::EngineScratch| {
            let mut s = Scenario::new(self.model, self.system)
                .plan_ref(plan)
                .workload_ref(workload)
                .analytic_serve(self.analytic_serve);
            if let Some(t) = &table {
                s = s.costs(t);
            }
            if let Some(t) = &pipeline_table {
                s = s.pipeline_costs(t);
            }
            s.run_in(scratch)
        };
        // Evaluates plan `i`, accounting it worker-locally and firing the
        // progress event from the evaluating thread.
        let evaluate_one =
            |i: usize, scratch: &mut madmax_engine::EngineScratch, local: &mut WorkerLocal| {
                let t0 = Instant::now();
                let result = run(&plans[i], scratch);
                let eval_us = t0.elapsed().as_secs_f64() * 1e6;
                local.stats.candidates += 1;
                local.stats.busy_ms += eval_us / 1e3;
                local.latency.record(eval_us);
                sink.candidate_completed(&CandidateEvent {
                    index: i,
                    total,
                    outcome: classify(&result),
                    eval_us,
                    iteration_ms: result.as_ref().ok().map(|r| r.iteration_time.as_ms()),
                });
                result
            };

        let mut telemetry = SearchTelemetry::default();
        let results: Vec<Result<IterationReport, EngineError>> = if workers <= 1 {
            let mut scratch = madmax_engine::EngineScratch::new();
            let mut local = WorkerLocal::default();
            let results = (0..plans.len())
                .map(|i| evaluate_one(i, &mut scratch, &mut local))
                .collect();
            telemetry.eval_latency = local.latency;
            telemetry.workers.push(local.stats);
            results
        } else {
            let next = AtomicUsize::new(0);
            let locals: Mutex<Vec<WorkerLocal>> = Mutex::new(Vec::with_capacity(workers));
            let (tx, rx) = mpsc::channel();
            std::thread::scope(|s| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let locals = &locals;
                    let evaluate_one = &evaluate_one;
                    s.spawn(move || {
                        let mut scratch = madmax_engine::EngineScratch::new();
                        let mut local = WorkerLocal {
                            stats: WorkerStats {
                                worker: w,
                                ..WorkerStats::default()
                            },
                            latency: LatencyHistogram::default(),
                        };
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= plans.len() {
                                break;
                            }
                            if tx
                                .send((i, evaluate_one(i, &mut scratch, &mut local)))
                                .is_err()
                            {
                                break;
                            }
                        }
                        locals.lock().unwrap().push(local);
                    });
                }
            });
            drop(tx);
            let mut slots: Vec<Option<Result<IterationReport, EngineError>>> =
                (0..plans.len()).map(|_| None).collect();
            for (i, r) in rx {
                slots[i] = Some(r);
            }
            let mut locals = locals.into_inner().unwrap();
            locals.sort_by_key(|l| l.stats.worker);
            for local in locals {
                telemetry.eval_latency.absorb(&local.latency);
                telemetry.workers.push(local.stats);
            }
            slots
                .into_iter()
                .map(|s| s.expect("every plan index was evaluated"))
                .collect()
        };

        telemetry.candidates = results.len() as u64;
        for result in &results {
            match classify(result) {
                CandidateOutcome::Ok => telemetry.ok += 1,
                CandidateOutcome::OutOfMemory => telemetry.oom += 1,
                CandidateOutcome::Unmappable => telemetry.unmappable += 1,
                CandidateOutcome::Invalid => telemetry.invalid += 1,
            }
        }
        if let Some(t) = &table {
            telemetry.flat_cache = t.stats();
            telemetry.steady_analytic.absorb(t.analytic_stats());
        }
        if let Some(t) = &pipeline_table {
            telemetry.pipeline_cache = t.stats();
            telemetry.report_memo = t.memo_stats();
            telemetry.steady_analytic.absorb(t.analytic_stats());
        }
        telemetry.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        sink.search_finished(&telemetry);
        (results, telemetry)
    }

    /// Exhaustively explores the space for the throughput-optimal
    /// (plan, workload-variant) combination.
    ///
    /// Without serve axes, candidates are ranked by iteration time (one
    /// fixed workload). With serve axes, the decode batch varies across
    /// candidates, so ranking uses output tokens per second.
    ///
    /// The baseline itself is always part of the outcome, so a feasible
    /// baseline guarantees a result and `speedup() >= 1`.
    ///
    /// # Errors
    ///
    /// Returns the baseline's error if even the flat FSDP baseline is
    /// infeasible.
    ///
    /// # Panics
    ///
    /// Panics when the space carries [`ServeAxes`] but the workload is
    /// not [`Workload::Serve`] — the axis would otherwise be silently
    /// ignored.
    pub fn explore(&self) -> Result<SearchOutcome, EngineError> {
        assert!(
            self.space.serve.is_none() || self.workload.serve_config().is_some(),
            "SearchSpace has serve axes but the explorer's workload is `{}`; \
             set Explorer::workload(Workload::serve(..))",
            self.workload
        );
        let started = Instant::now();
        let base_plan = self.base_plan();
        let variants = self.workload_variants();
        let base_workload = variants[0].clone();
        let baseline = Scenario::new(self.model, self.system)
            .plan_ref(&base_plan)
            .workload_ref(&base_workload)
            .run()?;
        let serve_ranked = variants.len() > 1
            || (self.space.serve.is_some() && self.workload.serve_config().is_some());
        let score = |r: &IterationReport| -> f64 {
            r.serve_tokens_per_sec()
                .unwrap_or_else(|| r.samples_per_sec())
        };

        let mut best_plan = base_plan.clone();
        let mut best_workload = base_workload.clone();
        let mut best = baseline.clone();
        let mut evaluated = 0usize;
        let (mut oom, mut unmappable, mut invalid) = (0usize, 0usize, 0usize);
        let mut telemetry = SearchTelemetry::default();
        for workload in &variants {
            let candidates = self.candidates();
            let candidate_count = candidates.len();
            evaluated += candidate_count;
            // The baseline combo re-appears among the candidates; reuse
            // its report instead of simulating it again. Candidates
            // inherit the baseline's options, so comparing assignments
            // and pipeline suffices.
            let to_run: Vec<Plan> = if *workload == base_workload {
                candidates
                    .into_iter()
                    .filter(|p| {
                        p.assignments != base_plan.assignments || p.pipeline != base_plan.pipeline
                    })
                    .collect()
            } else {
                candidates
            };
            let (results, mut variant_telemetry) = self.evaluate_with_telemetry(workload, &to_run);
            // Candidates resolved against the cached baseline report (no
            // fresh evaluation) still count toward the reconciliation
            // invariant: they are `ok` by construction.
            let skipped = (candidate_count - to_run.len()) as u64;
            variant_telemetry.candidates += skipped;
            variant_telemetry.ok += skipped;
            telemetry.absorb(&variant_telemetry);
            for (plan, result) in to_run.into_iter().zip(results) {
                match result {
                    Ok(r) => {
                        let better = if serve_ranked {
                            score(&r) > score(&best)
                        } else {
                            r.iteration_time < best.iteration_time
                        };
                        if better {
                            best = r;
                            best_plan = plan;
                            best_workload = workload.clone();
                        }
                    }
                    Err(e) if e.is_oom() => oom += 1,
                    Err(e) if e.is_unmappable_pipeline() => unmappable += 1,
                    Err(_) => invalid += 1,
                }
            }
        }

        let verify = if self.verify_winner {
            let (_, trace, sched) = Scenario::new(self.model, self.system)
                .plan_ref(&best_plan)
                .workload_ref(&best_workload)
                .run_with_trace()?;
            let report = madmax_verify::Verifier::for_plan(&best_plan, &best_workload)
                .verify(&trace, &sched);
            telemetry.verify_errors += report.error_count() as u64;
            telemetry.verify_warnings += report.warning_count() as u64;
            Some(report)
        } else {
            None
        };

        // End-to-end search wall-clock (including the baseline run),
        // not the sum of per-variant batch times.
        telemetry.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        Ok(SearchOutcome {
            best_plan,
            best_workload,
            best,
            baseline,
            evaluated,
            oom,
            unmappable,
            invalid,
            telemetry,
            verify,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::{catalog, DeviceScaling};
    use madmax_model::ModelId;
    use madmax_parallel::ServeConfig;

    #[test]
    fn strategy_space_beats_baseline_for_dlrm() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let r = Explorer::new(&model, &sys).explore().unwrap();
        assert!(r.speedup() >= 1.0);
        assert!(r.speedup() < 4.0, "speedup {:.2} suspicious", r.speedup());
        assert!(r.evaluated > 100);
        assert!(r.oom > 0, "some DLRM mappings must be infeasible");
        assert_eq!(r.unmappable, 0, "no pipeline axes in this space");
        assert_eq!(r.best_workload, Workload::pretrain());
    }

    #[test]
    fn unconstrained_space_at_least_matches_constrained() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let constrained = Explorer::new(&model, &sys).explore().unwrap();
        let unconstrained = Explorer::new(&model, &sys)
            .space(SearchSpace::strategies().unconstrained())
            .explore()
            .unwrap();
        assert!(unconstrained.best.iteration_time <= constrained.best.iteration_time);
        assert_eq!(unconstrained.oom, 0);
    }

    #[test]
    fn restricted_space_touches_only_listed_classes() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let r = Explorer::new(&model, &sys)
            .space(SearchSpace::strategies().with_classes(vec![LayerClass::Dense]))
            .explore()
            .unwrap();
        assert_eq!(
            r.best_plan.strategy_for(LayerClass::Embedding),
            Plan::fsdp_baseline(&model).strategy_for(LayerClass::Embedding)
        );
        assert_eq!(r.evaluated, 12);
    }

    #[test]
    fn joint_pipeline_space_wins_on_constrained_network() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
        let mut space = SearchSpace::pipeline_for(&sys);
        space.pipeline.as_mut().unwrap().microbatches = vec![16, 32];
        let r = Explorer::new(&model, &sys).space(space).explore().unwrap();
        assert!(r.pipeline_won(), "winner: {}", r.best_plan.summary());
        assert!(
            r.speedup() > 1.05,
            "pipeline should beat the pp=1 baseline, got {:.3}x",
            r.speedup()
        );
        assert!(r.evaluated > 8);
    }

    #[test]
    fn every_candidate_is_tallied() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let space = SearchSpace::strategies()
            .with_classes(vec![LayerClass::Transformer])
            .with_pipeline(PipelineAxes {
                stages: vec![1, 8],
                microbatches: vec![16],
                schedules: vec![PipelineSchedule::GPipe],
            });
        let r = Explorer::new(&model, &sys).space(space).explore().unwrap();
        // 12 transformer strategies x (pp=1 + pp=8x16xGPipe) = 24
        // candidates, each accounted for.
        assert_eq!(r.evaluated, 24);
        assert!(r.oom > 0, "replication-heavy combos must OOM: {r:?}");
        assert!(r.best.iteration_time <= r.baseline.iteration_time);
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let sequential = Explorer::new(&model, &sys).threads(1).explore().unwrap();
        let parallel = Explorer::new(&model, &sys).threads(8).explore().unwrap();
        assert_eq!(sequential.best_plan, parallel.best_plan);
        assert_eq!(sequential.best, parallel.best);
        assert_eq!(sequential.evaluated, parallel.evaluated);
        assert_eq!(sequential.oom, parallel.oom);
        assert_eq!(sequential.invalid, parallel.invalid);
    }

    #[test]
    fn evaluate_preserves_plan_order() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let explorer = Explorer::new(&model, &sys).threads(4);
        let plans = explorer.candidates();
        let par = explorer.evaluate(&plans);
        let seq: Vec<_> = plans
            .iter()
            .map(|p| {
                Scenario::new(&model, &sys)
                    .plan(p.clone())
                    .workload(Workload::pretrain())
                    .run()
            })
            .collect();
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.is_ok(), b.is_ok());
            if let (Ok(a), Ok(b)) = (a, b) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "serve axes")]
    fn serve_axes_without_a_serve_workload_are_rejected() {
        // A forgotten `.workload(Workload::serve(..))` must not silently
        // drop the requested decode-batch axis.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let _ = Explorer::new(&model, &sys)
            .space(SearchSpace::strategies().with_serve(ServeAxes::batches([256, 512])))
            .explore();
    }

    #[test]
    fn serve_axes_sweep_the_decode_batch() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let workload = Workload::serve(ServeConfig::new(512, 16));
        let space = SearchSpace::default()
            .with_serve(ServeAxes::batches([256, 512, 1024]))
            .with_pipeline(PipelineAxes {
                stages: vec![1, 8],
                microbatches: vec![8],
                schedules: vec![PipelineSchedule::GPipe],
            });
        let r = Explorer::new(&model, &sys)
            .workload(workload)
            .space(space)
            .explore()
            .unwrap();
        // (pp=1 + pp=8) x 3 batches = 6 candidates.
        assert_eq!(r.evaluated, 6);
        let cfg = r.best_workload.serve_config().unwrap();
        assert!([256, 512, 1024].contains(&cfg.decode_batch.unwrap()));
        assert!(r.best.serve_tokens_per_sec().unwrap() > 0.0);
        // The winner maximizes output tokens/sec across every variant.
        for &b in &[256usize, 512, 1024] {
            let variant = Workload::serve(ServeConfig::new(512, 16).with_decode_batch(b));
            for plan in Explorer::new(&model, &sys)
                .workload(variant.clone())
                .space(SearchSpace::default().with_pipeline(PipelineAxes {
                    stages: vec![1, 8],
                    microbatches: vec![8],
                    schedules: vec![PipelineSchedule::GPipe],
                }))
                .candidates()
            {
                if let Ok(rep) = Scenario::new(&model, &sys)
                    .plan(plan)
                    .workload(variant.clone())
                    .run()
                {
                    assert!(
                        rep.serve_tokens_per_sec().unwrap()
                            <= r.best.serve_tokens_per_sec().unwrap() + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn telemetry_reconciles_with_the_outcome_counters() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let r = Explorer::new(&model, &sys).explore().unwrap();
        let t = &r.telemetry;
        assert!(t.reconciles(), "telemetry does not reconcile: {t:?}");
        assert_eq!(t.candidates, r.evaluated as u64);
        assert_eq!(t.oom, r.oom as u64);
        assert_eq!(t.unmappable, r.unmappable as u64);
        assert_eq!(t.invalid, r.invalid as u64);
        // Every candidate flows through the shared flat cost table: the
        // price-vs-reuse events must cover all (candidate, class) pairs.
        assert!(t.flat_cache.total() > 0, "flat cache saw no traffic: {t:?}");
        assert!(t.flat_cache.hits > 0, "identical classes must reuse prices");
        assert!(t.eval_latency.count > 0);
        assert!(t.wall_ms > 0.0);
        assert!(!t.workers.is_empty());
        let by_worker: u64 = t.workers.iter().map(|w| w.candidates).sum();
        assert_eq!(by_worker, t.eval_latency.count);
    }

    #[test]
    fn pipeline_search_reports_memo_and_pipeline_cache_stats() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let space = SearchSpace::strategies()
            .with_classes(vec![LayerClass::Transformer])
            .with_pipeline(PipelineAxes {
                stages: vec![1, 8],
                microbatches: vec![16],
                schedules: vec![PipelineSchedule::GPipe],
            });
        let r = Explorer::new(&model, &sys).space(space).explore().unwrap();
        let t = &r.telemetry;
        assert!(t.reconciles());
        assert!(
            t.pipeline_cache.total() > 0,
            "pipelined candidates price through the shared table"
        );
        // The memo only records pipelined evaluations that reach assembly,
        // so hits can never exceed the number of evaluations.
        assert!(t.report_memo.hits <= t.eval_latency.count);
    }

    #[test]
    fn verified_winner_is_clean_and_counted_in_telemetry() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let space = SearchSpace::default().with_pipeline(PipelineAxes {
            stages: vec![1, 8],
            microbatches: vec![16],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
        });
        let r = Explorer::new(&model, &sys)
            .space(space)
            .verify_winner(true)
            .explore()
            .unwrap();
        let report = r.verify.as_ref().expect("verify option fills the report");
        assert!(report.is_clean(), "{report}");
        assert_eq!(r.telemetry.verify_errors, 0);
        assert_eq!(r.telemetry.verify_warnings, report.warning_count() as u64);
        let cp = report.critical_path.expect("schedule pass ran");
        assert!(cp.lower_bound <= r.best.iteration_time);
        // Off by default: no report, no counters.
        let quiet = Explorer::new(&model, &sys).explore().unwrap();
        assert!(quiet.verify.is_none());
        assert_eq!(quiet.telemetry.verify_errors, 0);
    }

    #[test]
    fn progress_sink_sees_every_candidate_at_any_thread_count() {
        use std::sync::atomic::AtomicU64;

        #[derive(Debug, Default)]
        struct CountingSink {
            events: AtomicU64,
            ok: AtomicU64,
            finished: AtomicU64,
        }
        impl ProgressSink for CountingSink {
            fn candidate_completed(&self, event: &CandidateEvent) {
                self.events.fetch_add(1, Ordering::Relaxed);
                if event.outcome == CandidateOutcome::Ok {
                    assert!(event.iteration_ms.is_some());
                    self.ok.fetch_add(1, Ordering::Relaxed);
                }
                assert!(event.index < event.total);
                assert!(event.eval_us >= 0.0);
            }
            fn search_finished(&self, telemetry: &SearchTelemetry) {
                assert!(telemetry.reconciles());
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
        }

        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let quiet = Explorer::new(&model, &sys).threads(1).explore().unwrap();
        for threads in [1, 4] {
            let sink = CountingSink::default();
            let r = Explorer::new(&model, &sys)
                .threads(threads)
                .progress(&sink)
                .explore()
                .unwrap();
            // One event per freshly-evaluated candidate (the baseline
            // duplicate is resolved from its cached report, sink-free).
            let fired = sink.events.load(Ordering::Relaxed);
            assert_eq!(fired, r.telemetry.eval_latency.count);
            assert_eq!(fired, r.evaluated as u64 - 1);
            assert_eq!(sink.ok.load(Ordering::Relaxed), r.telemetry.ok - 1);
            assert_eq!(sink.finished.load(Ordering::Relaxed), 1);
            // Attaching a sink must not perturb the search result.
            assert_eq!(r.best_plan, quiet.best_plan);
            assert_eq!(r.best, quiet.best);
        }
    }
}
