//! Failure-aware goodput search: rank deployment candidates by the
//! *effective* training throughput they sustain under a fault process,
//! not their fault-free iteration time.
//!
//! [`Explorer::explore_goodput`] sweeps the space's (plan, workload)
//! candidates against a [`FaultAxes`]: each candidate runs its
//! fault-free simulation once, prices a checkpoint write/restart from
//! its per-device memory breakdown (replicated plans carry fat
//! checkpoints, sharded plans thin ones), then evaluates the closed-form
//! Young/Daly expected goodput at every checkpoint interval on the
//! axes. The headline result is [`GoodputSearchOutcome::plan_flip`]:
//! as the fleet MTBF shrinks, the goodput-optimal plan diverges from
//! the latency-optimal one — exactly the failure-awareness the
//! fault-free explorer cannot see.

use madmax_engine::{EngineError, FaultSpec, GoodputReport, Scenario};
use madmax_fault::{expected_goodput, young_daly_interval};
use madmax_hw::units::Seconds;
use madmax_obs::SearchTelemetry;
use madmax_parallel::{Plan, Workload};

use crate::explore::Explorer;

/// The fault dimensions of a goodput search: one fault process (the
/// fleet MTBF must be set) and the checkpoint intervals to sweep.
#[derive(Debug, Clone)]
pub struct FaultAxes {
    /// The fault process. `fault.mtbf` is required;
    /// `fault.checkpoint_interval` is ignored when `intervals` is
    /// non-empty.
    pub fault: FaultSpec,
    /// Checkpoint intervals (seconds of useful work) to sweep per
    /// candidate. Empty sweeps a single point at the spec's interval
    /// (the Young/Daly optimum when that is `None` too).
    pub intervals: Vec<f64>,
}

impl FaultAxes {
    /// Axes evaluating `fault` at its own checkpoint interval (the
    /// Young/Daly optimum unless the spec pins one).
    pub fn new(fault: FaultSpec) -> Self {
        Self {
            fault,
            intervals: Vec::new(),
        }
    }

    /// Adds a checkpoint-interval sweep.
    #[must_use]
    pub fn with_intervals(mut self, intervals: impl IntoIterator<Item = f64>) -> Self {
        self.intervals = intervals.into_iter().collect();
        self
    }

    /// The per-candidate sweep: one spec per interval, or the base spec
    /// alone.
    fn sweep(&self) -> Vec<FaultSpec> {
        if self.intervals.is_empty() {
            vec![self.fault.clone()]
        } else {
            self.intervals
                .iter()
                .map(|&ci| self.fault.clone().with_checkpoint_interval(ci))
                .collect()
        }
    }
}

/// One candidate's checkpoint-interval sweep.
#[derive(Debug, Clone)]
pub struct GoodputCandidate {
    /// The candidate plan.
    pub plan: Plan,
    /// The workload variant it ran.
    pub workload: Workload,
    /// One goodput evaluation per swept interval, in axes order. Empty
    /// when the candidate failed to simulate.
    pub points: Vec<GoodputReport>,
    /// Index into [`GoodputCandidate::points`] of the best interval
    /// (highest effective throughput), if any.
    pub best_point: Option<usize>,
    /// The candidate's fault-free iteration time, when it simulated.
    pub iteration_time: Option<Seconds>,
    /// Why the candidate failed to simulate, when it did.
    pub error: Option<EngineError>,
}

impl GoodputCandidate {
    /// The candidate's score: effective (goodput-weighted) iterations
    /// per second at its best checkpoint interval (0 when it failed).
    pub fn score(&self) -> f64 {
        self.best_point
            .map_or(0.0, |i| self.points[i].effective_throughput)
    }
}

/// Result of one [`Explorer::explore_goodput`] run.
#[derive(Debug, Clone)]
pub struct GoodputSearchOutcome {
    /// Every candidate's sweep, in enumeration order.
    pub candidates: Vec<GoodputCandidate>,
    /// Index into [`GoodputSearchOutcome::candidates`] of the
    /// goodput-optimal winner.
    pub best_candidate: usize,
    /// Index of the *fault-free* (latency-optimal) winner: the candidate
    /// with the highest fault-free throughput, i.e. what the plain
    /// explorer would have picked.
    pub fault_free_best: usize,
    /// Goodput evaluations executed (points across all candidates).
    pub evaluated: usize,
    /// Search counters ([`SearchTelemetry::goodput_evals`] carries
    /// `evaluated`; outcome counters reconcile as in the plain search).
    pub telemetry: SearchTelemetry,
}

impl GoodputSearchOutcome {
    /// The goodput-optimal candidate.
    pub fn best(&self) -> &GoodputCandidate {
        &self.candidates[self.best_candidate]
    }

    /// The latency-optimal candidate (the fault-free explorer's pick).
    pub fn fault_free(&self) -> &GoodputCandidate {
        &self.candidates[self.fault_free_best]
    }

    /// Whether failure-awareness changed the winning plan: the
    /// goodput-optimal candidate differs from the latency-optimal one.
    pub fn plan_flip(&self) -> bool {
        self.best_candidate != self.fault_free_best
    }

    /// The winner's best effective throughput, iterations/second.
    pub fn best_effective_throughput(&self) -> f64 {
        self.best().score()
    }
}

impl Explorer<'_> {
    /// Searches the space for the deployment with the highest
    /// **failure-aware goodput** under `axes`' fault process.
    ///
    /// Candidates are the same (plan, workload-variant) combinations
    /// [`Explorer::explore`] evaluates. Each runs its fault-free
    /// simulation and prices its checkpoint once
    /// ([`Scenario::goodput`]); the remaining interval points reuse that
    /// report and checkpoint through the closed form, so a k-interval
    /// sweep costs one simulation, not k.
    ///
    /// Ranking: highest [`GoodputCandidate::score`] — effective
    /// iterations/second at the best swept checkpoint interval.
    /// [`GoodputSearchOutcome::fault_free_best`] records what a
    /// fault-blind ranking would have picked, so
    /// [`GoodputSearchOutcome::plan_flip`] exposes divergence directly.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidFault`] for an invalid spec, a spec without
    /// an MTBF, or a non-positive interval; the first candidate's error
    /// when every candidate failed to simulate.
    pub fn explore_goodput(&self, axes: &FaultAxes) -> Result<GoodputSearchOutcome, EngineError> {
        axes.fault
            .validate()
            .map_err(|reason| EngineError::InvalidFault { reason })?;
        let Some(mtbf) = axes.fault.mtbf else {
            return Err(EngineError::InvalidFault {
                reason: "goodput search needs a fatal-fault MTBF (FaultSpec::mtbf)".to_owned(),
            });
        };
        for &ci in &axes.intervals {
            if !ci.is_finite() || ci <= 0.0 {
                return Err(EngineError::InvalidFault {
                    reason: format!("checkpoint interval {ci} must be finite and positive"),
                });
            }
        }
        let started = std::time::Instant::now();
        let sweep = axes.sweep();
        let mut candidates = Vec::new();
        let mut evaluated = 0usize;
        let mut telemetry = SearchTelemetry::default();
        for workload in self.workload_variants() {
            for plan in self.candidates() {
                let scenario = Scenario::new(self.model_arch(), self.cluster())
                    .plan_ref(&plan)
                    .workload_ref(&workload);
                // One simulation + one checkpoint pricing per candidate;
                // every interval point is closed-form on top of it.
                telemetry.candidates += 1;
                let base = match scenario.goodput(&sweep[0]) {
                    Ok(o) => o,
                    Err(e) => {
                        if e.is_oom() {
                            telemetry.oom += 1;
                        } else if e.is_unmappable_pipeline() {
                            telemetry.unmappable += 1;
                        } else {
                            telemetry.invalid += 1;
                        }
                        candidates.push(GoodputCandidate {
                            plan: plan.clone(),
                            workload: workload.clone(),
                            points: Vec::new(),
                            best_point: None,
                            iteration_time: None,
                            error: Some(e),
                        });
                        continue;
                    }
                };
                telemetry.ok += 1;
                evaluated += 1;
                let iter_time = base.report.iteration_time;
                let write = base.ckpt.write.as_secs();
                let restart = base.ckpt.restart.as_secs();
                let mut points = vec![base.goodput];
                for spec in &sweep[1..] {
                    let interval = spec
                        .checkpoint_interval
                        .unwrap_or_else(|| young_daly_interval(write, mtbf));
                    points.push(expected_goodput(
                        iter_time.as_secs(),
                        write,
                        restart + spec.recovery,
                        mtbf,
                        interval,
                    ));
                    evaluated += 1;
                }
                let best_point = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.effective_throughput.total_cmp(&b.effective_throughput)
                    })
                    .map(|(i, _)| i);
                candidates.push(GoodputCandidate {
                    plan: plan.clone(),
                    workload: workload.clone(),
                    points,
                    best_point,
                    iteration_time: Some(iter_time),
                    error: None,
                });
            }
        }

        let ranked = |key: fn(&GoodputCandidate) -> f64| {
            candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.points.is_empty())
                .max_by(|(_, a), (_, b)| key(a).total_cmp(&key(b)))
                .map(|(i, _)| i)
        };
        let best_candidate = ranked(GoodputCandidate::score);
        let fault_free_best = ranked(|c| c.points.first().map_or(0.0, |p| p.fault_free_throughput));
        telemetry.goodput_evals = evaluated as u64;
        telemetry.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        match (best_candidate, fault_free_best) {
            (Some(best_candidate), Some(fault_free_best)) => Ok(GoodputSearchOutcome {
                candidates,
                best_candidate,
                fault_free_best,
                evaluated,
                telemetry,
            }),
            _ => {
                // Every candidate failed to simulate.
                Err(candidates
                    .into_iter()
                    .next()
                    .and_then(|c| c.error)
                    .unwrap_or(EngineError::InvalidFault {
                        reason: "the search space is empty".to_owned(),
                    }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SearchSpace;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    fn axes(mtbf: f64) -> FaultAxes {
        FaultAxes::new(FaultSpec::fatal(mtbf, 60.0, 7))
    }

    #[test]
    fn goodput_search_sweeps_intervals_and_ranks_by_effective_throughput() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let explorer = Explorer::new(&model, &sys).space(SearchSpace::default());
        let a = axes(3600.0).with_intervals([10.0, 120.0, 1800.0]);
        let r = explorer.explore_goodput(&a).unwrap();
        assert_eq!(r.candidates.len(), 1, "default space = baseline plan only");
        assert_eq!(r.evaluated, 3);
        let best = r.best();
        assert!(best.error.is_none());
        assert_eq!(best.points.len(), 3);
        let bp = best.best_point.unwrap();
        for p in &best.points {
            assert!(p.effective_throughput <= best.points[bp].effective_throughput);
            assert!(p.goodput_fraction > 0.0 && p.goodput_fraction <= 1.0);
            assert!(p.effective_throughput <= p.fault_free_throughput);
        }
        assert!(r.best_effective_throughput() > 0.0);
        assert_eq!(r.telemetry.goodput_evals, 3);
        assert_eq!(r.telemetry.ok, 1);
        assert!(r.telemetry.reconciles());
    }

    #[test]
    fn interval_sweep_matches_per_interval_scenario_goodput() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let explorer = Explorer::new(&model, &sys).space(SearchSpace::default());
        let intervals = [30.0, 600.0];
        let r = explorer
            .explore_goodput(&axes(1800.0).with_intervals(intervals))
            .unwrap();
        let scenario = Scenario::new(&model, &sys);
        for (i, &ci) in intervals.iter().enumerate() {
            let direct = scenario
                .goodput(&FaultSpec::fatal(1800.0, 60.0, 7).with_checkpoint_interval(ci))
                .unwrap();
            let swept = &r.best().points[i];
            assert!((swept.goodput_fraction - direct.goodput.goodput_fraction).abs() < 1e-12);
            assert!((swept.interval - direct.goodput.interval).abs() < 1e-12);
        }
    }

    #[test]
    fn strategy_space_ranks_goodput_not_just_latency() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let explorer = Explorer::new(&model, &sys).space(SearchSpace::strategies());
        let r = explorer.explore_goodput(&axes(3600.0)).unwrap();
        assert!(r.candidates.len() > 1);
        // Both rankings land on simulated candidates.
        assert!(r.best().error.is_none());
        assert!(r.fault_free().error.is_none());
        // The fault-free pick is the iteration-time winner.
        let ff = r.fault_free().iteration_time.unwrap();
        for c in &r.candidates {
            if let Some(t) = c.iteration_time {
                assert!(ff.as_secs() <= t.as_secs() + 1e-12);
            }
        }
    }

    #[test]
    fn bad_axes_are_rejected_up_front() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let explorer = Explorer::new(&model, &sys).space(SearchSpace::default());
        let err = explorer
            .explore_goodput(&FaultAxes::new(FaultSpec::none()))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidFault { .. }), "{err}");
        let err = explorer
            .explore_goodput(&axes(3600.0).with_intervals([0.0]))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidFault { .. }), "{err}");
    }
}
