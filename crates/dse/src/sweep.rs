//! Exhaustive strategy sweeps for one layer class (the x-axes of
//! Figs. 11, 12, 14, 15, 17).

use madmax_core::IterationReport;
use madmax_engine::{EngineError, Scenario};
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, ModelArch};
use madmax_parallel::{HierStrategy, Plan, Workload};

/// Outcome of evaluating one strategy choice.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The strategy applied to the swept layer class.
    pub strategy: HierStrategy,
    /// The full plan evaluated.
    pub plan: Plan,
    /// Simulation result, or why the mapping is infeasible (OOM entries
    /// render as the gray bars of Fig. 11).
    pub outcome: Result<IterationReport, EngineError>,
}

impl SweepPoint {
    /// Throughput in samples/sec, `None` for infeasible points.
    pub fn throughput(&self) -> Option<f64> {
        self.outcome
            .as_ref()
            .ok()
            .map(IterationReport::samples_per_sec)
    }

    /// Whether this point ran out of memory.
    pub fn is_oom(&self) -> bool {
        matches!(&self.outcome, Err(e) if e.is_oom())
    }
}

/// Evaluates every hierarchical strategy valid for `class`, holding the
/// rest of `base_plan` fixed.
pub fn sweep_class(
    model: &ModelArch,
    cluster: &ClusterSpec,
    base_plan: &Plan,
    class: LayerClass,
    workload: &Workload,
) -> Vec<SweepPoint> {
    HierStrategy::enumerate_for(class)
        .into_iter()
        .map(|strategy| {
            let plan = base_plan.clone().with_strategy(class, strategy);
            let outcome = Scenario::new(model, cluster)
                .plan(plan.clone())
                .workload_ref(workload)
                .run();
            SweepPoint {
                strategy,
                plan,
                outcome,
            }
        })
        .collect()
}

/// The best point of a sweep by throughput (ignoring infeasible entries).
pub fn best_point(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points
        .iter()
        .filter(|p| p.throughput().is_some())
        .max_by(|a, b| {
            a.throughput()
                .unwrap_or(0.0)
                .partial_cmp(&b.throughput().unwrap_or(0.0))
                .expect("throughput is finite")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::Strategy;

    #[test]
    fn fig11_dense_sweep_shape() {
        // Fig. 11: over DLRM-A dense strategies, throughput varies widely,
        // (TP, DDP) is optimal among the paper's highlighted set, and plain
        // DDP is OOM.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let base = Plan::fsdp_baseline(&model);
        let points = sweep_class(
            &model,
            &sys,
            &base,
            LayerClass::Dense,
            &Workload::pretrain(),
        );
        assert_eq!(points.len(), 12);

        let get = |s: HierStrategy| points.iter().find(|p| p.strategy == s).unwrap();
        assert!(get(HierStrategy::flat(Strategy::Ddp)).is_oom());
        let tp_ddp = get(HierStrategy::two_level(Strategy::Tp, Strategy::Ddp));
        let fsdp = get(HierStrategy::flat(Strategy::Fsdp));
        assert!(tp_ddp.throughput().unwrap() > fsdp.throughput().unwrap());

        let best = best_point(&points).unwrap();
        assert!(best.throughput().unwrap() >= tp_ddp.throughput().unwrap());
    }

    #[test]
    fn sweeps_cover_feasible_and_infeasible() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let points = sweep_class(
            &model,
            &sys,
            &base,
            LayerClass::Transformer,
            &Workload::pretrain(),
        );
        assert!(
            points.iter().any(|p| p.is_oom()),
            "replication across nodes must OOM"
        );
        assert!(points.iter().any(|p| p.throughput().is_some()));
    }
}
