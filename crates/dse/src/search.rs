//! Joint strategy search: the optimizer behind Figs. 10, 17, and 18 —
//! "tuning parallelization strategies at the layer-type granularity".

use madmax_core::{simulate, IterationReport};
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, ModelArch};
use madmax_parallel::{HierStrategy, Plan, PlanError, Task};

/// Search configuration.
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Explore mappings beyond current memory capacities (the orange bars
    /// of Fig. 10).
    pub ignore_memory_limits: bool,
    /// Restrict the search to these classes (others keep the baseline
    /// assignment). `None` searches every class present in the model.
    pub classes: Option<Vec<LayerClass>>,
}

/// Result of a joint search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The throughput-optimal plan found.
    pub best_plan: Plan,
    /// Its simulation report.
    pub best: IterationReport,
    /// The FSDP-baseline report for the same workload.
    pub baseline: IterationReport,
    /// Plans evaluated.
    pub evaluated: usize,
    /// Plans rejected for memory infeasibility.
    pub oom: usize,
    /// Plans rejected for any other reason (invalid strategy/class
    /// combinations and the like) — `evaluated - oom - invalid` plans were
    /// actually simulated.
    pub invalid: usize,
}

impl SearchResult {
    /// Throughput improvement of the best plan over the FSDP baseline.
    pub fn speedup(&self) -> f64 {
        self.best.speedup_over(&self.baseline)
    }

    /// Paper-style summary of the winning per-class strategies.
    pub fn winning_strategies(&self) -> String {
        self.best_plan.summary()
    }
}

/// Distinct layer classes present in a model, in first-appearance order.
pub(crate) fn classes_in(model: &ModelArch) -> Vec<LayerClass> {
    let mut v: Vec<LayerClass> = Vec::new();
    for g in &model.groups {
        if !v.contains(&g.class) {
            v.push(g.class);
        }
    }
    v
}

/// Enumerates every per-class strategy assignment: the cartesian product of
/// `HierStrategy::enumerate_for` over `classes` (all classes in the model
/// when `None`), applied on top of `base`. Shared by [`optimize`] and the
/// pipeline-aware `optimize_pipeline`.
pub(crate) fn strategy_combos(
    model: &ModelArch,
    classes: Option<&[LayerClass]>,
    base: &Plan,
) -> Vec<Plan> {
    let classes: Vec<LayerClass> = match classes {
        Some(c) => c.to_vec(),
        None => classes_in(model),
    };
    let per_class: Vec<Vec<HierStrategy>> = classes
        .iter()
        .map(|&c| HierStrategy::enumerate_for(c))
        .collect();
    let total: usize = per_class.iter().map(Vec::len).product();
    let mut plans = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut plan = base.clone();
        for (ci, choices) in per_class.iter().enumerate() {
            let choice = choices[idx % choices.len()];
            idx /= choices.len();
            plan = plan.with_strategy(classes[ci], choice);
        }
        plans.push(plan);
    }
    plans
}

/// Exhaustively searches per-class hierarchical strategies for the
/// throughput-optimal plan.
///
/// # Errors
///
/// Returns the baseline's error if even the FSDP baseline is infeasible;
/// otherwise always finds at least the baseline itself.
pub fn optimize(
    model: &ModelArch,
    cluster: &ClusterSpec,
    task: &Task,
    options: &SearchOptions,
) -> Result<SearchResult, PlanError> {
    let mut base_plan = Plan::fsdp_baseline(model);
    base_plan.options.ignore_memory_limits = options.ignore_memory_limits;
    let baseline = simulate(model, cluster, &base_plan, task.clone())?;

    let candidates = strategy_combos(model, options.classes.as_deref(), &base_plan);

    let mut best_plan = base_plan.clone();
    let mut best = baseline.clone();
    let evaluated = candidates.len();
    let mut oom = 0usize;
    let mut invalid = 0usize;
    for plan in candidates {
        match simulate(model, cluster, &plan, task.clone()) {
            Ok(r) => {
                if r.iteration_time < best.iteration_time {
                    best = r;
                    best_plan = plan;
                }
            }
            Err(PlanError::OutOfMemory { .. }) => oom += 1,
            Err(_) => invalid += 1,
        }
    }

    Ok(SearchResult {
        best_plan,
        best,
        baseline,
        evaluated,
        oom,
        invalid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    #[test]
    fn optimized_beats_baseline_for_dlrm() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let r = optimize(&model, &sys, &Task::Pretraining, &SearchOptions::default()).unwrap();
        assert!(r.speedup() >= 1.0);
        assert!(r.speedup() < 4.0, "speedup {:.2} suspicious", r.speedup());
        assert!(r.evaluated > 100);
        assert!(r.oom > 0, "some DLRM mappings must be infeasible");
    }

    #[test]
    fn unconstrained_search_at_least_matches_constrained() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let constrained =
            optimize(&model, &sys, &Task::Pretraining, &SearchOptions::default()).unwrap();
        let unconstrained = optimize(
            &model,
            &sys,
            &Task::Pretraining,
            &SearchOptions {
                ignore_memory_limits: true,
                classes: None,
            },
        )
        .unwrap();
        assert!(unconstrained.best.iteration_time <= constrained.best.iteration_time);
        assert_eq!(unconstrained.oom, 0);
    }

    #[test]
    fn restricted_search_touches_only_listed_classes() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let r = optimize(
            &model,
            &sys,
            &Task::Pretraining,
            &SearchOptions {
                ignore_memory_limits: false,
                classes: Some(vec![LayerClass::Dense]),
            },
        )
        .unwrap();
        // Embedding stays at the baseline sharding.
        assert_eq!(
            r.best_plan.strategy_for(LayerClass::Embedding),
            Plan::fsdp_baseline(&model).strategy_for(LayerClass::Embedding)
        );
        assert_eq!(r.evaluated, 12);
    }
}
