//! Legacy strategy-only search API (the optimizer behind Figs. 10, 17,
//! and 18), now a thin deprecated shim over the unified
//! [`crate::Explorer`]. The shared (crate-private) candidate enumeration
//! `strategy_combos` lives here.

use madmax_core::IterationReport;
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, ModelArch};
use madmax_parallel::{HierStrategy, Plan, PlanError, Task};

use crate::explore::{Explorer, SearchSpace};

/// Search configuration.
#[deprecated(
    since = "0.2.0",
    note = "use madmax_dse::SearchSpace with madmax_dse::Explorer"
)]
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Explore mappings beyond current memory capacities (the orange bars
    /// of Fig. 10).
    pub ignore_memory_limits: bool,
    /// Restrict the search to these classes (others keep the baseline
    /// assignment). `None` searches every class present in the model.
    pub classes: Option<Vec<LayerClass>>,
}

/// Result of a joint search.
#[deprecated(
    since = "0.2.0",
    note = "use madmax_dse::SearchOutcome from madmax_dse::Explorer"
)]
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The throughput-optimal plan found.
    pub best_plan: Plan,
    /// Its simulation report.
    pub best: IterationReport,
    /// The FSDP-baseline report for the same workload.
    pub baseline: IterationReport,
    /// Plans evaluated.
    pub evaluated: usize,
    /// Plans rejected for memory infeasibility.
    pub oom: usize,
    /// Plans rejected for any other reason (invalid strategy/class
    /// combinations and the like) — `evaluated - oom - invalid` plans were
    /// actually simulated.
    pub invalid: usize,
}

#[allow(deprecated)]
impl SearchResult {
    /// Throughput improvement of the best plan over the FSDP baseline.
    pub fn speedup(&self) -> f64 {
        self.best.speedup_over(&self.baseline)
    }

    /// Paper-style summary of the winning per-class strategies.
    pub fn winning_strategies(&self) -> String {
        self.best_plan.summary()
    }
}

/// Distinct layer classes present in a model, in first-appearance order.
pub(crate) fn classes_in(model: &ModelArch) -> Vec<LayerClass> {
    let mut v: Vec<LayerClass> = Vec::new();
    for g in &model.groups {
        if !v.contains(&g.class) {
            v.push(g.class);
        }
    }
    v
}

/// Enumerates every per-class strategy assignment: the cartesian product of
/// `HierStrategy::enumerate_for` over `classes` (all classes in the model
/// when `None`), applied on top of `base`. This is the strategy axis of
/// the unified [`crate::SearchSpace`].
pub(crate) fn strategy_combos(
    model: &ModelArch,
    classes: Option<&[LayerClass]>,
    base: &Plan,
) -> Vec<Plan> {
    let classes: Vec<LayerClass> = match classes {
        Some(c) => c.to_vec(),
        None => classes_in(model),
    };
    let per_class: Vec<Vec<HierStrategy>> = classes
        .iter()
        .map(|&c| HierStrategy::enumerate_for(c))
        .collect();
    let total: usize = per_class.iter().map(Vec::len).product();
    let mut plans = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut plan = base.clone();
        for (ci, choices) in per_class.iter().enumerate() {
            let choice = choices[idx % choices.len()];
            idx /= choices.len();
            plan = plan.with_strategy(classes[ci], choice);
        }
        plans.push(plan);
    }
    plans
}

/// Exhaustively searches per-class hierarchical strategies for the
/// throughput-optimal plan.
///
/// # Errors
///
/// Returns the baseline's error if even the FSDP baseline is infeasible;
/// otherwise always finds at least the baseline itself.
#[deprecated(
    since = "0.2.0",
    note = "use madmax_dse::Explorer::explore over SearchSpace::strategies()"
)]
#[allow(deprecated)]
pub fn optimize(
    model: &ModelArch,
    cluster: &ClusterSpec,
    task: &Task,
    options: &SearchOptions,
) -> Result<SearchResult, PlanError> {
    let mut space = SearchSpace::strategies();
    space.classes = options.classes.clone();
    space.ignore_memory_limits = options.ignore_memory_limits;
    let outcome = Explorer::new(model, cluster)
        .task(task.clone())
        .space(space)
        .explore()
        .map_err(PlanError::from)?;
    Ok(SearchResult {
        best_plan: outcome.best_plan,
        best: outcome.best,
        baseline: outcome.baseline,
        evaluated: outcome.evaluated,
        oom: outcome.oom,
        invalid: outcome.invalid + outcome.unmappable,
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    #[test]
    fn deprecated_optimize_matches_the_explorer() {
        // The legacy shim must keep returning exactly what the unified
        // explorer finds until it is removed.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let legacy = optimize(&model, &sys, &Task::Pretraining, &SearchOptions::default()).unwrap();
        let unified = Explorer::new(&model, &sys).explore().unwrap();
        assert_eq!(legacy.best_plan, unified.best_plan);
        assert_eq!(legacy.best, unified.best);
        assert_eq!(legacy.baseline, unified.baseline);
        assert_eq!(legacy.evaluated, unified.evaluated);
        assert_eq!(legacy.oom, unified.oom);
        assert_eq!(legacy.invalid, unified.invalid + unified.unmappable);
    }

    #[test]
    fn restricted_search_touches_only_listed_classes() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let r = optimize(
            &model,
            &sys,
            &Task::Pretraining,
            &SearchOptions {
                ignore_memory_limits: false,
                classes: Some(vec![LayerClass::Dense]),
            },
        )
        .unwrap();
        // Embedding stays at the baseline sharding.
        assert_eq!(
            r.best_plan.strategy_for(LayerClass::Embedding),
            Plan::fsdp_baseline(&model).strategy_for(LayerClass::Embedding)
        );
        assert_eq!(r.evaluated, 12);
    }
}
