//! Legacy pipeline-aware search API, now a thin deprecated shim over the
//! unified [`crate::Explorer`] with [`crate::PipelineAxes`] attached to
//! the space.

use madmax_core::IterationReport;
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, ModelArch};
use madmax_parallel::{PipelineSchedule, Plan, PlanError, Task};

use crate::explore::{Explorer, PipelineAxes, SearchSpace};

/// The (pipeline x strategy) design space to explore.
#[deprecated(
    since = "0.2.0",
    note = "use madmax_dse::SearchSpace with PipelineAxes and madmax_dse::Explorer"
)]
#[derive(Debug, Clone)]
pub struct PipelineSearchSpace {
    /// Pipeline depths to try (`1` = no pipelining; always worth including
    /// so the baseline is part of the same sweep).
    pub stages: Vec<usize>,
    /// Microbatch counts to try for pipelined configurations.
    pub microbatches: Vec<usize>,
    /// Schedules to try for pipelined configurations.
    pub schedules: Vec<PipelineSchedule>,
    /// Also search per-layer-class strategies (otherwise the FSDP baseline
    /// assignments are kept and only the pipeline dimensions move).
    pub search_strategies: bool,
    /// Restrict the per-class search to these classes.
    pub classes: Option<Vec<LayerClass>>,
    /// Explore mappings beyond current memory capacities.
    pub ignore_memory_limits: bool,
}

#[allow(deprecated)]
impl PipelineSearchSpace {
    /// A default space fitted to `cluster` (see
    /// [`PipelineAxes::default_for`]).
    pub fn default_for(cluster: &ClusterSpec) -> Self {
        let axes = PipelineAxes::default_for(cluster);
        Self {
            stages: axes.stages,
            microbatches: axes.microbatches,
            schedules: axes.schedules,
            search_strategies: false,
            classes: None,
            ignore_memory_limits: false,
        }
    }

    fn into_space(self) -> SearchSpace {
        SearchSpace {
            search_strategies: self.search_strategies,
            classes: self.classes,
            pipeline: Some(PipelineAxes {
                stages: self.stages,
                microbatches: self.microbatches,
                schedules: self.schedules,
            }),
            ignore_memory_limits: self.ignore_memory_limits,
        }
    }
}

/// Result of a joint pipeline search.
#[deprecated(
    since = "0.2.0",
    note = "use madmax_dse::SearchOutcome from madmax_dse::Explorer"
)]
#[derive(Debug, Clone)]
pub struct PipelineSearchResult {
    /// The throughput-optimal plan found (pipeline config included).
    pub best_plan: Plan,
    /// Its simulation report.
    pub best: IterationReport,
    /// The non-pipelined FSDP baseline for the same workload.
    pub baseline: IterationReport,
    /// Configurations evaluated.
    pub evaluated: usize,
    /// Configurations rejected for memory infeasibility.
    pub oom: usize,
    /// Configurations rejected as unmappable pipelines (too few layers,
    /// indivisible device counts, ...).
    pub unmappable: usize,
    /// Configurations rejected for any other plan error (e.g. a strategy
    /// combination invalid for a layer class).
    pub invalid: usize,
}

#[allow(deprecated)]
impl PipelineSearchResult {
    /// Throughput improvement of the best plan over the pp=1 baseline.
    pub fn speedup(&self) -> f64 {
        self.best.speedup_over(&self.baseline)
    }

    /// Whether pipelining (rather than a flat mapping) won the search.
    pub fn pipeline_won(&self) -> bool {
        self.best_plan.pipeline_stages() > 1
    }
}

/// Exhaustively searches `(stages, microbatches, schedule)` x per-class
/// strategies for the throughput-optimal pipelined mapping.
///
/// # Errors
///
/// Returns the baseline's error if even the non-pipelined FSDP baseline is
/// infeasible; otherwise always returns at least the baseline itself.
#[deprecated(
    since = "0.2.0",
    note = "use madmax_dse::Explorer::explore over a SearchSpace with PipelineAxes"
)]
#[allow(deprecated)]
pub fn optimize_pipeline(
    model: &ModelArch,
    cluster: &ClusterSpec,
    task: &Task,
    space: &PipelineSearchSpace,
) -> Result<PipelineSearchResult, PlanError> {
    let outcome = Explorer::new(model, cluster)
        .task(task.clone())
        .space(space.clone().into_space())
        .explore()
        .map_err(PlanError::from)?;
    Ok(PipelineSearchResult {
        best_plan: outcome.best_plan,
        best: outcome.best,
        baseline: outcome.baseline,
        evaluated: outcome.evaluated,
        oom: outcome.oom,
        unmappable: outcome.unmappable,
        invalid: outcome.invalid,
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    #[test]
    fn deprecated_optimize_pipeline_matches_the_explorer() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let space = PipelineSearchSpace {
            stages: vec![1, 8],
            microbatches: vec![8],
            schedules: vec![PipelineSchedule::OneFOneB],
            search_strategies: false,
            classes: None,
            ignore_memory_limits: false,
        };
        let legacy = optimize_pipeline(&model, &sys, &Task::Pretraining, &space).unwrap();
        let unified = Explorer::new(&model, &sys)
            .space(SearchSpace::default().with_pipeline(PipelineAxes {
                stages: vec![1, 8],
                microbatches: vec![8],
                schedules: vec![PipelineSchedule::OneFOneB],
            }))
            .explore()
            .unwrap();
        assert_eq!(legacy.best_plan, unified.best_plan);
        assert_eq!(legacy.best, unified.best);
        assert_eq!(legacy.evaluated, unified.evaluated);
        assert_eq!(legacy.evaluated, 2);
        assert_eq!(legacy.oom + legacy.unmappable + legacy.invalid, 0);
        assert!(legacy.best.iteration_time <= legacy.baseline.iteration_time);
    }

    #[test]
    fn default_space_pipelines_single_node_clusters() {
        // A single node of 8 devices splits within the node: the default
        // space must offer depths beyond 1 (same rule as stage_cluster).
        let one_node = catalog::zionex_dlrm_system().with_num_nodes(1);
        let space = PipelineSearchSpace::default_for(&one_node);
        assert_eq!(space.stages, vec![1, 2, 4, 8], "{:?}", space.stages);
        // An odd node count still only admits depth 1 among the powers of
        // two (7 nodes x 8 devices has no equal split).
        let odd = catalog::zionex_dlrm_system().with_num_nodes(7);
        assert_eq!(PipelineSearchSpace::default_for(&odd).stages, vec![1]);
    }
}
