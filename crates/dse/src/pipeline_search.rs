//! Joint pipeline-aware strategy search: sweeps the pipeline dimensions
//! (stage count, microbatch count, GPipe vs 1F1B) *alongside* the existing
//! per-layer-class hierarchical strategies, extending the Fig. 10 joint
//! optimizer with the pipeline-parallelism axis.

use madmax_core::IterationReport;
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, ModelArch};
use madmax_parallel::{PipelineConfig, PipelineSchedule, Plan, PlanError, Task};

/// The (pipeline x strategy) design space to explore.
#[derive(Debug, Clone)]
pub struct PipelineSearchSpace {
    /// Pipeline depths to try (`1` = no pipelining; always worth including
    /// so the baseline is part of the same sweep).
    pub stages: Vec<usize>,
    /// Microbatch counts to try for pipelined configurations.
    pub microbatches: Vec<usize>,
    /// Schedules to try for pipelined configurations.
    pub schedules: Vec<PipelineSchedule>,
    /// Also search per-layer-class strategies (otherwise the FSDP baseline
    /// assignments are kept and only the pipeline dimensions move).
    pub search_strategies: bool,
    /// Restrict the per-class search to these classes.
    pub classes: Option<Vec<LayerClass>>,
    /// Explore mappings beyond current memory capacities.
    pub ignore_memory_limits: bool,
}

impl PipelineSearchSpace {
    /// A default space fitted to `cluster`: power-of-two depths the device
    /// hierarchy can actually be split into (exactly the depths
    /// `madmax_pipeline`'s `stage_cluster` accepts), a standard microbatch
    /// ladder, and both schedules.
    pub fn default_for(cluster: &ClusterSpec) -> Self {
        let stages = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&p| p == 1 || madmax_pipeline::cost::stage_cluster(cluster, p).is_ok())
            .collect();
        Self {
            stages,
            microbatches: vec![4, 8, 16, 32],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
            search_strategies: false,
            classes: None,
            ignore_memory_limits: false,
        }
    }
}

/// Result of a joint pipeline search.
#[derive(Debug, Clone)]
pub struct PipelineSearchResult {
    /// The throughput-optimal plan found (pipeline config included).
    pub best_plan: Plan,
    /// Its simulation report.
    pub best: IterationReport,
    /// The non-pipelined FSDP baseline for the same workload.
    pub baseline: IterationReport,
    /// Configurations evaluated.
    pub evaluated: usize,
    /// Configurations rejected for memory infeasibility.
    pub oom: usize,
    /// Configurations rejected as unmappable pipelines (too few layers,
    /// indivisible device counts, ...).
    pub unmappable: usize,
    /// Configurations rejected for any other plan error (e.g. a strategy
    /// combination invalid for a layer class).
    pub invalid: usize,
}

impl PipelineSearchResult {
    /// Throughput improvement of the best plan over the pp=1 baseline.
    pub fn speedup(&self) -> f64 {
        self.best.speedup_over(&self.baseline)
    }

    /// Whether pipelining (rather than a flat mapping) won the search.
    pub fn pipeline_won(&self) -> bool {
        self.best_plan.pipeline_stages() > 1
    }
}

/// Enumerates the per-class strategy assignments of the space (shared with
/// the flat `optimize` search).
fn strategy_plans(model: &ModelArch, space: &PipelineSearchSpace, base: &Plan) -> Vec<Plan> {
    if !space.search_strategies {
        return vec![base.clone()];
    }
    crate::search::strategy_combos(model, space.classes.as_deref(), base)
}

/// Exhaustively searches `(stages, microbatches, schedule)` x per-class
/// strategies for the throughput-optimal pipelined mapping.
///
/// # Errors
///
/// Returns the baseline's error if even the non-pipelined FSDP baseline is
/// infeasible; otherwise always returns at least the baseline itself.
pub fn optimize_pipeline(
    model: &ModelArch,
    cluster: &ClusterSpec,
    task: &Task,
    space: &PipelineSearchSpace,
) -> Result<PipelineSearchResult, PlanError> {
    let mut base_plan = Plan::fsdp_baseline(model);
    base_plan.options.ignore_memory_limits = space.ignore_memory_limits;
    let baseline = madmax_pipeline::simulate(model, cluster, &base_plan, task.clone())?;

    let strategy_plans = strategy_plans(model, space, &base_plan);

    // Materialize the candidate list, then tally every outcome: a config
    // is either simulated, OOM, unmappable, or invalid — nothing is
    // silently dropped.
    let mut candidates: Vec<Plan> = Vec::new();
    for strat_plan in &strategy_plans {
        for &p in &space.stages {
            if p <= 1 {
                candidates.push(strat_plan.clone());
                continue;
            }
            for &m in &space.microbatches {
                for &sched in &space.schedules {
                    candidates.push(strat_plan.clone().with_pipeline(PipelineConfig {
                        stages: p,
                        microbatches: m,
                        schedule: sched,
                    }));
                }
            }
        }
    }

    let mut best_plan = base_plan.clone();
    let mut best = baseline.clone();
    let (mut oom, mut unmappable, mut invalid) = (0usize, 0usize, 0usize);
    let evaluated = candidates.len();
    for plan in &candidates {
        if *plan == base_plan {
            // Already simulated as `baseline` (and seeded into `best`).
            continue;
        }
        match madmax_pipeline::simulate(model, cluster, plan, task.clone()) {
            Ok(r) => {
                if r.iteration_time < best.iteration_time {
                    best = r;
                    best_plan = plan.clone();
                }
            }
            Err(PlanError::OutOfMemory { .. }) => oom += 1,
            Err(PlanError::InvalidPipeline { .. }) => unmappable += 1,
            Err(_) => invalid += 1,
        }
    }

    Ok(PipelineSearchResult {
        best_plan,
        best,
        baseline,
        evaluated,
        oom,
        unmappable,
        invalid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::{catalog, DeviceScaling};
    use madmax_model::ModelId;

    /// A bandwidth-starved variant of the LLM system: scale-out links cut
    /// 8x, the regime where FSDP's parameter gathers dominate and pipeline
    /// parallelism pays off.
    fn constrained_llm_system() -> madmax_hw::ClusterSpec {
        catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0))
    }

    #[test]
    fn pipeline_search_beats_flat_baseline_on_constrained_network() {
        let model = ModelId::Gpt3.build();
        let sys = constrained_llm_system();
        let mut space = PipelineSearchSpace::default_for(&sys);
        space.microbatches = vec![16, 32];
        let r = optimize_pipeline(&model, &sys, &Task::Pretraining, &space).unwrap();
        assert!(r.pipeline_won(), "winner: {}", r.best_plan.summary());
        assert!(
            r.speedup() > 1.05,
            "pipeline should beat the pp=1 baseline, got {:.3}x",
            r.speedup()
        );
        assert!(r.evaluated > 8);
    }

    #[test]
    fn search_includes_baseline_and_never_regresses() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let space = PipelineSearchSpace {
            stages: vec![1, 8],
            microbatches: vec![8],
            schedules: vec![PipelineSchedule::OneFOneB],
            search_strategies: false,
            classes: None,
            ignore_memory_limits: false,
        };
        let r = optimize_pipeline(&model, &sys, &Task::Pretraining, &space).unwrap();
        assert!(r.best.iteration_time <= r.baseline.iteration_time);
        assert!(r.speedup() >= 1.0);
        assert_eq!(r.evaluated, 2);
        assert_eq!(r.oom + r.unmappable + r.invalid, 0, "{r:?}");
    }

    #[test]
    fn default_space_pipelines_single_node_clusters() {
        // A single node of 8 devices splits within the node: the default
        // space must offer depths beyond 1 (same rule as stage_cluster).
        let one_node = catalog::zionex_dlrm_system().with_num_nodes(1);
        let space = PipelineSearchSpace::default_for(&one_node);
        assert_eq!(space.stages, vec![1, 2, 4, 8], "{:?}", space.stages);
        // An odd node count still only admits depth 1 among the powers of
        // two (7 nodes x 8 devices has no equal split).
        let odd = catalog::zionex_dlrm_system().with_num_nodes(7);
        assert_eq!(PipelineSearchSpace::default_for(&odd).stages, vec![1]);
    }

    #[test]
    fn strategy_search_tallies_every_candidate() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let space = PipelineSearchSpace {
            stages: vec![1, 8],
            microbatches: vec![16],
            schedules: vec![PipelineSchedule::GPipe],
            search_strategies: true,
            classes: Some(vec![madmax_model::LayerClass::Transformer]),
            ignore_memory_limits: false,
        };
        let r = optimize_pipeline(&model, &sys, &Task::Pretraining, &space).unwrap();
        // 12 transformer strategies x (pp=1 + pp=8x1x1) = 24 candidates,
        // each accounted for as simulated, OOM, unmappable, or invalid.
        assert_eq!(r.evaluated, 24);
        assert!(r.oom > 0, "replication-heavy combos must OOM: {r:?}");
        assert!(r.best.iteration_time <= r.baseline.iteration_time);
    }
}
