//! Future-technologies hardware scaling study (Insight 10, Figs. 19-20):
//! scale compute, memory capacity/bandwidth, and interconnect bandwidths
//! separately and concurrently, re-optimizing the parallelization strategy
//! on each scaled system.

use madmax_engine::EngineError;
use madmax_hw::{ClusterSpec, DeviceScaling};
use madmax_model::ModelArch;
use madmax_parallel::Workload;

use crate::explore::{Explorer, SearchOutcome};

/// Which capability is scaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingAxis {
    /// Peak FLOPS.
    Compute,
    /// HBM capacity.
    MemCapacity,
    /// HBM bandwidth.
    MemBandwidth,
    /// Intra-node interconnect bandwidth.
    IntraBandwidth,
    /// Inter-node interconnect bandwidth.
    InterBandwidth,
    /// Everything concurrently.
    All,
}

impl ScalingAxis {
    /// The six axes in the paper's presentation order.
    pub const ALL_AXES: [ScalingAxis; 6] = [
        ScalingAxis::Compute,
        ScalingAxis::MemCapacity,
        ScalingAxis::MemBandwidth,
        ScalingAxis::IntraBandwidth,
        ScalingAxis::InterBandwidth,
        ScalingAxis::All,
    ];

    /// The device-scaling knob for this axis at factor `x`.
    pub fn scaling(self, x: f64) -> DeviceScaling {
        match self {
            ScalingAxis::Compute => DeviceScaling::compute_only(x),
            ScalingAxis::MemCapacity => DeviceScaling::mem_capacity_only(x),
            ScalingAxis::MemBandwidth => DeviceScaling::mem_bw_only(x),
            ScalingAxis::IntraBandwidth => DeviceScaling::intra_bw_only(x),
            ScalingAxis::InterBandwidth => DeviceScaling::inter_bw_only(x),
            ScalingAxis::All => DeviceScaling::all(x),
        }
    }
}

impl std::fmt::Display for ScalingAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScalingAxis::Compute => "compute",
            ScalingAxis::MemCapacity => "memory capacity",
            ScalingAxis::MemBandwidth => "memory bandwidth",
            ScalingAxis::IntraBandwidth => "intra-node BW",
            ScalingAxis::InterBandwidth => "inter-node BW",
            ScalingAxis::All => "all concurrently",
        })
    }
}

/// Speedup of one scaled configuration over the optimized base system.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Which capability was scaled.
    pub axis: ScalingAxis,
    /// Scaling factor applied.
    pub factor: f64,
    /// Search outcome on the scaled system (strategies re-optimized, so
    /// capacity increases can unlock new mappings).
    pub result: SearchOutcome,
    /// Throughput speedup over the optimized baseline system.
    pub speedup: f64,
}

/// Runs the full study: every axis at `factor`, against the re-optimized
/// base system.
///
/// # Errors
///
/// Propagates [`EngineError`] if even the baseline mapping is infeasible.
pub fn scaling_study(
    model: &ModelArch,
    cluster: &ClusterSpec,
    workload: &Workload,
    factor: f64,
) -> Result<Vec<ScalingPoint>, EngineError> {
    let base = Explorer::new(model, cluster)
        .workload(workload.clone())
        .explore()?;
    ScalingAxis::ALL_AXES
        .iter()
        .map(|&axis| {
            let scaled = cluster.scaled(&axis.scaling(factor));
            let result = Explorer::new(model, &scaled)
                .workload(workload.clone())
                .explore()?;
            let speedup = base.best.iteration_time / result.best.iteration_time;
            Ok(ScalingPoint {
                axis,
                factor,
                result,
                speedup,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    #[test]
    fn insight10_dlrm_shape() {
        // DLRM-A: no single-axis 10x improvement comes close to 10x; the
        // all-axes point is the best of the set.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let points = scaling_study(&model, &sys, &Workload::pretrain(), 10.0).unwrap();
        assert_eq!(points.len(), 6);
        let get = |a: ScalingAxis| points.iter().find(|p| p.axis == a).unwrap().speedup;
        for axis in &ScalingAxis::ALL_AXES[..5] {
            assert!(
                get(*axis) < get(ScalingAxis::All),
                "{axis} should trail all-axes"
            );
            assert!(get(*axis) >= 0.99, "{axis} must not slow things down");
        }
        // Blocking All2All makes inter-node bandwidth the most valuable
        // single upgrade for DLRM-A (Insight 10).
        let single_best = ScalingAxis::ALL_AXES[..5]
            .iter()
            .copied()
            .max_by(|a, b| get(*a).partial_cmp(&get(*b)).unwrap())
            .unwrap();
        assert_eq!(single_best, ScalingAxis::InterBandwidth);
    }

    #[test]
    fn axis_scaling_constructors() {
        let s = ScalingAxis::Compute.scaling(10.0);
        assert_eq!(s.compute, 10.0);
        assert_eq!(s.inter_bw, 1.0);
        let s = ScalingAxis::All.scaling(2.0);
        assert_eq!(s.mem_bw, 2.0);
        assert_eq!(s.intra_bw, 2.0);
    }
}
