//! # madmax-dse
//!
//! Design-space exploration on top of the MAD-Max performance model:
//! exhaustive per-layer-class strategy sweeps (Figs. 11-15, 17), joint
//! throughput-optimal search (Figs. 10, 18), joint pipeline-aware search
//! over `(stages, microbatches, schedule)` x per-class strategies,
//! Pareto-frontier extraction (Figs. 1, 13, 16), and the
//! future-technologies hardware scaling study (Figs. 19-20).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pareto;
pub mod pipeline_search;
pub mod scaling;
pub mod search;
pub mod sweep;

pub use pareto::{pareto_frontier, ParetoPoint};
pub use pipeline_search::{optimize_pipeline, PipelineSearchResult, PipelineSearchSpace};
pub use scaling::{scaling_study, ScalingAxis, ScalingPoint};
pub use search::{optimize, SearchOptions, SearchResult};
pub use sweep::{best_point, sweep_class, SweepPoint};
