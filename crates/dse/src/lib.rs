//! # madmax-dse
//!
//! Design-space exploration on top of the MAD-Max performance model,
//! built on the unified `madmax_engine::Scenario` entry point: one
//! [`SearchSpace`] spanning the per-layer-class strategy axes and the
//! optional pipeline axes, one parallel [`Explorer`] producing a
//! [`SearchOutcome`] (Figs. 10, 18, and the joint pipeline study),
//! exhaustive per-class strategy sweeps (Figs. 11-15, 17),
//! Pareto-frontier extraction (Figs. 1, 13, 16), and the
//! future-technologies hardware scaling study (Figs. 19-20).
//!
//! Serve workloads search the same way: attach `ServeAxes` (decode
//! batch) to the space and the explorer ranks (plan, batch) combinations
//! by output tokens per second.
//!
//! The pre-`Explorer` entry points (`optimize`, `optimize_pipeline`) have
//! been removed after their deprecation release; `Explorer` over the
//! matching `SearchSpace` is the single search API.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod fault;
pub mod load;
pub mod pareto;
pub mod scaling;
pub mod sweep;

pub use explore::{Explorer, PipelineAxes, SearchOutcome, SearchSpace, ServeAxes};
pub use fault::{FaultAxes, GoodputCandidate, GoodputSearchOutcome};
pub use load::{LoadAxes, LoadCandidate, LoadPoint, LoadSearchOutcome};
pub use madmax_obs::{
    CandidateEvent, CandidateOutcome, JsonlSink, NullSink, ProgressSink, SearchTelemetry,
    StderrTicker,
};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use scaling::{scaling_study, ScalingAxis, ScalingPoint};
pub use sweep::{best_point, sweep_class, SweepPoint};
