//! # madmax-dse
//!
//! Design-space exploration on top of the MAD-Max performance model,
//! built on the unified `madmax_engine::Scenario` entry point: one
//! [`SearchSpace`] spanning the per-layer-class strategy axes and the
//! optional pipeline axes, one parallel [`Explorer`] producing a
//! [`SearchOutcome`] (Figs. 10, 18, and the joint pipeline study),
//! exhaustive per-class strategy sweeps (Figs. 11-15, 17),
//! Pareto-frontier extraction (Figs. 1, 13, 16), and the
//! future-technologies hardware scaling study (Figs. 19-20).
//!
//! The pre-`Explorer` entry points (`optimize`, `optimize_pipeline`) are
//! deprecated shims kept for one release.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod pareto;
pub mod pipeline_search;
pub mod scaling;
pub mod search;
pub mod sweep;

pub use explore::{Explorer, PipelineAxes, SearchOutcome, SearchSpace};
pub use pareto::{pareto_frontier, ParetoPoint};
#[allow(deprecated)]
pub use pipeline_search::{optimize_pipeline, PipelineSearchResult, PipelineSearchSpace};
pub use scaling::{scaling_study, ScalingAxis, ScalingPoint};
#[allow(deprecated)]
pub use search::{optimize, SearchOptions, SearchResult};
pub use sweep::{best_point, sweep_class, SweepPoint};
