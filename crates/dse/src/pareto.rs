//! Pareto-frontier extraction for resource/performance trade-off plots
//! (Figs. 1, 13, 16).

/// A candidate design point: lower `cost` and higher `value` are better.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint<T> {
    /// Resource axis (per-device memory, aggregate GPU-hours, ...).
    pub cost: f64,
    /// Performance axis (throughput, 1/elapsed-time, ...).
    pub value: f64,
    /// The design this point represents.
    pub payload: T,
}

impl<T> ParetoPoint<T> {
    /// Creates a point.
    pub fn new(cost: f64, value: f64, payload: T) -> Self {
        Self {
            cost,
            value,
            payload,
        }
    }

    /// Whether `self` dominates `other` (no worse on both axes, strictly
    /// better on at least one).
    pub fn dominates(&self, other: &Self) -> bool {
        self.cost <= other.cost
            && self.value >= other.value
            && (self.cost < other.cost || self.value > other.value)
    }
}

/// Extracts the Pareto frontier (minimize cost, maximize value), sorted by
/// increasing cost. Non-finite points are excluded.
pub fn pareto_frontier<T: Clone>(points: &[ParetoPoint<T>]) -> Vec<ParetoPoint<T>> {
    let mut sorted: Vec<&ParetoPoint<T>> = points
        .iter()
        .filter(|p| p.cost.is_finite() && p.value.is_finite())
        .collect();
    sorted.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .expect("finite")
            .then(b.value.partial_cmp(&a.value).expect("finite"))
    });
    let mut frontier: Vec<ParetoPoint<T>> = Vec::new();
    let mut best_value = f64::NEG_INFINITY;
    for p in sorted {
        if p.value > best_value {
            best_value = p.value;
            frontier.push(p.clone());
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<ParetoPoint<usize>> {
        v.iter()
            .enumerate()
            .map(|(i, &(c, val))| ParetoPoint::new(c, val, i))
            .collect()
    }

    #[test]
    fn frontier_keeps_nondominated() {
        let points = pts(&[(1.0, 1.0), (2.0, 3.0), (3.0, 2.0), (4.0, 4.0), (2.5, 3.0)]);
        let f = pareto_frontier(&points);
        let coords: Vec<(f64, f64)> = f.iter().map(|p| (p.cost, p.value)).collect();
        assert_eq!(coords, vec![(1.0, 1.0), (2.0, 3.0), (4.0, 4.0)]);
    }

    #[test]
    fn dominance_relation() {
        let a = ParetoPoint::new(1.0, 2.0, ());
        let b = ParetoPoint::new(2.0, 2.0, ());
        let c = ParetoPoint::new(1.0, 2.0, ());
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c), "equal points do not dominate");
    }

    #[test]
    fn frontier_is_monotone() {
        let points = pts(&[(5.0, 1.0), (1.0, 5.0), (3.0, 3.0)]);
        let f = pareto_frontier(&points);
        // With (1.0, 5.0) first, nothing else qualifies.
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].payload, 1);
    }

    #[test]
    fn nan_points_excluded() {
        let points = pts(&[(f64::NAN, 1.0), (1.0, 1.0)]);
        assert_eq!(pareto_frontier(&points).len(), 1);
    }

    #[test]
    fn every_input_is_dominated_by_or_on_frontier() {
        let points = pts(&[(1.0, 1.0), (2.0, 0.5), (1.5, 2.0), (3.0, 2.5), (2.9, 2.6)]);
        let f = pareto_frontier(&points);
        for p in &points {
            let covered = f
                .iter()
                .any(|fp| fp.dominates(p) || (fp.cost == p.cost && fp.value == p.value));
            assert!(covered, "point ({}, {}) uncovered", p.cost, p.value);
        }
    }
}
