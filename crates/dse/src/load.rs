//! SLO-constrained load search: rank deployment candidates by the
//! throughput they sustain under a continuous-batching request stream
//! without violating a tail-latency SLO.
//!
//! [`Explorer::explore_load`] sweeps the space's (plan, workload)
//! candidates against a ladder of arrival rates. Each candidate prices
//! its per-step cost model once (a handful of engine probes), then
//! simulates every rate through `madmax_serve`'s event-driven simulator.
//! A rate point is *feasible* when its p99 TTFT meets the SLO; a
//! candidate's score is the best feasible throughput, and the winner's
//! rate sweep is the latency-vs-throughput frontier (the serving
//! counterpart of the paper's iteration-time sweeps).

use madmax_engine::{EngineError, Scenario, SimMode};
use madmax_hw::units::Seconds;
use madmax_parallel::{ArrivalSpec, LoadSpec, Plan, Workload};
use madmax_serve::LoadReport;

use crate::explore::Explorer;

/// The load dimensions of a search: a base [`LoadSpec`] (queue, paging,
/// horizon knobs), the arrival rates to sweep, and the TTFT SLO.
#[derive(Debug, Clone)]
pub struct LoadAxes {
    /// The base load spec. A [`ArrivalSpec::Poisson`] or
    /// [`ArrivalSpec::Bursty`] arrival process is re-rated per sweep
    /// point; a trace is simulated as-is (one point).
    pub spec: LoadSpec,
    /// Arrival rates (requests/second) to sweep for Poisson or bursty
    /// arrivals. Ignored for trace arrivals.
    pub rates: Vec<f64>,
    /// p99 time-to-first-token SLO; `None` ranks by unconstrained
    /// throughput.
    pub slo_ttft_p99: Option<Seconds>,
}

impl LoadAxes {
    /// Axes sweeping `rates` over `spec` under `slo`.
    pub fn new(spec: LoadSpec, rates: impl IntoIterator<Item = f64>) -> Self {
        Self {
            spec,
            rates: rates.into_iter().collect(),
            slo_ttft_p99: None,
        }
    }

    /// Sets the p99 TTFT SLO.
    #[must_use]
    pub fn with_slo_ttft_p99(mut self, slo: Seconds) -> Self {
        self.slo_ttft_p99 = Some(slo);
        self
    }

    /// The spec at one sweep rate (Poisson/bursty re-rated; traces
    /// unchanged).
    fn spec_at(&self, rate: f64) -> LoadSpec {
        let mut spec = self.spec.clone();
        match &mut spec.arrivals {
            ArrivalSpec::Poisson { rate: r, .. } | ArrivalSpec::Bursty { rate: r, .. } => {
                *r = rate;
            }
            ArrivalSpec::Trace { .. } => {}
        }
        spec
    }

    /// The sweep points: every rate for Poisson/bursty arrivals, the
    /// trace itself (rate reported as 0) otherwise.
    fn sweep(&self) -> Vec<(f64, LoadSpec)> {
        match &self.spec.arrivals {
            ArrivalSpec::Poisson { .. } | ArrivalSpec::Bursty { .. } if !self.rates.is_empty() => {
                self.rates.iter().map(|&r| (r, self.spec_at(r))).collect()
            }
            _ => vec![(0.0, self.spec.clone())],
        }
    }
}

/// One (candidate, rate) simulation of a load search.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Arrival rate of this point, requests/second (0 for trace-driven
    /// arrivals).
    pub rate: f64,
    /// The simulated load report.
    pub report: LoadReport,
    /// Whether the report meets the search's TTFT SLO.
    pub feasible: bool,
}

/// One candidate's full rate sweep.
#[derive(Debug, Clone)]
pub struct LoadCandidate {
    /// The candidate plan.
    pub plan: Plan,
    /// The workload variant it served.
    pub workload: Workload,
    /// One point per swept rate, in rate order. Empty when the candidate
    /// failed to price.
    pub points: Vec<LoadPoint>,
    /// Index into [`LoadCandidate::points`] of the best feasible point
    /// (highest throughput meeting the SLO), if any.
    pub best_point: Option<usize>,
    /// Why the candidate failed to price, when it did.
    pub error: Option<EngineError>,
}

impl LoadCandidate {
    /// The candidate's score: completed tokens/second at its best
    /// feasible point (0 when nothing met the SLO).
    pub fn score(&self) -> f64 {
        self.best_point
            .map_or(0.0, |i| self.points[i].report.tokens_per_sec)
    }
}

/// Result of one [`Explorer::explore_load`] run.
#[derive(Debug, Clone)]
pub struct LoadSearchOutcome {
    /// Every candidate's sweep, in enumeration order.
    pub candidates: Vec<LoadCandidate>,
    /// Index into [`LoadSearchOutcome::candidates`] of the winner.
    pub best_candidate: usize,
    /// The SLO the search ranked under.
    pub slo_ttft_p99: Option<Seconds>,
    /// Load simulations executed (points across all candidates).
    pub evaluated: usize,
}

impl LoadSearchOutcome {
    /// The winning candidate.
    pub fn best(&self) -> &LoadCandidate {
        &self.candidates[self.best_candidate]
    }

    /// The winner's best feasible throughput, completed tokens/second.
    pub fn best_tokens_per_sec(&self) -> f64 {
        self.best().score()
    }

    /// The winner's latency-vs-throughput frontier: one
    /// `(rate, tokens_per_sec, ttft_p99_seconds)` row per swept rate
    /// that produced a first token.
    pub fn frontier(&self) -> Vec<(f64, f64, f64)> {
        self.best()
            .points
            .iter()
            .filter_map(|p| {
                let ttft = p.report.ttft?;
                Some((p.rate, p.report.tokens_per_sec, ttft.p99.as_secs()))
            })
            .collect()
    }
}

impl Explorer<'_> {
    /// Searches the space for the deployment sustaining the highest
    /// continuous-batching throughput under `axes`' TTFT SLO.
    ///
    /// Candidates are the same (plan, workload-variant) combinations
    /// [`Explorer::explore`] evaluates; each prices one per-step cost
    /// model and simulates every arrival rate in event mode (serially —
    /// one load run is itself a full request-stream simulation).
    /// Candidates whose pricing fails (OOM at the worst-case context,
    /// unmappable pipeline, ...) stay in the outcome with their error.
    ///
    /// Ranking: highest [`LoadCandidate::score`] — throughput at the
    /// best SLO-feasible rate. When *no* candidate meets the SLO at any
    /// rate, the search falls back to the lowest achieved p99 TTFT so a
    /// winner (and its frontier) still comes back.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidLoad`] when the workload is not serve or
    /// the spec is invalid; the first candidate's error when every
    /// candidate failed to price.
    ///
    /// # Panics
    ///
    /// Panics when the space carries serve axes but the workload is not
    /// serve (matching [`Explorer::explore`]).
    pub fn explore_load(&self, axes: &LoadAxes) -> Result<LoadSearchOutcome, EngineError> {
        assert!(
            self.search_space().serve.is_none() || self.base_workload().serve_config().is_some(),
            "SearchSpace has serve axes but the explorer's workload is `{}`; \
             set Explorer::workload(Workload::serve(..))",
            self.base_workload()
        );
        if self.base_workload().serve_config().is_none() {
            return Err(EngineError::InvalidLoad {
                reason: "load search needs a serve workload".to_owned(),
            });
        }
        self.base_spec_check(axes)?;
        let sweep = axes.sweep();
        let mut candidates = Vec::new();
        let mut evaluated = 0usize;
        for workload in self.workload_variants() {
            for plan in self.candidates() {
                let scenario = Scenario::new(self.model_arch(), self.cluster())
                    .plan_ref(&plan)
                    .workload_ref(&workload)
                    .analytic_serve(true);
                // Request shapes are rate-independent, so one cost model
                // serves the whole sweep.
                let costs = match scenario.price_load(&sweep[0].1) {
                    Ok(c) => c,
                    Err(e) => {
                        candidates.push(LoadCandidate {
                            plan: plan.clone(),
                            workload: workload.clone(),
                            points: Vec::new(),
                            best_point: None,
                            error: Some(e),
                        });
                        continue;
                    }
                };
                let mut points = Vec::with_capacity(sweep.len());
                for (rate, spec) in &sweep {
                    let outcome = scenario.serve_load_priced(spec, &costs, SimMode::Event, None)?;
                    evaluated += 1;
                    let feasible = axes
                        .slo_ttft_p99
                        .is_none_or(|slo| outcome.report.meets_ttft_slo(slo));
                    points.push(LoadPoint {
                        rate: *rate,
                        report: outcome.report,
                        feasible,
                    });
                }
                let best_point = points
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.feasible)
                    .max_by(|(_, a), (_, b)| {
                        a.report.tokens_per_sec.total_cmp(&b.report.tokens_per_sec)
                    })
                    .map(|(i, _)| i);
                candidates.push(LoadCandidate {
                    plan: plan.clone(),
                    workload: workload.clone(),
                    points,
                    best_point,
                    error: None,
                });
            }
        }

        let scored = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.best_point.is_some())
            .max_by(|(_, a), (_, b)| a.score().total_cmp(&b.score()))
            .map(|(i, _)| i);
        let best_candidate = match scored {
            Some(i) => i,
            None => {
                // Nothing met the SLO: fall back to the lowest achieved
                // p99 TTFT among candidates that simulated at all.
                let fallback = candidates
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.points.is_empty())
                    .min_by(|(_, a), (_, b)| min_ttft(a).total_cmp(&min_ttft(b)))
                    .map(|(i, _)| i);
                match fallback {
                    Some(i) => i,
                    None => {
                        // Every candidate failed to price.
                        return Err(candidates
                            .into_iter()
                            .next()
                            .and_then(|c| c.error)
                            .unwrap_or(EngineError::InvalidLoad {
                                reason: "the search space is empty".to_owned(),
                            }));
                    }
                }
            }
        };
        Ok(LoadSearchOutcome {
            candidates,
            best_candidate,
            slo_ttft_p99: axes.slo_ttft_p99,
            evaluated,
        })
    }

    /// Validates the axes' base spec up front so an invalid spec fails
    /// once with a clear error instead of once per candidate.
    fn base_spec_check(&self, axes: &LoadAxes) -> Result<(), EngineError> {
        axes.spec
            .validate()
            .map_err(|reason| EngineError::InvalidLoad { reason })?;
        if let ArrivalSpec::Poisson { .. } | ArrivalSpec::Bursty { .. } = &axes.spec.arrivals {
            if axes.rates.is_empty() {
                return Err(EngineError::InvalidLoad {
                    reason: "Poisson/bursty load axes need at least one arrival rate".to_owned(),
                });
            }
            for &r in &axes.rates {
                if !(r.is_finite() && r > 0.0) {
                    return Err(EngineError::InvalidLoad {
                        reason: format!("arrival rate {r} must be finite and positive"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A candidate's lowest achieved p99 TTFT across its sweep (infinite
/// when nothing produced a first token).
fn min_ttft(c: &LoadCandidate) -> f64 {
    c.points
        .iter()
        .filter_map(|p| p.report.ttft.map(|t| t.p99.as_secs()))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{PipelineAxes, SearchSpace};
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::{PipelineSchedule, ServeConfig};

    /// A Llama2 prefill at 256 tokens costs ~10 s on this system, so the
    /// interesting rate regime is fractional requests/second and SLOs are
    /// tens of seconds.
    fn axes(rates: &[f64], slo: f64) -> LoadAxes {
        LoadAxes::new(LoadSpec::poisson(rates[0], 16, 11), rates.iter().copied())
            .with_slo_ttft_p99(Seconds::new(slo))
    }

    #[test]
    fn load_search_ranks_by_slo_constrained_throughput() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let explorer = Explorer::new(&model, &sys)
            .workload(Workload::serve(
                ServeConfig::new(256, 32).with_decode_batch(8),
            ))
            .space(SearchSpace::default());
        // Idle at 0.02 req/s (p99 TTFT ~ one prefill), saturated at
        // 50 req/s (p99 TTFT ~ 65 s): the 30 s SLO admits only the idle
        // point even though the saturated one moves more tokens/second.
        let r = explorer.explore_load(&axes(&[0.02, 50.0], 30.0)).unwrap();
        assert_eq!(r.candidates.len(), 1, "default space = baseline plan only");
        assert_eq!(r.evaluated, 2);
        let best = r.best();
        assert!(best.error.is_none());
        assert_eq!(best.points.len(), 2);
        assert!(best.points[0].feasible && !best.points[1].feasible);
        assert_eq!(best.best_point, Some(0), "SLO overrides raw throughput");
        assert!(r.best_tokens_per_sec() > 0.0);
        let frontier = r.frontier();
        assert_eq!(frontier.len(), 2);
        assert!(
            frontier[1].2 > frontier[0].2,
            "saturation raises tail latency: {frontier:?}"
        );
        // Reports carry the conservation invariant through the search.
        for p in &best.points {
            assert_eq!(
                p.report.completed + p.report.rejected,
                p.report.arrivals,
                "no horizon: every request resolves"
            );
        }
    }

    #[test]
    fn infeasible_slo_falls_back_to_lowest_tail_latency() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let explorer = Explorer::new(&model, &sys).workload(Workload::serve(
            ServeConfig::new(256, 16).with_decode_batch(4),
        ));
        let a = axes(&[100.0, 400.0], 1e-12); // nothing can meet this
        let r = explorer.explore_load(&a).unwrap();
        assert!(r.best().best_point.is_none());
        assert!(r.best_tokens_per_sec() == 0.0);
        assert!(!r.frontier().is_empty(), "frontier still reported");
    }

    #[test]
    fn pipeline_axes_widen_the_load_space() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let explorer = Explorer::new(&model, &sys)
            .workload(Workload::serve(
                ServeConfig::new(256, 16).with_decode_batch(8),
            ))
            .space(SearchSpace::default().with_pipeline(PipelineAxes {
                stages: vec![1, 8],
                microbatches: vec![8],
                schedules: vec![PipelineSchedule::GPipe],
            }));
        let r = explorer.explore_load(&axes(&[0.02, 0.2], 500.0)).unwrap();
        assert_eq!(r.candidates.len(), 2);
        // Both candidates priced and swept (or recorded their error).
        for c in &r.candidates {
            assert!(c.error.is_some() || c.points.len() == 2);
        }
        assert!(r.best().best_point.is_some());
    }

    #[test]
    fn non_serve_workloads_are_rejected() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let err = Explorer::new(&model, &sys)
            .explore_load(&axes(&[100.0], 30.0))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidLoad { .. }), "{err}");
    }
}
