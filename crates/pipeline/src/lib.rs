//! # madmax-pipeline
//!
//! Pipeline-parallel execution modeling for MAD-Max: partitions a
//! [`madmax_model::ModelArch`] into balanced contiguous stages, splits the
//! global batch into microbatches, and replays the two canonical pipeline
//! schedules — GPipe (fill-drain) and 1F1B (one-forward-one-backward) — as
//! multi-stream [`madmax_core::Trace`]s whose inter-stage activation and
//! gradient transfers are priced as point-to-point ops by the existing
//! collective cost model (Section II-B of the paper; schedules after GPipe
//! and PipeDream-Flush).
//!
//! The flat SPMD engine in `madmax-core` rejects pipelined plans;
//! [`run_pipelined`] is the pipeline-aware engine, and the unified
//! `madmax_engine::Scenario` front door dispatches between the two based
//! on the plan's `PipelineConfig`.
//!
//! Serve workloads (`madmax_parallel::Workload::serve`) pipeline the
//! decode stream itself — each decode step is one microbatch unit flowing
//! through the stages ([`build_serve_trace_into`]) — so pipeline
//! parallelism hides inter-stage latency across the generated tokens.
//!
//! # The two-phase engine: price, then assemble
//!
//! Mirroring `madmax_core`'s flat engine, pipelined evaluation is split
//! into a **pricing** phase and an **assembly** phase so joint
//! design-space searches never pay for the same cost twice:
//!
//! 1. *Pricing* ([`table::PipelineCostTable`]) derives, once per search
//!    key, the balanced stage partition and stage sub-cluster (per
//!    depth), the per-stage sub-models and raw memory footprints (per
//!    depth × strategy assignment), and the per-stage [`StageCosts`] of
//!    every workload phase (per depth × assignment × microbatch count).
//! 2. *Assembly* ([`run_pipelined_cached`]) expands cached stage costs
//!    into the schedule's multi-stream trace inside a recycled
//!    `madmax_core::EngineScratch` — no `partition_model` run, no
//!    `ModelArch`/`ClusterSpec` clone, and no collective-model invocation
//!    per candidate. The `(microbatches × schedule × decode batch)` axes
//!    only affect assembly; for serve workloads the decode stream is
//!    schedule-independent, so the scratch memoizes the last report and
//!    collapses the schedule axis entirely.
//!
//! # Closed-form serve: collapsing the token axis
//!
//! For serve workloads the per-token decode schedule is an affine
//! max-plus recurrence: every decode op's duration is `base + rate·tok`
//! (the `rate` term is KV-cache stretch), and each token's starts are
//! maxima over the previous token's finishes. [`run_pipelined_cached`]
//! therefore hands long decodes to `madmax_core::steady`: only the
//! prefill plus a short explicit transient is assembled as a real trace;
//! the remaining tokens advance on exact integer grid arithmetic, and a
//! certified quadratic fast-forward jumps whole constant-binding regimes
//! at once (fit from three consecutive states, every max/min/branch of
//! one token step certified symbolically over the jump range, totals
//! advanced by closed-form series sums). The synthesized
//! [`madmax_core::IterationReport`] is byte-identical to full assembly —
//! when any exactness condition fails (non-affine durations, timestamps
//! or totals leaving the exact `f64` grid range, a binding change the
//! certificate cannot localize), the engine falls back layer by layer:
//! jump → explicit per-token stepping → full trace assembly. The
//! `steady-period` rule in `madmax-verify` cross-checks the simulated
//! steady-state inter-token period against the analytic period derived
//! from cached [`StageCosts`]. `Scenario::analytic_serve(false)` opts a
//! caller out entirely.
//!
//! **PipelineCostTable sharing contract**: `madmax-dse` builds one table
//! per search (`PipelineCostTable::ensure_plan` for every candidate,
//! before spawning workers) and shares it read-only (`&PipelineCostTable`
//! is `Sync`) across the worker pool. A table is priced for one
//! `(model, cluster, workload)` combination and one set of
//! pricing-relevant plan options (asserted), and produces reports
//! byte-identical to the one-shot [`run_pipelined`] path — error shapes
//! included.
//!
//! # Example
//!
//! ```
//! use madmax_hw::catalog;
//! use madmax_model::ModelId;
//! use madmax_parallel::{PipelineConfig, Plan, Workload};
//!
//! let model = ModelId::Llama2.build();
//! let system = catalog::llama_llm_system();
//! let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, 32));
//! let report =
//!     madmax_pipeline::run_pipelined_default(&model, &system, &plan, &Workload::pretrain())
//!         .unwrap();
//! let bubble = report.bubble_fraction.unwrap();
//! assert!(bubble > 0.0 && bubble < 0.5, "{bubble}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod memory;
pub mod partition;
pub mod schedule;
pub mod sim;
pub mod table;

pub use cost::{stage_cluster, stage_costs, stage_costs_in, stage_models, StageCosts};
pub use memory::{fold_pipeline_memory, pipeline_memory, stage_memory};
pub use partition::{partition_model, Stage, StageUnit};
pub use schedule::{build_pipeline_trace, build_pipeline_trace_into, build_serve_trace_into};
pub use sim::{
    build_pipelined_trace, run_pipelined, run_pipelined_cached, run_pipelined_default,
    run_pipelined_scratch,
};
pub use table::{PipelineCostTable, PricedPipelineRef};

/// The analytic GPipe bubble fraction for `p` uniform stages and `m`
/// microbatches: `(p - 1) / (m + p - 1)` (delegates to
/// [`madmax_parallel::PipelineConfig::ideal_bubble_fraction`]).
pub fn gpipe_bubble_fraction(stages: usize, microbatches: usize) -> f64 {
    madmax_parallel::PipelineConfig::gpipe(stages, microbatches).ideal_bubble_fraction()
}
