//! Stage partitioning: splits a model's layer sequence into `p` contiguous
//! stages whose per-microbatch execution times are as balanced as possible
//! (the classic linear-partition problem, solved exactly by dynamic
//! programming over layer instances).

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::PlanError;

/// A contiguous run of instances of one layer group assigned to a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageUnit {
    /// Index into `model.groups`.
    pub group: usize,
    /// Number of consecutive instances of that group in this stage.
    pub instances: usize,
}

/// One pipeline stage: an ordered list of layer-group runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// The stage's layers in execution order.
    pub units: Vec<StageUnit>,
}

impl Stage {
    /// Total layer instances in the stage.
    pub fn num_layers(&self) -> usize {
        self.units.iter().map(|u| u.instances).sum()
    }
}

/// Per-instance execution-time weight used for balancing: forward compute
/// seconds plus lookup seconds for one sample on one device. The constant
/// batch factor is identical across stages, so it cancels out of the
/// balance objective.
fn instance_weight(model: &ModelArch, cluster: &ClusterSpec, group: usize) -> f64 {
    let g = &model.groups[group];
    let flops = g.kind.flops_fwd_per_sample(model.context_length);
    let peak = cluster.device.peak.rate(model.compute_dtype);
    let compute = flops.value() / (peak.value() * cluster.utilization.compute);
    let lookup = g.kind.lookup_bytes_per_sample(model.context_length).value()
        / (cluster.device.hbm_bw.value() * cluster.utilization.hbm);
    compute + lookup
}

/// Splits `model` into `p` balanced contiguous stages.
///
/// # Errors
///
/// Returns [`PlanError::InvalidPipeline`] when the model has fewer layer
/// instances than requested stages, or `p` is zero.
pub fn partition_model(
    model: &ModelArch,
    cluster: &ClusterSpec,
    p: usize,
) -> Result<Vec<Stage>, PlanError> {
    if p == 0 {
        return Err(PlanError::InvalidPipeline {
            reason: "zero pipeline stages".to_owned(),
        });
    }
    // Expand groups into the per-instance unit sequence.
    let mut unit_group: Vec<usize> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for (gi, g) in model.groups.iter().enumerate() {
        let w = instance_weight(model, cluster, gi);
        for _ in 0..g.repeat {
            unit_group.push(gi);
            weights.push(w);
        }
    }
    let n = weights.len();
    if n < p {
        return Err(PlanError::InvalidPipeline {
            reason: format!("model has {n} layer instances but {p} stages were requested"),
        });
    }

    // prefix[i] = sum of weights[0..i].
    let mut prefix = vec![0.0; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + weights[i];
    }

    // dp[k][i]: minimal possible max-stage-weight splitting the first i
    // units into k stages; cut[k][i]: the start of the last stage.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; p + 1];
    let mut cut = vec![vec![0usize; n + 1]; p + 1];
    dp[0][0] = 0.0;
    for k in 1..=p {
        for i in k..=n {
            // The last stage covers units j..i; every earlier stage needs at
            // least one unit, so j >= k - 1.
            for j in (k - 1)..i {
                let cand = dp[k - 1][j].max(prefix[i] - prefix[j]);
                if cand < dp[k][i] {
                    dp[k][i] = cand;
                    cut[k][i] = j;
                }
            }
        }
    }

    // Reconstruct stage boundaries.
    let mut bounds = vec![n];
    let mut i = n;
    for k in (1..=p).rev() {
        i = cut[k][i];
        bounds.push(i);
    }
    bounds.reverse(); // [0, b1, ..., n]

    let mut stages = Vec::with_capacity(p);
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mut units: Vec<StageUnit> = Vec::new();
        for &g in &unit_group[lo..hi] {
            match units.last_mut() {
                Some(u) if u.group == g => u.instances += 1,
                _ => units.push(StageUnit {
                    group: g,
                    instances: 1,
                }),
            }
        }
        stages.push(Stage { units });
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    #[test]
    fn llm_partition_is_contiguous_and_complete() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        for p in [2usize, 4, 8] {
            let stages = partition_model(&model, &sys, p).unwrap();
            assert_eq!(stages.len(), p);
            let total: usize = stages.iter().map(Stage::num_layers).sum();
            let expect: usize = model.groups.iter().map(|g| g.repeat).sum();
            assert_eq!(total, expect, "p={p}");
            // Contiguity: group indices never decrease across stages.
            let mut last = 0usize;
            for s in &stages {
                for u in &s.units {
                    assert!(u.group >= last);
                    last = u.group;
                }
            }
        }
    }

    #[test]
    fn llm_stages_are_balanced() {
        // GPT-3: the 96 transformer blocks dominate; an 8-way split puts 12
        // blocks in each stage.
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let stages = partition_model(&model, &sys, 8).unwrap();
        let block_counts: Vec<usize> = stages
            .iter()
            .map(|s| {
                s.units
                    .iter()
                    .filter(|u| u.group == 1)
                    .map(|u| u.instances)
                    .sum()
            })
            .collect();
        for &c in &block_counts {
            assert!((11..=13).contains(&c), "{block_counts:?}");
        }
    }

    #[test]
    fn too_deep_pipeline_rejected() {
        let model = ModelId::DlrmA.build(); // a handful of layer groups
        let sys = catalog::zionex_dlrm_system();
        let err = partition_model(&model, &sys, 64).unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }), "{err}");
        assert!(err.to_string().contains("layer instances"));
    }
}
