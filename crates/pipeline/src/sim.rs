//! The pipeline-aware simulation entry point: partitions, prices, builds
//! the schedule trace, and replays it on `madmax-core`'s list scheduler.

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{Plan, PlanError, Task};

use madmax_core::collective::{CollectiveModel, HierarchicalNccl};
use madmax_core::compute::UtilizationModel;
use madmax_core::{schedule, IterationReport, Schedule, Trace};

use crate::cost::stage_costs;
use crate::memory::pipeline_memory;
use crate::partition::partition_model;
use crate::schedule::build_pipeline_trace;

/// A configured pipeline-parallel simulation.
///
/// Mirrors [`madmax_core::Simulation`] but executes the plan's
/// [`madmax_parallel::PipelineConfig`]: the model is split into balanced
/// contiguous stages, the global batch into microbatches, and the chosen
/// schedule (GPipe or 1F1B) is replayed on per-stage streams.
#[derive(Debug)]
pub struct PipelineSimulation<'a> {
    model: &'a ModelArch,
    cluster: &'a ClusterSpec,
    plan: &'a Plan,
    task: Task,
    collective_model: &'a dyn CollectiveModel,
    utilization: UtilizationModel,
}

static DEFAULT_COLLECTIVES: HierarchicalNccl = HierarchicalNccl;

impl<'a> PipelineSimulation<'a> {
    /// Creates a pipeline simulation with the default cost models.
    pub fn new(model: &'a ModelArch, cluster: &'a ClusterSpec, plan: &'a Plan, task: Task) -> Self {
        Self {
            model,
            cluster,
            plan,
            task,
            collective_model: &DEFAULT_COLLECTIVES,
            utilization: UtilizationModel::Constant,
        }
    }

    /// Replaces the collective cost model.
    #[must_use]
    pub fn with_collective_model(mut self, m: &'a dyn CollectiveModel) -> Self {
        self.collective_model = m;
        self
    }

    /// Replaces the compute-utilization model.
    #[must_use]
    pub fn with_utilization(mut self, u: UtilizationModel) -> Self {
        self.utilization = u;
        self
    }

    /// Runs the simulation, returning the report plus the trace and
    /// schedule for timeline rendering.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidPipeline`] when the pipeline cannot be mapped
    /// (too few layers, indivisible devices, bad microbatch count),
    /// [`PlanError::InvalidStrategy`] / [`PlanError::OutOfMemory`] as in the
    /// flat simulator.
    pub fn run_with_trace(&self) -> Result<(IterationReport, Trace, Schedule), PlanError> {
        let Some(cfg) = self.plan.pipeline.filter(|c| c.is_pipelined()) else {
            // Not pipelined: delegate to the flat SPMD simulator.
            return madmax_core::Simulation::new(
                self.model,
                self.cluster,
                self.plan,
                self.task.clone(),
            )
            .with_collective_model(self.collective_model)
            .with_utilization(self.utilization)
            .run_with_trace();
        };

        self.plan.validate_strategies(self.model)?;
        let stages = partition_model(self.model, self.cluster, cfg.stages)?;
        let memory = pipeline_memory(
            self.model,
            self.cluster,
            self.plan,
            &self.task,
            &stages,
            cfg.microbatches,
            cfg.schedule,
        )?;
        let costs = stage_costs(
            self.model,
            self.cluster,
            self.plan,
            &self.task,
            &stages,
            cfg.microbatches,
            self.collective_model,
            self.utilization,
        )?;
        let trace = build_pipeline_trace(&costs, &cfg, self.task.has_backward());
        let sched = schedule(&trace);
        let report = IterationReport::from_schedule(&trace, &sched, self.model, memory);
        Ok((report, trace, sched))
    }

    /// Runs the simulation end to end.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PipelineSimulation::run_with_trace`].
    pub fn run(&self) -> Result<IterationReport, PlanError> {
        let (report, _, _) = self.run_with_trace()?;
        Ok(report)
    }
}

/// Pipeline-aware one-shot wrapper: executes the plan's pipeline config
/// when present, and falls back to [`madmax_core::simulate`] otherwise.
///
/// # Errors
///
/// Same conditions as [`PipelineSimulation::run_with_trace`].
pub fn simulate(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: Task,
) -> Result<IterationReport, PlanError> {
    PipelineSimulation::new(model, cluster, plan, task).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::PipelineConfig;

    #[test]
    fn pipelined_llm_runs_and_reports_bubble() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let r = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        let bubble = r.bubble_fraction.expect("pipelined run reports bubble");
        // Fill/drain overhead plus transfer/parameter-fetch slack: at least
        // the analytic floor, and well below 1.
        assert!(
            bubble >= crate::gpipe_bubble_fraction(8, 16) - 1e-9,
            "{bubble}"
        );
        assert!(bubble < 0.75, "{bubble}");
        assert!(r.iteration_time.as_secs() > 0.0);
    }

    #[test]
    fn non_pipelined_plan_delegates_to_flat_simulator() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let flat = madmax_core::simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        let piped = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        assert_eq!(flat, piped);
        assert!(piped.bubble_fraction.is_none());
    }

    #[test]
    fn flat_simulator_rejects_pipelined_plans() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let err = madmax_core::simulate(&model, &sys, &plan, Task::Pretraining).unwrap_err();
        assert!(
            matches!(err, PlanError::PipelinedPlan { stages: 8 }),
            "{err}"
        );
    }

    #[test]
    fn more_microbatches_shrink_the_bubble() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let mut last = f64::INFINITY;
        for m in [4usize, 16, 64] {
            let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, m));
            let r = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
            let bubble = r.bubble_fraction.unwrap();
            assert!(bubble < last, "m={m}: {bubble} vs {last}");
            last = bubble;
        }
    }

    #[test]
    fn indivisible_stage_counts_rejected() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system(); // 256 nodes
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8));
        let err = simulate(&model, &sys, &plan, Task::Pretraining).unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }), "{err}");
    }

    #[test]
    fn pipeline_inference_runs_forward_only() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let infer = simulate(&model, &sys, &plan, Task::Inference).unwrap();
        let train = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        assert!(infer.iteration_time < train.iteration_time);
        use madmax_parallel::CollectiveKind;
        assert!(!infer
            .comm_by_collective
            .contains_key(&CollectiveKind::ReduceScatter));
    }
}
