//! The pipeline-aware execution engine: partitions, prices, builds the
//! schedule trace, and replays it on `madmax-core`'s list scheduler.
//!
//! [`run_pipelined`] is the low-level entry point shared by the unified
//! `madmax_engine::Scenario` front door and the deprecated
//! [`PipelineSimulation`] shim. New code should go through `Scenario`,
//! which dispatches between this engine and the flat one.

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{Plan, PlanError, Task};

use madmax_core::collective::{CollectiveModel, HierarchicalNccl};
use madmax_core::compute::UtilizationModel;
use madmax_core::{schedule, schedule_into, EngineScratch, IterationReport, Schedule, Trace};

use crate::cost::{stage_costs, StageCosts};
use crate::memory::pipeline_memory;
use crate::partition::partition_model;
use crate::schedule::{build_pipeline_trace, build_pipeline_trace_into};

static DEFAULT_COLLECTIVES: HierarchicalNccl = HierarchicalNccl;

/// Runs the pipeline engine end to end on a plan whose
/// [`madmax_parallel::PipelineConfig`] is active: the model is split into
/// balanced contiguous stages, the global batch into microbatches, and the
/// chosen schedule (GPipe or 1F1B) is replayed on per-stage streams.
///
/// # Errors
///
/// [`PlanError::InvalidPipeline`] when the plan has no active pipeline
/// config or the pipeline cannot be mapped (too few layers, indivisible
/// devices, bad microbatch count); [`PlanError::InvalidStrategy`] /
/// [`PlanError::OutOfMemory`] as in the flat engine.
pub fn run_pipelined(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<(IterationReport, Trace, Schedule), PlanError> {
    let (trace, memory) =
        prepare_pipelined(model, cluster, plan, task, collective_model, utilization)?;
    let sched = schedule(&trace);
    let report = IterationReport::from_schedule(&trace, &sched, model, memory);
    Ok((report, trace, sched))
}

/// The shared front half of the pipeline engine: validate, partition,
/// check memory, price the stages, and build the schedule trace. Both
/// trace-only inspection and the full run go through here so the two
/// views can never drift.
fn prepare_pipelined(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<(Trace, madmax_parallel::MemoryBreakdown), PlanError> {
    let (costs, cfg, memory) =
        price_pipelined(model, cluster, plan, task, collective_model, utilization)?;
    Ok((
        build_pipeline_trace(&costs, &cfg, task.has_backward()),
        memory,
    ))
}

/// The pricing half of the pipeline engine: validate, partition, check
/// memory, and derive the per-stage costs the schedule builders expand.
fn price_pipelined(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<
    (
        Vec<StageCosts>,
        madmax_parallel::PipelineConfig,
        madmax_parallel::MemoryBreakdown,
    ),
    PlanError,
> {
    let Some(cfg) = plan.pipeline.filter(|c| c.is_pipelined()) else {
        return Err(PlanError::InvalidPipeline {
            reason: "plan has no active pipeline config (use the flat engine)".to_owned(),
        });
    };

    plan.validate_strategies(model)?;
    let stages = partition_model(model, cluster, cfg.stages)?;
    let memory = pipeline_memory(
        model,
        cluster,
        plan,
        task,
        &stages,
        cfg.microbatches,
        cfg.schedule,
    )?;
    let costs = stage_costs(
        model,
        cluster,
        plan,
        task,
        &stages,
        cfg.microbatches,
        collective_model,
        utilization,
    )?;
    Ok((costs, cfg, memory))
}

/// The pipeline engine's buffer-recycling path: like [`run_pipelined`]
/// but expanding the schedule into caller-owned buffers, so a
/// design-space-exploration worker reuses one trace arena, schedule, and
/// stream-slot table across candidates. The report is byte-identical to
/// [`run_pipelined`].
///
/// # Errors
///
/// Same conditions as [`run_pipelined`].
pub fn run_pipelined_scratch(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
    scratch: &mut EngineScratch,
) -> Result<IterationReport, PlanError> {
    let (costs, cfg, memory) =
        price_pipelined(model, cluster, plan, task, collective_model, utilization)?;
    build_pipeline_trace_into(&costs, &cfg, task.has_backward(), &mut scratch.trace);
    schedule_into(&scratch.trace, &mut scratch.sched, &mut scratch.streams);
    Ok(IterationReport::from_schedule_in(
        &scratch.trace,
        &scratch.sched,
        model,
        memory,
        &mut scratch.report,
    ))
}

/// Builds the pipelined stage trace without scheduling it (for
/// inspection / timeline rendering).
///
/// # Errors
///
/// Same conditions as [`run_pipelined`].
pub fn build_pipelined_trace(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<Trace, PlanError> {
    prepare_pipelined(model, cluster, plan, task, collective_model, utilization)
        .map(|(trace, _)| trace)
}

/// Runs the pipeline engine with the default cost models, falling back to
/// the flat engine for non-pipelined plans (the implementation behind the
/// deprecated [`simulate`] and the pipelined half of
/// `madmax_engine::Scenario`).
///
/// # Errors
///
/// Same conditions as [`run_pipelined`] / `madmax_core::run_flat`.
pub fn run_pipelined_default(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
) -> Result<IterationReport, PlanError> {
    if plan.pipeline.is_some_and(|c| c.is_pipelined()) {
        run_pipelined(
            model,
            cluster,
            plan,
            task,
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .map(|(report, _, _)| report)
    } else {
        madmax_core::run_flat_default(model, cluster, plan, task)
    }
}

/// A configured pipeline-parallel simulation.
///
/// Deprecated: `madmax_engine::Scenario` is the unified entry point; it
/// accepts both flat and pipelined plans and reports one error type.
#[deprecated(
    since = "0.2.0",
    note = "use madmax_engine::Scenario, the unified flat + pipeline entry point"
)]
#[derive(Debug)]
pub struct PipelineSimulation<'a> {
    model: &'a ModelArch,
    cluster: &'a ClusterSpec,
    plan: &'a Plan,
    task: Task,
    collective_model: &'a dyn CollectiveModel,
    utilization: UtilizationModel,
}

#[allow(deprecated)]
impl<'a> PipelineSimulation<'a> {
    /// Creates a pipeline simulation with the default cost models.
    pub fn new(model: &'a ModelArch, cluster: &'a ClusterSpec, plan: &'a Plan, task: Task) -> Self {
        Self {
            model,
            cluster,
            plan,
            task,
            collective_model: &DEFAULT_COLLECTIVES,
            utilization: UtilizationModel::Constant,
        }
    }

    /// Replaces the collective cost model.
    #[must_use]
    pub fn with_collective_model(mut self, m: &'a dyn CollectiveModel) -> Self {
        self.collective_model = m;
        self
    }

    /// Replaces the compute-utilization model.
    #[must_use]
    pub fn with_utilization(mut self, u: UtilizationModel) -> Self {
        self.utilization = u;
        self
    }

    /// Runs the simulation, returning the report plus the trace and
    /// schedule for timeline rendering.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidPipeline`] when the pipeline cannot be mapped
    /// (too few layers, indivisible devices, bad microbatch count),
    /// [`PlanError::InvalidStrategy`] / [`PlanError::OutOfMemory`] as in the
    /// flat simulator.
    pub fn run_with_trace(&self) -> Result<(IterationReport, Trace, Schedule), PlanError> {
        if self.plan.pipeline.is_some_and(|c| c.is_pipelined()) {
            run_pipelined(
                self.model,
                self.cluster,
                self.plan,
                &self.task,
                self.collective_model,
                self.utilization,
            )
        } else {
            // Not pipelined: delegate to the flat SPMD engine.
            madmax_core::run_flat(
                self.model,
                self.cluster,
                self.plan,
                &self.task,
                self.collective_model,
                self.utilization,
            )
        }
    }

    /// Runs the simulation end to end.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PipelineSimulation::run_with_trace`].
    pub fn run(&self) -> Result<IterationReport, PlanError> {
        let (report, _, _) = self.run_with_trace()?;
        Ok(report)
    }
}

/// Pipeline-aware one-shot wrapper: executes the plan's pipeline config
/// when present, and falls back to the flat engine otherwise.
///
/// # Errors
///
/// Same conditions as [`run_pipelined`].
#[deprecated(
    since = "0.2.0",
    note = "use madmax_engine::Scenario, the unified flat + pipeline entry point"
)]
pub fn simulate(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: Task,
) -> Result<IterationReport, PlanError> {
    run_pipelined_default(model, cluster, plan, &task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::PipelineConfig;

    fn simulate(
        model: &ModelArch,
        cluster: &ClusterSpec,
        plan: &Plan,
        task: Task,
    ) -> Result<IterationReport, PlanError> {
        run_pipelined_default(model, cluster, plan, &task)
    }

    #[test]
    fn pipelined_llm_runs_and_reports_bubble() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let r = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        let bubble = r.bubble_fraction.expect("pipelined run reports bubble");
        // Fill/drain overhead plus transfer/parameter-fetch slack: at least
        // the analytic floor, and well below 1.
        assert!(
            bubble >= crate::gpipe_bubble_fraction(8, 16) - 1e-9,
            "{bubble}"
        );
        assert!(bubble < 0.75, "{bubble}");
        assert!(r.iteration_time.as_secs() > 0.0);
    }

    #[test]
    fn non_pipelined_plan_delegates_to_flat_engine() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let flat = madmax_core::run_flat_default(&model, &sys, &plan, &Task::Pretraining).unwrap();
        let piped = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        assert_eq!(flat, piped);
        assert!(piped.bubble_fraction.is_none());
    }

    #[test]
    fn flat_engine_rejects_pipelined_plans() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let err =
            madmax_core::run_flat_default(&model, &sys, &plan, &Task::Pretraining).unwrap_err();
        assert!(
            matches!(err, PlanError::PipelinedPlan { stages: 8 }),
            "{err}"
        );
    }

    #[test]
    fn pipeline_engine_rejects_flat_plans() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let err = run_pipelined(
            &model,
            &sys,
            &plan,
            &Task::Pretraining,
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }), "{err}");
    }

    #[test]
    fn more_microbatches_shrink_the_bubble() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let mut last = f64::INFINITY;
        for m in [4usize, 16, 64] {
            let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, m));
            let r = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
            let bubble = r.bubble_fraction.unwrap();
            assert!(bubble < last, "m={m}: {bubble} vs {last}");
            last = bubble;
        }
    }

    #[test]
    fn indivisible_stage_counts_rejected() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system(); // 256 nodes
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8));
        let err = simulate(&model, &sys, &plan, Task::Pretraining).unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }), "{err}");
    }

    #[test]
    fn pipeline_inference_runs_forward_only() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let infer = simulate(&model, &sys, &plan, Task::Inference).unwrap();
        let train = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        assert!(infer.iteration_time < train.iteration_time);
        use madmax_parallel::CollectiveKind;
        assert!(!infer
            .comm_by_collective
            .contains_key(&CollectiveKind::ReduceScatter));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_engine() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, 16));
        let engine = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        let shim = PipelineSimulation::new(&model, &sys, &plan, Task::Pretraining)
            .run()
            .unwrap();
        let one_shot = super::simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        assert_eq!(engine, shim);
        assert_eq!(engine, one_shot);
    }
}
