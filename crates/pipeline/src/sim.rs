//! The pipeline-aware execution engine: partitions, prices, builds the
//! schedule trace, and replays it on `madmax-core`'s list scheduler.
//!
//! [`run_pipelined`] is the low-level entry point behind the unified
//! `madmax_engine::Scenario` front door, which dispatches between this
//! engine and the flat one.
//!
//! Serve workloads pipeline the decode stream itself: the prompt's
//! prefill runs as a forward-only pipeline, then every decode step flows
//! through the stages as one microbatch unit
//! (see [`crate::schedule::build_serve_trace_into`]), so pipeline
//! parallelism hides inter-stage latency across the token stream.
//!
//! # Debug-assertions contract
//!
//! Every schedule this engine assembles — the one-shot, scratch, and
//! cached paths — is cross-checked by `madmax_core::debug_check_schedule`
//! in debug builds (causality, per-stream exclusivity, non-negative
//! durations, makespan consistency). The cached path checks only fresh
//! assemblies: a memo hit returns a report whose schedule was already
//! checked when it was produced. Release builds skip the check entirely;
//! the full rule set (stage adjacency, 1F1B in-flight bound, GPipe bubble
//! floor) lives in `madmax-verify`.

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{Plan, PlanError, Workload};

use madmax_core::collective::{CollectiveModel, HierarchicalNccl};
use madmax_core::compute::UtilizationModel;
use madmax_core::{
    schedule, schedule_into, serve_stats_from, EngineScratch, IterationReport, Schedule, Trace,
};

use crate::cost::{stage_costs, StageCosts};
use crate::memory::pipeline_memory;
use crate::partition::partition_model;
use crate::schedule::{build_pipeline_trace_into, build_serve_trace_into};
use crate::table::PipelineCostTable;

static DEFAULT_COLLECTIVES: HierarchicalNccl = HierarchicalNccl;

/// Everything the pricing half derives for one pipelined run.
struct PricedPipeline {
    /// Per-stage costs of the primary phase (training fwd+bwd, or the
    /// serve prefill).
    primary: Vec<StageCosts>,
    /// Per-stage decode costs plus the decode length (serve workloads
    /// with decode steps).
    decode: Option<(Vec<StageCosts>, usize)>,
    cfg: madmax_parallel::PipelineConfig,
    /// Resolved prompt length (KV tokens cached before decode step 0).
    prompt_len: usize,
    memory: madmax_parallel::MemoryBreakdown,
}

/// The pricing half of the pipeline engine: validate, partition, check
/// memory, and derive the per-stage costs (per workload phase) the
/// schedule builders expand. `model` must already be the workload's
/// effective primary-phase model.
fn price_pipelined(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<PricedPipeline, PlanError> {
    let Some(cfg) = plan.pipeline.filter(|c| c.is_pipelined()) else {
        return Err(PlanError::InvalidPipeline {
            reason: "plan has no active pipeline config (use the flat engine)".to_owned(),
        });
    };

    plan.validate_strategies(model)?;
    let stages = partition_model(model, cluster, cfg.stages)?;
    let memory = pipeline_memory(
        model,
        cluster,
        plan,
        workload,
        &stages,
        cfg.microbatches,
        cfg.schedule,
    )?;
    let primary = stage_costs(
        model,
        cluster,
        plan,
        workload,
        &stages,
        cfg.microbatches,
        collective_model,
        utilization,
    )?;
    let decode = match workload.decode_model(model) {
        Some(decode_model) => {
            let costs = stage_costs(
                &decode_model,
                cluster,
                plan,
                workload,
                &stages,
                cfg.microbatches,
                collective_model,
                utilization,
            )?;
            let decode_len = workload
                .serve_config()
                .expect("decode model implies serve")
                .decode_len;
            Some((costs, decode_len))
        }
        None => None,
    };
    Ok(PricedPipeline {
        primary,
        decode,
        cfg,
        prompt_len: model.context_length,
        memory,
    })
}

fn build_into(priced: &PricedPipeline, workload: &Workload, trace: &mut Trace) {
    match &priced.decode {
        Some((decode, decode_len)) => build_serve_trace_into(
            &priced.primary,
            decode,
            &priced.cfg,
            *decode_len,
            priced.prompt_len,
            trace,
        ),
        None => {
            build_pipeline_trace_into(&priced.primary, &priced.cfg, workload.has_backward(), trace);
        }
    }
}

fn attach_serve_stats(
    report: &mut IterationReport,
    priced: &PricedPipeline,
    model: &ModelArch,
    trace: &Trace,
    sched: &Schedule,
) {
    if let Some((_, decode_len)) = &priced.decode {
        report.serve = Some(serve_stats_from(
            trace,
            sched,
            priced.prompt_len,
            *decode_len,
            model.global_batch,
        ));
    }
}

/// Runs the pipeline engine end to end on a plan whose
/// [`madmax_parallel::PipelineConfig`] is active: the model is split into
/// balanced contiguous stages, the global batch into microbatches, and the
/// chosen schedule (GPipe or 1F1B) is replayed on per-stage streams.
/// Serve workloads run prefill waves followed by the pipelined decode
/// stream.
///
/// # Errors
///
/// [`PlanError::InvalidPipeline`] when the plan has no active pipeline
/// config or the pipeline cannot be mapped (too few layers, indivisible
/// devices, bad microbatch count); [`PlanError::InvalidStrategy`] /
/// [`PlanError::OutOfMemory`] as in the flat engine.
pub fn run_pipelined(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<(IterationReport, Trace, Schedule), PlanError> {
    let eff = workload.effective_model(model);
    let priced = {
        let _span = madmax_core::prof::span("price.pipeline");
        price_pipelined(&eff, cluster, plan, workload, collective_model, utilization)?
    };
    let mut trace = Trace::new();
    let sched = {
        let _span = madmax_core::prof::span("assemble.pipeline");
        build_into(&priced, workload, &mut trace);
        schedule(&trace)
    };
    if cfg!(debug_assertions) {
        madmax_core::debug_check_schedule(&trace, &sched);
    }
    let _span = madmax_core::prof::span("report.pipeline");
    let mut report = IterationReport::from_schedule(&trace, &sched, &eff, priced.memory);
    attach_serve_stats(&mut report, &priced, &eff, &trace, &sched);
    Ok((report, trace, sched))
}

/// The pipeline engine's buffer-recycling path: like [`run_pipelined`]
/// but expanding the schedule into caller-owned buffers, so a
/// design-space-exploration worker reuses one trace arena, schedule, and
/// stream-slot table across candidates. The report is byte-identical to
/// [`run_pipelined`].
///
/// # Errors
///
/// Same conditions as [`run_pipelined`].
pub fn run_pipelined_scratch(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
    scratch: &mut EngineScratch,
) -> Result<IterationReport, PlanError> {
    let eff = workload.effective_model(model);
    let priced = price_pipelined(&eff, cluster, plan, workload, collective_model, utilization)?;
    build_into(&priced, workload, &mut scratch.trace);
    schedule_into(&scratch.trace, &mut scratch.sched, &mut scratch.streams);
    if cfg!(debug_assertions) {
        madmax_core::debug_check_schedule(&scratch.trace, &scratch.sched);
    }
    let mut report = IterationReport::from_schedule_in(
        &scratch.trace,
        &scratch.sched,
        &eff,
        priced.memory,
        &mut scratch.report,
    );
    attach_serve_stats(&mut report, &priced, &eff, &scratch.trace, &scratch.sched);
    Ok(report)
}

/// The pipeline engine's allocation-free fast path: evaluates `plan`
/// against a shared, pre-priced [`PipelineCostTable`] using caller-owned
/// buffers.
///
/// This is the joint-search hot path — the report is byte-identical to
/// [`run_pipelined`] with the same inputs, but no partitioning, memory
/// derivation, or cost-model pricing runs per candidate (everything comes
/// from the table) and the trace arena, schedule, and stream-slot table in
/// `scratch` are recycled across calls. Two layers collapse repeated
/// work further:
///
/// - a candidate whose assembly inputs were already evaluated through
///   this table — by *any* worker; the memo store is shared — returns the
///   memoized report without re-assembling (for serve workloads the
///   decode stream is schedule-independent, so the GPipe/1F1B pair of a
///   sweep shares one entry);
/// - serve candidates with long decode streams are evaluated by the
///   closed-form steady-state path (`madmax_core::steady`): only the
///   prefill and a short transient token prefix are assembled, the
///   remaining tokens advance in exact integer arithmetic, and the
///   synthesized report is byte-identical to full simulation (automatic
///   fallback when the exactness conditions fail).
///
/// # Errors
///
/// Same conditions as [`run_pipelined`].
///
/// # Panics
///
/// Panics when the plan's (depth, assignment, microbatches) key was not
/// priced into `table` via `PipelineCostTable::ensure_plan`.
pub fn run_pipelined_cached(
    table: &PipelineCostTable,
    plan: &Plan,
    scratch: &mut EngineScratch,
) -> Result<IterationReport, PlanError> {
    let priced = table.priced_for(plan)?;
    if let Some(report) = table.memo_lookup(priced.memo_key) {
        table.memo_counters().hit();
        return Ok(report);
    }
    table.memo_counters().miss();

    // Closed-form steady-state path: assemble only prefill + transient
    // tokens, advance the rest analytically (byte-identical or fallback).
    if let Some((decode, decode_len)) = priced.decode {
        if table.analytic_serve() && decode_len >= madmax_core::steady::MIN_ANALYTIC_DECODE {
            let explicit = madmax_core::steady::EXPLICIT_TOKENS;
            let _span = madmax_core::prof::span("steady.pipeline");
            build_serve_trace_into(
                priced.primary,
                decode,
                &priced.cfg,
                explicit,
                priced.prompt_len,
                &mut scratch.trace,
            );
            let model = table.report_model();
            let dims = madmax_core::ServeDims {
                prompt_len: priced.prompt_len,
                decode_len,
                decode_batch: model.global_batch,
            };
            if let Some(report) = madmax_core::evaluate_serve_prefix(
                &scratch.trace,
                explicit,
                &dims,
                model,
                priced.memory,
                &mut scratch.steady,
            ) {
                table.analytic_counters().hit();
                table.memo_insert(priced.memo_key, &report);
                return Ok(report);
            }
        }
    }

    {
        let _span = madmax_core::prof::span("assemble.pipeline");
        match priced.decode {
            Some((decode, decode_len)) => build_serve_trace_into(
                priced.primary,
                decode,
                &priced.cfg,
                decode_len,
                priced.prompt_len,
                &mut scratch.trace,
            ),
            None => build_pipeline_trace_into(
                priced.primary,
                &priced.cfg,
                table.workload().has_backward(),
                &mut scratch.trace,
            ),
        }
        schedule_into(&scratch.trace, &mut scratch.sched, &mut scratch.streams);
    }
    if cfg!(debug_assertions) {
        madmax_core::debug_check_schedule(&scratch.trace, &scratch.sched);
    }
    let _span = madmax_core::prof::span("report.pipeline");
    let model = table.report_model();
    let mut report = IterationReport::from_schedule_in(
        &scratch.trace,
        &scratch.sched,
        model,
        priced.memory,
        &mut scratch.report,
    );
    if let Some((_, decode_len)) = priced.decode {
        table.analytic_counters().miss();
        report.serve = Some(serve_stats_from(
            &scratch.trace,
            &scratch.sched,
            priced.prompt_len,
            decode_len,
            model.global_batch,
        ));
    }
    table.memo_insert(priced.memo_key, &report);
    Ok(report)
}

/// Builds the pipelined stage trace without scheduling it (for
/// inspection / timeline rendering).
///
/// # Errors
///
/// Same conditions as [`run_pipelined`].
pub fn build_pipelined_trace(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<Trace, PlanError> {
    let eff = workload.effective_model(model);
    let priced = price_pipelined(&eff, cluster, plan, workload, collective_model, utilization)?;
    let mut trace = Trace::new();
    build_into(&priced, workload, &mut trace);
    Ok(trace)
}

/// Runs the pipeline engine with the default cost models, falling back to
/// the flat engine for non-pipelined plans (the pipelined half of
/// `madmax_engine::Scenario`).
///
/// # Errors
///
/// Same conditions as [`run_pipelined`] / `madmax_core::run_flat`.
pub fn run_pipelined_default(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> Result<IterationReport, PlanError> {
    if plan.pipeline.is_some_and(|c| c.is_pipelined()) {
        run_pipelined(
            model,
            cluster,
            plan,
            workload,
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .map(|(report, _, _)| report)
    } else {
        madmax_core::run_flat_default(model, cluster, plan, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::{PipelineConfig, ServeConfig};

    fn simulate(
        model: &ModelArch,
        cluster: &ClusterSpec,
        plan: &Plan,
        workload: Workload,
    ) -> Result<IterationReport, PlanError> {
        run_pipelined_default(model, cluster, plan, &workload)
    }

    #[test]
    fn pipelined_llm_runs_and_reports_bubble() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let r = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let bubble = r.bubble_fraction.expect("pipelined run reports bubble");
        // Fill/drain overhead plus transfer/parameter-fetch slack: at least
        // the analytic floor, and well below 1.
        assert!(
            bubble >= crate::gpipe_bubble_fraction(8, 16) - 1e-9,
            "{bubble}"
        );
        assert!(bubble < 0.75, "{bubble}");
        assert!(r.iteration_time.as_secs() > 0.0);
    }

    #[test]
    fn non_pipelined_plan_delegates_to_flat_engine() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let flat =
            madmax_core::run_flat_default(&model, &sys, &plan, &Workload::pretrain()).unwrap();
        let piped = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        assert_eq!(flat, piped);
        assert!(piped.bubble_fraction.is_none());
    }

    #[test]
    fn flat_engine_rejects_pipelined_plans() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let err =
            madmax_core::run_flat_default(&model, &sys, &plan, &Workload::pretrain()).unwrap_err();
        assert!(
            matches!(err, PlanError::PipelinedPlan { stages: 8 }),
            "{err}"
        );
    }

    #[test]
    fn pipeline_engine_rejects_flat_plans() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let err = run_pipelined(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }), "{err}");
    }

    #[test]
    fn more_microbatches_shrink_the_bubble() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let mut last = f64::INFINITY;
        for m in [4usize, 16, 64] {
            let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, m));
            let r = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
            let bubble = r.bubble_fraction.unwrap();
            assert!(bubble < last, "m={m}: {bubble} vs {last}");
            last = bubble;
        }
    }

    #[test]
    fn indivisible_stage_counts_rejected() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system(); // 256 nodes
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8));
        let err = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }), "{err}");
    }

    #[test]
    fn pipeline_inference_runs_forward_only() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let infer = simulate(&model, &sys, &plan, Workload::inference()).unwrap();
        let train = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        assert!(infer.iteration_time < train.iteration_time);
        use madmax_parallel::CollectiveKind;
        assert!(!infer
            .comm_by_collective
            .contains_key(&CollectiveKind::ReduceScatter));
        assert!(infer.serve.is_none(), "prefill-only: no serve stats");
    }

    #[test]
    fn pipelined_serve_reports_ttft_and_tpot() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let workload = Workload::serve(ServeConfig::new(1024, 32));
        let r = simulate(&model, &sys, &plan, workload).unwrap();
        let s = r.serve.expect("decode run reports serve stats");
        assert_eq!(s.prompt_len, 1024);
        assert_eq!(s.decode_len, 32);
        assert!(s.ttft.as_secs() > 0.0 && s.tpot.as_secs() > 0.0);
        assert!(r.memory.kv_cache.as_gb() > 0.0);
        // The decode stream dominates iteration time here, and throughput
        // accounting follows the serve batch.
        assert!(r.serve_tokens_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn scratch_path_matches_one_shot_for_serve() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, 8));
        let workload = Workload::serve(ServeConfig::new(512, 16).with_decode_batch(512));
        let (one_shot, _, _) = run_pipelined(
            &model,
            &sys,
            &plan,
            &workload,
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .unwrap();
        let mut scratch = EngineScratch::new();
        let recycled = run_pipelined_scratch(
            &model,
            &sys,
            &plan,
            &workload,
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(one_shot, recycled);
    }
}
