//! Pipeline schedule construction: expands per-stage costs into a
//! multi-stream [`Trace`] for the GPipe (fill-drain) and 1F1B
//! (one-forward-one-backward) schedules.
//!
//! Each stage contributes two streams — [`StreamId::StageCompute`] and
//! [`StreamId::StageComm`] — representing one device of that stage's
//! group. Cross-stage data flow is explicit: microbatch `j`'s forward on
//! stage `s` depends on stage `s-1`'s P2P activation send of `j`; its
//! backward depends on stage `s+1`'s gradient send. The per-stage *order*
//! of forwards and backwards is exactly the schedule's prescription, and
//! the in-order stream semantics of [`madmax_core::schedule`] turn those
//! orders plus the dependencies into start times — fill/drain bubbles
//! emerge rather than being closed-form assumptions.

use std::collections::VecDeque;

use madmax_hw::units::Seconds;
use madmax_parallel::{CollectiveKind, PipelineConfig, PipelineSchedule};

use madmax_core::{Deps, OpId, OpKind, OpName, PassDir, Phase, StreamId, Trace, TraceOp};

use crate::cost::StageCosts;

/// One scheduled event in a stage's local order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Forward of microbatch `j`.
    F(usize),
    /// Backward of microbatch `j`.
    B(usize),
}

/// The per-stage order of microbatch work prescribed by a schedule.
fn local_order(schedule: PipelineSchedule, s: usize, p: usize, m: usize, train: bool) -> Vec<Ev> {
    if !train {
        return (0..m).map(Ev::F).collect();
    }
    match schedule {
        PipelineSchedule::GPipe => {
            // Fill-drain: all forwards, then backwards in reverse (LIFO
            // activation stack).
            (0..m).map(Ev::F).chain((0..m).rev().map(Ev::B)).collect()
        }
        PipelineSchedule::OneFOneB => {
            // Warm-up of min(m, p - s) forwards, then strict 1B1F
            // alternation, draining backwards once forwards are exhausted.
            let warm = m.min(p - s);
            let mut order: Vec<Ev> = (0..warm).map(Ev::F).collect();
            let mut next_f = warm;
            for j in 0..m {
                order.push(Ev::B(j));
                if next_f < m {
                    order.push(Ev::F(next_f));
                    next_f += 1;
                }
            }
            order
        }
    }
}

fn comm_ops(
    trace: &mut Trace,
    stage: u16,
    phase: Phase,
    dir: PassDir,
    mb: u32,
    comm: &[(CollectiveKind, Seconds)],
    mut dep: OpId,
) -> OpId {
    for &(kind, duration) in comm {
        dep = trace.push(TraceOp {
            name: OpName::StagePassColl {
                stage,
                dir,
                mb,
                kind,
            },
            stream: StreamId::StageComm(stage),
            kind: OpKind::Collective { kind },
            phase,
            duration,
            deps: Deps::one(dep),
        });
    }
    dep
}

/// Builds the multi-stream trace for `costs` under `cfg`.
///
/// With `train = false` only the forward waves are emitted (inference
/// pipelines have no backward or optimizer work).
///
/// # Panics
///
/// Panics if `costs` is empty, `cfg.microbatches` is zero, or the schedule
/// deadlocks (which would indicate a bug in the order generators).
pub fn build_pipeline_trace(costs: &[StageCosts], cfg: &PipelineConfig, train: bool) -> Trace {
    let mut trace = Trace::new();
    build_pipeline_trace_into(costs, cfg, train, &mut trace);
    trace
}

/// [`build_pipeline_trace`], writing into a caller-owned trace arena
/// (cleared first, capacity retained) so repeated evaluation recycles one
/// allocation.
///
/// # Panics
///
/// Same conditions as [`build_pipeline_trace`].
pub fn build_pipeline_trace_into(
    costs: &[StageCosts],
    cfg: &PipelineConfig,
    train: bool,
    trace: &mut Trace,
) {
    let _ = build_main_into(costs, cfg, train, trace);
}

/// The shared schedule expansion behind [`build_pipeline_trace_into`] and
/// the serve builder: emits the (training or forward-only) schedule and
/// returns each stage's per-microbatch forward-completion ops, which the
/// serve builder chains decode steps onto.
fn build_main_into(
    costs: &[StageCosts],
    cfg: &PipelineConfig,
    train: bool,
    trace: &mut Trace,
) -> Vec<Vec<Option<OpId>>> {
    let p = costs.len();
    let m = cfg.microbatches;
    assert!(p > 0, "at least one stage");
    assert!(m > 0, "at least one microbatch");

    trace.clear();

    // Once-per-iteration prefetchable parameter gathers, issued at t=0 on
    // each stage's comm stream.
    let mut prefetch: Vec<Option<OpId>> = vec![None; p];
    for (s, c) in costs.iter().enumerate() {
        let mut dep: Option<OpId> = None;
        for &(kind, duration) in &c.param_comm {
            let id = trace.push(TraceOp {
                name: OpName::StageParam {
                    stage: s as u16,
                    kind,
                },
                stream: StreamId::StageComm(s as u16),
                kind: OpKind::Collective { kind },
                phase: Phase::Forward,
                duration,
                deps: dep.into_iter().collect(),
            });
            dep = Some(id);
        }
        prefetch[s] = dep;
    }

    let mut orders: Vec<VecDeque<Ev>> = (0..p)
        .map(|s| local_order(cfg.schedule, s, p, m, train).into())
        .collect();

    // Cross-stage handshake ids.
    let mut fwd_send: Vec<Vec<Option<OpId>>> = vec![vec![None; m]; p];
    let mut bwd_send: Vec<Vec<Option<OpId>>> = vec![vec![None; m]; p];
    let mut fwd_done: Vec<Vec<Option<OpId>>> = vec![vec![None; m]; p];
    let mut last_bwd: Vec<Option<OpId>> = vec![None; p];

    loop {
        let mut progressed = false;
        let mut remaining = false;
        for s in 0..p {
            while let Some(&ev) = orders[s].front() {
                let ready = match ev {
                    Ev::F(j) => s == 0 || fwd_send[s - 1][j].is_some(),
                    Ev::B(j) => s + 1 == p || bwd_send[s + 1][j].is_some(),
                };
                if !ready {
                    break;
                }
                orders[s].pop_front();
                progressed = true;
                let c = &costs[s];
                let stage = s as u16;
                match ev {
                    Ev::F(j) => {
                        let mut deps: Deps = prefetch[s].into_iter().collect();
                        if s > 0 {
                            deps.push(fwd_send[s - 1][j].expect("checked ready"));
                        }
                        let kind = if c.lookup_dominated {
                            OpKind::Lookup
                        } else {
                            OpKind::Gemm {
                                class: c.dominant_class,
                            }
                        };
                        let compute = trace.push(TraceOp {
                            name: OpName::StagePass {
                                stage,
                                dir: PassDir::Fwd,
                                mb: j as u32,
                            },
                            stream: StreamId::StageCompute(stage),
                            kind,
                            phase: Phase::Forward,
                            duration: c.fwd_compute,
                            deps,
                        });
                        let out = comm_ops(
                            trace,
                            stage,
                            Phase::Forward,
                            PassDir::Fwd,
                            j as u32,
                            &c.fwd_comm,
                            compute,
                        );
                        fwd_done[s][j] = Some(out);
                        if s + 1 < p {
                            let send = trace.push(TraceOp {
                                name: OpName::StageSendAct {
                                    stage,
                                    mb: j as u32,
                                },
                                stream: StreamId::StageComm(stage),
                                kind: OpKind::Collective {
                                    kind: CollectiveKind::PointToPoint,
                                },
                                phase: Phase::Forward,
                                duration: c.send_fwd,
                                deps: Deps::one(out),
                            });
                            fwd_send[s][j] = Some(send);
                        }
                    }
                    Ev::B(j) => {
                        let mut deps =
                            Deps::one(fwd_done[s][j].expect("forward precedes backward"));
                        if s + 1 < p {
                            deps.push(bwd_send[s + 1][j].expect("checked ready"));
                        }
                        let kind = if c.lookup_dominated {
                            OpKind::Lookup
                        } else {
                            OpKind::Gemm {
                                class: c.dominant_class,
                            }
                        };
                        let compute = trace.push(TraceOp {
                            name: OpName::StagePass {
                                stage,
                                dir: PassDir::Bwd,
                                mb: j as u32,
                            },
                            stream: StreamId::StageCompute(stage),
                            kind,
                            phase: Phase::Backward,
                            duration: c.bwd_compute,
                            deps,
                        });
                        let out = comm_ops(
                            trace,
                            stage,
                            Phase::Backward,
                            PassDir::Bwd,
                            j as u32,
                            &c.bwd_comm,
                            compute,
                        );
                        last_bwd[s] = Some(compute);
                        if s > 0 {
                            let send = trace.push(TraceOp {
                                name: OpName::StageSendGrad {
                                    stage,
                                    mb: j as u32,
                                },
                                stream: StreamId::StageGradComm(stage),
                                kind: OpKind::Collective {
                                    kind: CollectiveKind::PointToPoint,
                                },
                                phase: Phase::Backward,
                                duration: c.send_bwd,
                                deps: Deps::one(out),
                            });
                            bwd_send[s][j] = Some(send);
                        }
                    }
                }
            }
            if !orders[s].is_empty() {
                remaining = true;
            }
        }
        if !remaining {
            break;
        }
        assert!(progressed, "pipeline schedule deadlocked");
    }

    // Drain weight-gradient collectives and run the optimizer per stage.
    if train {
        for (s, c) in costs.iter().enumerate() {
            let stage = s as u16;
            let Some(tail) = last_bwd[s] else { continue };
            let mut dep = tail;
            for &(kind, duration) in &c.grad_comm {
                dep = trace.push(TraceOp {
                    name: OpName::StageGrad { stage, kind },
                    stream: StreamId::StageGradComm(stage),
                    kind: OpKind::Collective { kind },
                    phase: Phase::Backward,
                    duration,
                    deps: Deps::one(dep),
                });
            }
            if !c.optimizer.is_zero() {
                trace.push(TraceOp {
                    name: OpName::StageOptimizer { stage },
                    stream: StreamId::StageCompute(stage),
                    kind: OpKind::Optimizer,
                    phase: Phase::Update,
                    duration: c.optimizer,
                    deps: Deps::one(dep),
                });
            }
        }
    }

    fwd_done
}

/// Builds the serve-mode trace: the prompt's prefill as a forward-only
/// pipeline over `cfg.microbatches` microbatch groups, then `decode_len`
/// decode waves flowing through the same stages — **the decode step is
/// the microbatch unit**. The serving batch is split into the same `m`
/// groups; decode unit `(t, g)` (stage-trace microbatch index
/// `t * m + g`) is group `g`'s step-`t` token:
///
/// - on stage 0 it waits for the *same group's previous token* to leave
///   the last stage (autoregressive feedback; the token itself is a few
///   bytes, so the return hop is not priced),
/// - on later stages it waits for the previous stage's P2P activation
///   send of the same unit,
/// - its compute is the decode-phase stage cost stretched by the
///   KV-cache read at token position `kv_start + t`.
///
/// With `m` groups in flight the feedback round-trip hides behind the
/// other groups' work — the decode bubble shrinks as the decode batch
/// (groups in flight) grows, which is exactly what pipelining buys on
/// bandwidth-constrained fabrics.
///
/// # Panics
///
/// Panics if `prefill` and `decode` disagree on the stage count, or on
/// [`build_pipeline_trace`]'s conditions.
#[allow(clippy::too_many_arguments)] // engine-internal plumbing
pub fn build_serve_trace_into(
    prefill: &[StageCosts],
    decode: &[StageCosts],
    cfg: &PipelineConfig,
    decode_len: usize,
    kv_start: usize,
    trace: &mut Trace,
) {
    let p = prefill.len();
    assert_eq!(decode.len(), p, "prefill/decode stage counts differ");
    let m = cfg.microbatches;

    let fwd_done = build_main_into(prefill, cfg, false, trace);

    // The op that produced microbatch group g's latest token: initially
    // its prefill completing the last stage.
    let mut latest_token: Vec<Option<OpId>> = (0..m).map(|g| fwd_done[p - 1][g]).collect();

    for t in 0..decode_len {
        for (g, token) in latest_token.iter_mut().enumerate() {
            let unit = (t * m + g) as u32;
            let mut carry: Option<OpId> = None; // previous stage's send
            for (s, c) in decode.iter().enumerate() {
                let stage = s as u16;
                let mut deps = Deps::none();
                if s == 0 {
                    if let Some(prev) = *token {
                        deps.push(prev);
                    }
                } else if let Some(send) = carry {
                    deps.push(send);
                }
                let kind = if c.lookup_dominated {
                    OpKind::Lookup
                } else {
                    OpKind::Gemm {
                        class: c.dominant_class,
                    }
                };
                let compute = trace.push(TraceOp {
                    name: OpName::StagePass {
                        stage,
                        dir: PassDir::Dec,
                        mb: unit,
                    },
                    stream: StreamId::StageCompute(stage),
                    kind,
                    phase: Phase::Decode,
                    duration: madmax_core::decode_compute_duration(
                        c.fwd_compute,
                        c.kv_read_per_token,
                        kv_start as f64,
                        t as u32,
                    ),
                    deps,
                });
                let out = comm_ops(
                    trace,
                    stage,
                    Phase::Decode,
                    PassDir::Dec,
                    unit,
                    &c.fwd_comm,
                    compute,
                );
                if s + 1 < p {
                    let send = trace.push(TraceOp {
                        name: OpName::StageSendTok { stage, mb: unit },
                        stream: StreamId::StageComm(stage),
                        kind: OpKind::Collective {
                            kind: CollectiveKind::PointToPoint,
                        },
                        phase: Phase::Decode,
                        duration: c.send_fwd,
                        deps: Deps::one(out),
                    });
                    carry = Some(send);
                } else {
                    *token = Some(out);
                }
            }
        }
    }

    // Serve traces live on the duration grid (see `madmax_core::steady`):
    // quantizing every duration — prefill and decode alike — makes all
    // scheduled times exact, which is what lets the closed-form decode
    // evaluator reproduce the full simulation bit for bit.
    trace.map_durations_from(0, madmax_core::quantize);
}

/// Builds uniform synthetic stage costs — handy for schedule-shape tests
/// and the analytic-bubble validation.
pub fn uniform_costs(p: usize, fwd: Seconds, bwd: Seconds, send: Seconds) -> Vec<StageCosts> {
    (0..p)
        .map(|s| StageCosts {
            fwd_compute: fwd,
            bwd_compute: bwd,
            fwd_comm: Vec::new(),
            bwd_comm: Vec::new(),
            send_fwd: if s + 1 < p { send } else { Seconds::ZERO },
            send_bwd: if s > 0 { send } else { Seconds::ZERO },
            param_comm: Vec::new(),
            grad_comm: Vec::new(),
            optimizer: Seconds::ZERO,
            dominant_class: madmax_model::LayerClass::Dense,
            lookup_dominated: false,
            kv_read_per_token: Seconds::ZERO,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_core::schedule;

    fn run(p: usize, m: usize, sched: PipelineSchedule, tf: f64, tb: f64) -> f64 {
        let costs = uniform_costs(p, Seconds::new(tf), Seconds::new(tb), Seconds::ZERO);
        let cfg = PipelineConfig {
            stages: p,
            microbatches: m,
            schedule: sched,
        };
        let trace = build_pipeline_trace(&costs, &cfg, true);
        schedule(&trace).makespan.as_secs()
    }

    #[test]
    fn gpipe_uniform_makespan_matches_analytic() {
        // (m + p - 1) * (tf + tb) for uniform stages and free transfers.
        for (p, m) in [(2usize, 2usize), (4, 8), (8, 4), (8, 32), (3, 1)] {
            let got = run(p, m, PipelineSchedule::GPipe, 1.0, 2.0);
            let want = (m + p - 1) as f64 * 3.0;
            assert!((got - want).abs() < 1e-9, "p={p} m={m}: {got} vs {want}");
        }
    }

    #[test]
    fn one_f_one_b_matches_gpipe_for_uniform_stages() {
        for (p, m) in [(2usize, 4usize), (4, 4), (8, 16)] {
            let g = run(p, m, PipelineSchedule::GPipe, 1.0, 2.0);
            let o = run(p, m, PipelineSchedule::OneFOneB, 1.0, 2.0);
            assert!((g - o).abs() < 1e-9, "p={p} m={m}: gpipe {g} vs 1f1b {o}");
        }
    }

    #[test]
    fn single_stage_has_no_bubble() {
        let costs = uniform_costs(1, Seconds::new(1.0), Seconds::new(2.0), Seconds::ZERO);
        let cfg = PipelineConfig::gpipe(1, 4);
        let trace = build_pipeline_trace(&costs, &cfg, true);
        let s = schedule(&trace);
        assert!((s.makespan.as_secs() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn inference_emits_forward_only() {
        let costs = uniform_costs(4, Seconds::new(1.0), Seconds::new(2.0), Seconds::new(0.1));
        let cfg = PipelineConfig::one_f_one_b(4, 8);
        let trace = build_pipeline_trace(&costs, &cfg, false);
        assert!(trace.ops().iter().all(|o| o.phase == Phase::Forward));
        // Fill + steady state: (m + p - 1) forwards plus the 3 crossed
        // transfers on the critical path.
        let makespan = schedule(&trace).makespan.as_secs();
        assert!((makespan - (11.0 + 0.3)).abs() < 1e-9, "{makespan}");
    }

    #[test]
    fn serve_decode_bubble_shrinks_with_more_groups_in_flight() {
        // 4 stages, free transfers, uniform decode cost: with one group in
        // flight every decode token costs a full round trip; with m >= p
        // the pipeline stays full and per-token cost approaches one stage
        // time.
        let p = 4;
        let decode_len = 8;
        let per_token_makespan = |m: usize| {
            let prefill = uniform_costs(p, Seconds::new(1.0), Seconds::ZERO, Seconds::ZERO);
            let decode = uniform_costs(p, Seconds::new(0.25), Seconds::ZERO, Seconds::ZERO);
            let cfg = PipelineConfig::gpipe(p, m);
            let mut trace = Trace::new();
            build_serve_trace_into(&prefill, &decode, &cfg, decode_len, 128, &mut trace);
            let s = schedule(&trace);
            // Measure the decode span only (prefill cost is m-dependent).
            let prefill_end = trace
                .ops()
                .iter()
                .zip(&s.windows)
                .filter(|(op, _)| op.phase == Phase::Forward)
                .map(|(_, w)| w.finish)
                .fold(Seconds::ZERO, Seconds::max);
            (s.makespan - prefill_end).as_secs() / (decode_len * m) as f64
        };
        let one = per_token_makespan(1);
        let four = per_token_makespan(4);
        let eight = per_token_makespan(8);
        assert!(four < one, "{four} vs {one}");
        assert!(eight <= four, "{eight} vs {four}");
        // With one group the round trip is fully exposed: p stage-times
        // per token.
        assert!((one - 1.0).abs() < 1e-9, "{one}");
    }

    #[test]
    fn serve_decode_is_forward_then_decode_phases_only() {
        let prefill = uniform_costs(3, Seconds::new(1.0), Seconds::ZERO, Seconds::new(0.1));
        let decode = uniform_costs(3, Seconds::new(0.2), Seconds::ZERO, Seconds::new(0.01));
        let cfg = PipelineConfig::gpipe(3, 2);
        let mut trace = Trace::new();
        build_serve_trace_into(&prefill, &decode, &cfg, 4, 64, &mut trace);
        assert!(trace
            .ops()
            .iter()
            .all(|o| matches!(o.phase, Phase::Forward | Phase::Decode)));
        // KV growth: a later decode wave is never cheaper than an earlier
        // one on the same stage.
        let decode_kv = uniform_costs(3, Seconds::new(0.2), Seconds::ZERO, Seconds::ZERO)
            .into_iter()
            .map(|mut c| {
                c.kv_read_per_token = Seconds::new(1e-3);
                c
            })
            .collect::<Vec<_>>();
        let mut t2 = Trace::new();
        build_serve_trace_into(&prefill, &decode_kv, &cfg, 4, 64, &mut t2);
        let wave_cost = |step: u32| -> Seconds {
            t2.ops()
                .iter()
                .filter(|o| {
                    matches!(o.name, OpName::StagePass { dir: PassDir::Dec, mb, .. } if mb / 2 == step)
                        && o.stream == StreamId::StageCompute(0)
                })
                .map(|o| o.duration)
                .sum()
        };
        assert!(wave_cost(3) > wave_cost(0));
    }

    #[test]
    fn transfers_extend_the_critical_path() {
        let free = run(4, 8, PipelineSchedule::GPipe, 1.0, 2.0);
        let costs = uniform_costs(4, Seconds::new(1.0), Seconds::new(2.0), Seconds::new(0.5));
        let cfg = PipelineConfig::gpipe(4, 8);
        let taxed = schedule(&build_pipeline_trace(&costs, &cfg, true))
            .makespan
            .as_secs();
        assert!(taxed > free);
    }
}
