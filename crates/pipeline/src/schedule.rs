//! Pipeline schedule construction: expands per-stage costs into a
//! multi-stream [`Trace`] for the GPipe (fill-drain) and 1F1B
//! (one-forward-one-backward) schedules.
//!
//! Each stage contributes two streams — [`StreamId::StageCompute`] and
//! [`StreamId::StageComm`] — representing one device of that stage's
//! group. Cross-stage data flow is explicit: microbatch `j`'s forward on
//! stage `s` depends on stage `s-1`'s P2P activation send of `j`; its
//! backward depends on stage `s+1`'s gradient send. The per-stage *order*
//! of forwards and backwards is exactly the schedule's prescription, and
//! the in-order stream semantics of [`madmax_core::schedule`] turn those
//! orders plus the dependencies into start times — fill/drain bubbles
//! emerge rather than being closed-form assumptions.

use std::collections::VecDeque;

use madmax_hw::units::Seconds;
use madmax_parallel::{CollectiveKind, PipelineConfig, PipelineSchedule};

use madmax_core::{Deps, OpId, OpKind, OpName, PassDir, Phase, StreamId, Trace, TraceOp};

use crate::cost::StageCosts;

/// One scheduled event in a stage's local order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Forward of microbatch `j`.
    F(usize),
    /// Backward of microbatch `j`.
    B(usize),
}

/// The per-stage order of microbatch work prescribed by a schedule.
fn local_order(schedule: PipelineSchedule, s: usize, p: usize, m: usize, train: bool) -> Vec<Ev> {
    if !train {
        return (0..m).map(Ev::F).collect();
    }
    match schedule {
        PipelineSchedule::GPipe => {
            // Fill-drain: all forwards, then backwards in reverse (LIFO
            // activation stack).
            (0..m).map(Ev::F).chain((0..m).rev().map(Ev::B)).collect()
        }
        PipelineSchedule::OneFOneB => {
            // Warm-up of min(m, p - s) forwards, then strict 1B1F
            // alternation, draining backwards once forwards are exhausted.
            let warm = m.min(p - s);
            let mut order: Vec<Ev> = (0..warm).map(Ev::F).collect();
            let mut next_f = warm;
            for j in 0..m {
                order.push(Ev::B(j));
                if next_f < m {
                    order.push(Ev::F(next_f));
                    next_f += 1;
                }
            }
            order
        }
    }
}

fn comm_ops(
    trace: &mut Trace,
    stage: u16,
    phase: Phase,
    dir: PassDir,
    mb: u32,
    comm: &[(CollectiveKind, Seconds)],
    mut dep: OpId,
) -> OpId {
    for &(kind, duration) in comm {
        dep = trace.push(TraceOp {
            name: OpName::StagePassColl {
                stage,
                dir,
                mb,
                kind,
            },
            stream: StreamId::StageComm(stage),
            kind: OpKind::Collective { kind },
            phase,
            duration,
            deps: Deps::one(dep),
        });
    }
    dep
}

/// Builds the multi-stream trace for `costs` under `cfg`.
///
/// With `train = false` only the forward waves are emitted (inference
/// pipelines have no backward or optimizer work).
///
/// # Panics
///
/// Panics if `costs` is empty, `cfg.microbatches` is zero, or the schedule
/// deadlocks (which would indicate a bug in the order generators).
pub fn build_pipeline_trace(costs: &[StageCosts], cfg: &PipelineConfig, train: bool) -> Trace {
    let mut trace = Trace::new();
    build_pipeline_trace_into(costs, cfg, train, &mut trace);
    trace
}

/// [`build_pipeline_trace`], writing into a caller-owned trace arena
/// (cleared first, capacity retained) so repeated evaluation recycles one
/// allocation.
///
/// # Panics
///
/// Same conditions as [`build_pipeline_trace`].
pub fn build_pipeline_trace_into(
    costs: &[StageCosts],
    cfg: &PipelineConfig,
    train: bool,
    trace: &mut Trace,
) {
    let p = costs.len();
    let m = cfg.microbatches;
    assert!(p > 0, "at least one stage");
    assert!(m > 0, "at least one microbatch");

    trace.clear();

    // Once-per-iteration prefetchable parameter gathers, issued at t=0 on
    // each stage's comm stream.
    let mut prefetch: Vec<Option<OpId>> = vec![None; p];
    for (s, c) in costs.iter().enumerate() {
        let mut dep: Option<OpId> = None;
        for &(kind, duration) in &c.param_comm {
            let id = trace.push(TraceOp {
                name: OpName::StageParam {
                    stage: s as u16,
                    kind,
                },
                stream: StreamId::StageComm(s as u16),
                kind: OpKind::Collective { kind },
                phase: Phase::Forward,
                duration,
                deps: dep.into_iter().collect(),
            });
            dep = Some(id);
        }
        prefetch[s] = dep;
    }

    let mut orders: Vec<VecDeque<Ev>> = (0..p)
        .map(|s| local_order(cfg.schedule, s, p, m, train).into())
        .collect();

    // Cross-stage handshake ids.
    let mut fwd_send: Vec<Vec<Option<OpId>>> = vec![vec![None; m]; p];
    let mut bwd_send: Vec<Vec<Option<OpId>>> = vec![vec![None; m]; p];
    let mut fwd_done: Vec<Vec<Option<OpId>>> = vec![vec![None; m]; p];
    let mut last_bwd: Vec<Option<OpId>> = vec![None; p];

    loop {
        let mut progressed = false;
        let mut remaining = false;
        for s in 0..p {
            while let Some(&ev) = orders[s].front() {
                let ready = match ev {
                    Ev::F(j) => s == 0 || fwd_send[s - 1][j].is_some(),
                    Ev::B(j) => s + 1 == p || bwd_send[s + 1][j].is_some(),
                };
                if !ready {
                    break;
                }
                orders[s].pop_front();
                progressed = true;
                let c = &costs[s];
                let stage = s as u16;
                match ev {
                    Ev::F(j) => {
                        let mut deps: Deps = prefetch[s].into_iter().collect();
                        if s > 0 {
                            deps.push(fwd_send[s - 1][j].expect("checked ready"));
                        }
                        let kind = if c.lookup_dominated {
                            OpKind::Lookup
                        } else {
                            OpKind::Gemm {
                                class: c.dominant_class,
                            }
                        };
                        let compute = trace.push(TraceOp {
                            name: OpName::StagePass {
                                stage,
                                dir: PassDir::Fwd,
                                mb: j as u32,
                            },
                            stream: StreamId::StageCompute(stage),
                            kind,
                            phase: Phase::Forward,
                            duration: c.fwd_compute,
                            deps,
                        });
                        let out = comm_ops(
                            trace,
                            stage,
                            Phase::Forward,
                            PassDir::Fwd,
                            j as u32,
                            &c.fwd_comm,
                            compute,
                        );
                        fwd_done[s][j] = Some(out);
                        if s + 1 < p {
                            let send = trace.push(TraceOp {
                                name: OpName::StageSendAct {
                                    stage,
                                    mb: j as u32,
                                },
                                stream: StreamId::StageComm(stage),
                                kind: OpKind::Collective {
                                    kind: CollectiveKind::PointToPoint,
                                },
                                phase: Phase::Forward,
                                duration: c.send_fwd,
                                deps: Deps::one(out),
                            });
                            fwd_send[s][j] = Some(send);
                        }
                    }
                    Ev::B(j) => {
                        let mut deps =
                            Deps::one(fwd_done[s][j].expect("forward precedes backward"));
                        if s + 1 < p {
                            deps.push(bwd_send[s + 1][j].expect("checked ready"));
                        }
                        let kind = if c.lookup_dominated {
                            OpKind::Lookup
                        } else {
                            OpKind::Gemm {
                                class: c.dominant_class,
                            }
                        };
                        let compute = trace.push(TraceOp {
                            name: OpName::StagePass {
                                stage,
                                dir: PassDir::Bwd,
                                mb: j as u32,
                            },
                            stream: StreamId::StageCompute(stage),
                            kind,
                            phase: Phase::Backward,
                            duration: c.bwd_compute,
                            deps,
                        });
                        let out = comm_ops(
                            trace,
                            stage,
                            Phase::Backward,
                            PassDir::Bwd,
                            j as u32,
                            &c.bwd_comm,
                            compute,
                        );
                        last_bwd[s] = Some(compute);
                        if s > 0 {
                            let send = trace.push(TraceOp {
                                name: OpName::StageSendGrad {
                                    stage,
                                    mb: j as u32,
                                },
                                stream: StreamId::StageGradComm(stage),
                                kind: OpKind::Collective {
                                    kind: CollectiveKind::PointToPoint,
                                },
                                phase: Phase::Backward,
                                duration: c.send_bwd,
                                deps: Deps::one(out),
                            });
                            bwd_send[s][j] = Some(send);
                        }
                    }
                }
            }
            if !orders[s].is_empty() {
                remaining = true;
            }
        }
        if !remaining {
            break;
        }
        assert!(progressed, "pipeline schedule deadlocked");
    }

    // Drain weight-gradient collectives and run the optimizer per stage.
    if train {
        for (s, c) in costs.iter().enumerate() {
            let stage = s as u16;
            let Some(tail) = last_bwd[s] else { continue };
            let mut dep = tail;
            for &(kind, duration) in &c.grad_comm {
                dep = trace.push(TraceOp {
                    name: OpName::StageGrad { stage, kind },
                    stream: StreamId::StageGradComm(stage),
                    kind: OpKind::Collective { kind },
                    phase: Phase::Backward,
                    duration,
                    deps: Deps::one(dep),
                });
            }
            if !c.optimizer.is_zero() {
                trace.push(TraceOp {
                    name: OpName::StageOptimizer { stage },
                    stream: StreamId::StageCompute(stage),
                    kind: OpKind::Optimizer,
                    phase: Phase::Update,
                    duration: c.optimizer,
                    deps: Deps::one(dep),
                });
            }
        }
    }
}

/// Builds uniform synthetic stage costs — handy for schedule-shape tests
/// and the analytic-bubble validation.
pub fn uniform_costs(p: usize, fwd: Seconds, bwd: Seconds, send: Seconds) -> Vec<StageCosts> {
    (0..p)
        .map(|s| StageCosts {
            fwd_compute: fwd,
            bwd_compute: bwd,
            fwd_comm: Vec::new(),
            bwd_comm: Vec::new(),
            send_fwd: if s + 1 < p { send } else { Seconds::ZERO },
            send_bwd: if s > 0 { send } else { Seconds::ZERO },
            param_comm: Vec::new(),
            grad_comm: Vec::new(),
            optimizer: Seconds::ZERO,
            dominant_class: madmax_model::LayerClass::Dense,
            lookup_dominated: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_core::schedule;

    fn run(p: usize, m: usize, sched: PipelineSchedule, tf: f64, tb: f64) -> f64 {
        let costs = uniform_costs(p, Seconds::new(tf), Seconds::new(tb), Seconds::ZERO);
        let cfg = PipelineConfig {
            stages: p,
            microbatches: m,
            schedule: sched,
        };
        let trace = build_pipeline_trace(&costs, &cfg, true);
        schedule(&trace).makespan.as_secs()
    }

    #[test]
    fn gpipe_uniform_makespan_matches_analytic() {
        // (m + p - 1) * (tf + tb) for uniform stages and free transfers.
        for (p, m) in [(2usize, 2usize), (4, 8), (8, 4), (8, 32), (3, 1)] {
            let got = run(p, m, PipelineSchedule::GPipe, 1.0, 2.0);
            let want = (m + p - 1) as f64 * 3.0;
            assert!((got - want).abs() < 1e-9, "p={p} m={m}: {got} vs {want}");
        }
    }

    #[test]
    fn one_f_one_b_matches_gpipe_for_uniform_stages() {
        for (p, m) in [(2usize, 4usize), (4, 4), (8, 16)] {
            let g = run(p, m, PipelineSchedule::GPipe, 1.0, 2.0);
            let o = run(p, m, PipelineSchedule::OneFOneB, 1.0, 2.0);
            assert!((g - o).abs() < 1e-9, "p={p} m={m}: gpipe {g} vs 1f1b {o}");
        }
    }

    #[test]
    fn single_stage_has_no_bubble() {
        let costs = uniform_costs(1, Seconds::new(1.0), Seconds::new(2.0), Seconds::ZERO);
        let cfg = PipelineConfig::gpipe(1, 4);
        let trace = build_pipeline_trace(&costs, &cfg, true);
        let s = schedule(&trace);
        assert!((s.makespan.as_secs() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn inference_emits_forward_only() {
        let costs = uniform_costs(4, Seconds::new(1.0), Seconds::new(2.0), Seconds::new(0.1));
        let cfg = PipelineConfig::one_f_one_b(4, 8);
        let trace = build_pipeline_trace(&costs, &cfg, false);
        assert!(trace.ops().iter().all(|o| o.phase == Phase::Forward));
        // Fill + steady state: (m + p - 1) forwards plus the 3 crossed
        // transfers on the critical path.
        let makespan = schedule(&trace).makespan.as_secs();
        assert!((makespan - (11.0 + 0.3)).abs() < 1e-9, "{makespan}");
    }

    #[test]
    fn transfers_extend_the_critical_path() {
        let free = run(4, 8, PipelineSchedule::GPipe, 1.0, 2.0);
        let costs = uniform_costs(4, Seconds::new(1.0), Seconds::new(2.0), Seconds::new(0.5));
        let cfg = PipelineConfig::gpipe(4, 8);
        let taxed = schedule(&build_pipeline_trace(&costs, &cfg, true))
            .makespan
            .as_secs();
        assert!(taxed > free);
    }
}
