//! The pricing phase of the pipeline engine: a [`PipelineCostTable`] of
//! per-(pipeline depth, strategy assignment, workload phase, microbatch
//! count) stage costs, computed once per search and composed into stage
//! traces by the assembly phase ([`crate::run_pipelined_cached`]).
//!
//! Joint design-space searches sweep `(per-class strategies) x (depth x
//! microbatches x schedule)` — and serve searches additionally the decode
//! batch — yet almost all of the per-candidate pricing work is shared:
//!
//! - the balanced stage **partition** and the stage **sub-cluster** depend
//!   only on the depth `p`;
//! - the per-stage **sub-models** (for optimizer and memory accounting)
//!   depend only on `p` and the phase model — one build per depth instead
//!   of one `ModelArch` clone per stage per candidate;
//! - the raw per-stage **memory footprints** depend on `(p, strategy
//!   assignment)`; the `(microbatches, schedule)` axes only scale 1F1B's
//!   in-flight activation bound in the final fold
//!   ([`crate::fold_pipeline_memory`]);
//! - the per-stage [`StageCosts`] of each workload phase (training
//!   fwd+bwd, or serve prefill + decode) depend on `(p, assignment,
//!   microbatches)` — the **schedule** axis only reorders trace assembly,
//!   and for serve workloads does not even do that (the decode stream is
//!   schedule-independent).
//!
//! The table memoizes every level, so a candidate evaluation through
//! [`crate::run_pipelined_cached`] assembles cached [`StageCosts`] into a
//! recycled `EngineScratch` arena with zero pricing work — no
//! `partition_model` run, no `ModelArch`/`ClusterSpec` clone, and no
//! collective-model invocation.
//!
//! # Sharing contract
//!
//! Mirroring `madmax_core::CostTable`: a table is priced for one
//! `(model, cluster, workload)` combination and one set of
//! pricing-relevant [`PlanOptions`] (everything except
//! `ignore_memory_limits`, which only gates the feasibility check and is
//! read per plan). [`PipelineCostTable::ensure_plan`] must be called for
//! every candidate before evaluation; the table is then shared read-only
//! across worker threads (it is `Sync`). Assembling a plan whose depth,
//! assignment, or microbatch count was never priced panics; error-shaped
//! candidates (invalid strategies, unmappable depths, OOM folds, bad
//! microbatch counts) are *not* priced and instead reproduce
//! `price_pipelined`'s exact error at evaluation time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use madmax_core::{
    CacheCounters, CacheStats, CollectiveModel, IterationReport, ReportMemo, UtilizationModel,
};
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, ModelArch};
use madmax_parallel::{
    HierStrategy, MemoryBreakdown, PipelineConfig, Plan, PlanError, PlanOptions, Workload,
};

use crate::cost::{microbatch_bounds, stage_cluster, stage_costs_in, stage_models, StageCosts};
use crate::memory::{fold_pipeline_memory, stage_memory};
use crate::partition::{partition_model, Stage};

/// Monotone stamp distinguishing tables, so a recycled `EngineScratch`
/// memo can never confuse entries of a dropped table with a new one that
/// happens to live at the same address.
static TABLE_GENERATION: AtomicU64 = AtomicU64::new(0);

/// Every pipeline-depth-independent context of one depth `p`.
#[derive(Debug)]
struct DepthEntry {
    stages: Vec<Stage>,
    /// The stage sub-cluster (owned once; candidates borrow it).
    sub: ClusterSpec,
    /// Primary-phase per-stage sub-models.
    sub_models: Vec<ModelArch>,
    /// Decode-phase per-stage sub-models (empty without a decode phase).
    decode_sub_models: Vec<ModelArch>,
    /// Per-assignment costs, keyed by the strategies of the model's
    /// classes in first-appearance order.
    assignments: Vec<(Vec<HierStrategy>, AssignEntry)>,
}

/// Costs of one `(depth, strategy assignment)` pair.
#[derive(Debug)]
struct AssignEntry {
    /// Raw (schedule-independent) per-stage memory footprints.
    per_stage_memory: Vec<MemoryBreakdown>,
    /// Priced stage costs per microbatch count.
    by_m: Vec<(usize, PhaseCosts)>,
}

/// The priced stages of every workload phase for one
/// `(depth, assignment, microbatches)` key.
#[derive(Debug)]
struct PhaseCosts {
    /// Table-unique id, part of the `EngineScratch` memo key.
    id: usize,
    primary: Vec<StageCosts>,
    decode: Option<Vec<StageCosts>>,
}

/// Everything [`crate::run_pipelined_cached`] needs to assemble one
/// candidate: borrowed priced stages, the candidate's pipeline config and
/// memory fold, and the memo key identifying the assembly inputs.
#[derive(Debug)]
pub struct PricedPipelineRef<'t> {
    /// Primary-phase stage costs (training fwd+bwd, or the serve prefill).
    pub primary: &'t [StageCosts],
    /// Decode-phase stage costs plus the decode length, for serve
    /// workloads with decode steps.
    pub decode: Option<(&'t [StageCosts], usize)>,
    /// The candidate's pipeline configuration.
    pub cfg: PipelineConfig,
    /// Resolved prompt length (KV tokens cached before decode step 0).
    pub prompt_len: usize,
    /// The candidate's worst-stage memory breakdown.
    pub memory: MemoryBreakdown,
    /// Key identifying the assembly inputs: `(table generation, phase-cost
    /// entry, schedule tag)`. Two candidates with equal keys build
    /// byte-identical traces, schedules, and reports — the scratch memo
    /// exploits this for the schedule axis of serve searches, whose decode
    /// stream is schedule-independent.
    pub memo_key: (u64, usize, u8),
}

/// Every option except `ignore_memory_limits` (which only gates the
/// feasibility check, read per plan) must match between the table and
/// every plan priced or assembled through it (mirrors
/// `madmax_core::CostTable`'s contract).
fn pricing_options_match(a: &PlanOptions, b: &PlanOptions) -> bool {
    let neutral = |o: &PlanOptions| {
        let mut o = *o;
        o.ignore_memory_limits = false;
        o
    };
    neutral(a) == neutral(b)
}

/// Shared, read-only cost cache for the pipeline engine (see the module
/// docs for the sharing contract).
#[derive(Debug)]
pub struct PipelineCostTable<'a> {
    /// The caller's model, as passed in (identity handle).
    model: &'a ModelArch,
    /// The primary-phase effective model, when the workload overrides the
    /// context length (serve prompt) or global batch (serving batch).
    eff: Option<Box<ModelArch>>,
    /// The decode-phase effective model (single-token context at the
    /// serving batch), for serve workloads with decode steps.
    decode_model: Option<Box<ModelArch>>,
    decode_len: usize,
    cluster: &'a ClusterSpec,
    workload: Workload,
    options: PlanOptions,
    collectives: &'a dyn CollectiveModel,
    utilization: UtilizationModel,
    /// Layer classes present in the model, in first-appearance order (the
    /// assignment-key dimensions).
    classes: Vec<LayerClass>,
    generation: u64,
    /// Whether `run_pipelined_cached` may use the closed-form steady-state
    /// decode evaluator (`madmax_core::steady`) for serve candidates.
    analytic_serve: bool,
    /// Running phase-cost entry counter (memo ids).
    entries: usize,
    depths: Vec<(usize, Result<DepthEntry, PlanError>)>,
    /// Price-vs-reuse telemetry: one hit per `ensure_plan` candidate whose
    /// `(depth, assignment, microbatches)` key was already priced, one
    /// miss per fresh phase-cost entry.
    counters: CacheCounters,
    /// Report-memo telemetry, bumped by `run_pipelined_cached`.
    memo_counters: CacheCounters,
    /// Closed-form-vs-fallback telemetry for serve evaluations (one hit
    /// per report synthesized by the steady-state evaluator, one miss per
    /// serve candidate that fell back to full simulation).
    analytic_counters: CacheCounters,
    /// Keyed most-recently-used store of memoized reports, shared across
    /// every worker evaluating through this table: two candidates with
    /// equal memo keys (e.g. the GPipe/1F1B pair of a serve search, whose
    /// decode stream is schedule-independent) build byte-identical
    /// reports, so whichever worker assembles first saves everyone else
    /// the work — regardless of candidate order or worker assignment.
    memo: Mutex<Vec<ReportMemo>>,
}

/// Retained [`ReportMemo`] entries: enough to cover every live
/// (depth, assignment, microbatches) key of a typical joint-search sweep
/// between revisits, small enough that lookup stays a cache-friendly
/// linear scan.
const MEMO_CAPACITY: usize = 64;

impl<'a> PipelineCostTable<'a> {
    /// Creates an empty table for one `(model, cluster, workload)`
    /// pricing context; call [`PipelineCostTable::ensure_plan`] with every
    /// candidate to fill it.
    pub fn new(
        model: &'a ModelArch,
        cluster: &'a ClusterSpec,
        workload: Workload,
        options: PlanOptions,
        collectives: &'a dyn CollectiveModel,
        utilization: UtilizationModel,
    ) -> Self {
        let eff = match workload.effective_model(model) {
            std::borrow::Cow::Borrowed(_) => None,
            std::borrow::Cow::Owned(m) => Some(Box::new(m)),
        };
        let primary: &ModelArch = eff.as_deref().unwrap_or(model);
        let decode_model = workload.decode_model(primary).map(Box::new);
        let decode_len = match &decode_model {
            Some(_) => {
                workload
                    .serve_config()
                    .expect("decode model implies serve")
                    .decode_len
            }
            None => 0,
        };
        let mut classes: Vec<LayerClass> = Vec::new();
        for g in &primary.groups {
            if !classes.contains(&g.class) {
                classes.push(g.class);
            }
        }
        Self {
            model,
            eff,
            decode_model,
            decode_len,
            cluster,
            workload,
            options,
            collectives,
            utilization,
            classes,
            generation: TABLE_GENERATION.fetch_add(1, Ordering::Relaxed) + 1,
            analytic_serve: true,
            entries: 0,
            depths: Vec::new(),
            counters: CacheCounters::new(),
            memo_counters: CacheCounters::new(),
            analytic_counters: CacheCounters::new(),
            memo: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of the price-vs-reuse counters:
    /// [`PipelineCostTable::ensure_plan`] records one hit per candidate
    /// whose `(depth, assignment, microbatches)` key was already priced
    /// and one miss per fresh phase-cost entry (error-shaped candidates,
    /// which are never priced, count as neither).
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Snapshot of the per-scratch report-memo counters, accumulated
    /// across every worker that evaluated candidates through this table
    /// (`run_pipelined_cached` records one hit per memoized report served
    /// and one miss per trace assembled fresh).
    pub fn memo_stats(&self) -> CacheStats {
        self.memo_counters.snapshot()
    }

    /// The report-memo counter pair (crate-internal: `run_pipelined_cached`
    /// bumps it from `&self`).
    pub(crate) fn memo_counters(&self) -> &CacheCounters {
        &self.memo_counters
    }

    /// Snapshot of the closed-form-vs-fallback counters: one hit per serve
    /// report synthesized by the steady-state evaluator
    /// (`madmax_core::steady`), one miss per serve candidate assembled and
    /// simulated in full (fallback, opt-out, or short decode).
    pub fn analytic_stats(&self) -> CacheStats {
        self.analytic_counters.snapshot()
    }

    /// The closed-form-vs-fallback counter pair (crate-internal).
    pub(crate) fn analytic_counters(&self) -> &CacheCounters {
        &self.analytic_counters
    }

    /// Looks up a memoized report by its assembly-input key, refreshing
    /// its recency on a hit.
    pub(crate) fn memo_lookup(&self, key: (u64, usize, u8)) -> Option<IterationReport> {
        let mut memo = self.memo.lock().expect("memo lock poisoned");
        let i = memo.iter().position(|m| m.key == key)?;
        memo[..=i].rotate_right(1);
        Some(memo[0].report.clone())
    }

    /// Stores a freshly evaluated report under its assembly-input key.
    /// Reports for equal keys are byte-identical by construction, so a
    /// racing duplicate from another worker is simply kept (it refreshes
    /// recency either way); the least-recently-used entry is evicted past
    /// capacity.
    pub(crate) fn memo_insert(&self, key: (u64, usize, u8), report: &IterationReport) {
        let mut memo = self.memo.lock().expect("memo lock poisoned");
        match memo.iter().position(|m| m.key == key) {
            Some(i) => memo[..=i].rotate_right(1),
            None => {
                memo.truncate(MEMO_CAPACITY - 1);
                memo.insert(
                    0,
                    ReportMemo {
                        key,
                        report: report.clone(),
                    },
                );
            }
        }
    }

    /// Drops every memoized report (counters are untouched). Evaluation
    /// is memo-transparent — reports for equal keys are byte-identical —
    /// so this only affects *cost*: benchmarks and A/B validation call it
    /// between iterations to measure the assembly or closed-form path
    /// itself rather than a memo hit.
    pub fn clear_memo(&self) {
        self.memo.lock().expect("memo lock poisoned").clear();
    }

    /// The model this table was priced for (the caller's handle, used for
    /// identity checks).
    pub fn model(&self) -> &'a ModelArch {
        self.model
    }

    /// The primary-phase effective model: identical to
    /// [`PipelineCostTable::model`] unless the workload overrides the
    /// context length or batch (serve prompt/batch). Reports are built
    /// against this model.
    pub fn report_model(&self) -> &ModelArch {
        self.eff.as_deref().unwrap_or(self.model)
    }

    /// The cluster this table was priced for.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.cluster
    }

    /// The workload this table was priced for.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Whether the closed-form steady-state decode evaluator is enabled
    /// for serve candidates assembled through this table (on by default;
    /// it is byte-identical to full simulation, the knob exists for A/B
    /// validation and as an escape hatch).
    pub fn analytic_serve(&self) -> bool {
        self.analytic_serve
    }

    /// Enables or disables the closed-form steady-state decode path.
    pub fn set_analytic_serve(&mut self, on: bool) {
        self.analytic_serve = on;
    }

    /// The serve-stream dimensions of this table's workload, when it has
    /// a decode phase (inputs to the closed-form decode evaluator).
    pub fn serve_dims(&self) -> Option<madmax_core::ServeDims> {
        self.decode_model.as_deref()?;
        let model = self.report_model();
        Some(madmax_core::ServeDims {
            prompt_len: model.context_length,
            decode_len: self.decode_len,
            decode_batch: model.global_batch,
        })
    }

    /// The strategies `plan` assigns to the model's classes, in the
    /// table's canonical class order.
    fn assign_key(&self, plan: &Plan) -> Vec<HierStrategy> {
        self.classes.iter().map(|&c| plan.strategy_for(c)).collect()
    }

    /// Prices (once) everything `plan`'s candidate needs: the depth's
    /// partition and sub-cluster/sub-models, the assignment's per-stage
    /// memory, and the per-phase stage costs at the plan's microbatch
    /// count. Safe to call with every candidate of a search;
    /// already-priced keys and non-pipelined or error-shaped candidates
    /// (which re-derive their exact error at evaluation time) are skipped.
    ///
    /// # Panics
    ///
    /// Panics when `plan`'s pricing-relevant options diverge from the
    /// table's (see the module docs).
    pub fn ensure_plan(&mut self, plan: &Plan) {
        assert!(
            pricing_options_match(&self.options, &plan.options),
            "plan options diverge from the pipeline cost table's pricing context"
        );
        let Some(cfg) = plan.pipeline.filter(|c| c.is_pipelined()) else {
            return; // flat plans are the flat CostTable's business
        };
        let key = self.assign_key(plan);
        let primary: &ModelArch = self.eff.as_deref().unwrap_or(self.model);
        if plan.validate_strategies(primary).is_err() {
            return;
        }

        let di = match self.depths.iter().position(|(p, _)| *p == cfg.stages) {
            Some(i) => i,
            None => {
                let built = Self::build_depth(
                    primary,
                    self.decode_model.as_deref(),
                    self.cluster,
                    cfg.stages,
                );
                self.depths.push((cfg.stages, built));
                self.depths.len() - 1
            }
        };
        let collectives = self.collectives;
        let utilization = self.utilization;
        let (workload, cluster) = (&self.workload, self.cluster);
        let Ok(entry) = &mut self.depths[di].1 else {
            return; // unmappable depth; candidates reproduce the error
        };
        let ai = match entry.assignments.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                let per_stage_memory = stage_memory(&entry.sub_models, &entry.sub, plan, workload);
                entry.assignments.push((
                    key,
                    AssignEntry {
                        per_stage_memory,
                        by_m: Vec::new(),
                    },
                ));
                entry.assignments.len() - 1
            }
        };
        let ae = &mut entry.assignments[ai].1;

        // Mirror the uncached path's work exactly: candidates that fail
        // the memory fold or the microbatch bounds are never priced there
        // either (they error out first).
        if fold_pipeline_memory(
            &ae.per_stage_memory,
            cfg.microbatches,
            cfg.schedule,
            workload,
            plan,
            cluster,
        )
        .is_err()
            || microbatch_bounds(primary, cfg.microbatches).is_err()
        {
            return;
        }
        if let Some(dm) = self.decode_model.as_deref() {
            if microbatch_bounds(dm, cfg.microbatches).is_err() {
                return;
            }
        }
        if ae.by_m.iter().any(|(m, _)| *m == cfg.microbatches) {
            self.counters.hit();
            return;
        }

        let Ok(primary_costs) = stage_costs_in(
            primary,
            cluster,
            &entry.sub,
            &entry.sub_models,
            plan,
            workload,
            &entry.stages,
            cfg.microbatches,
            collectives,
            utilization,
        ) else {
            return;
        };
        let decode_costs = match self.decode_model.as_deref() {
            Some(dm) => {
                let Ok(costs) = stage_costs_in(
                    dm,
                    cluster,
                    &entry.sub,
                    &entry.decode_sub_models,
                    plan,
                    workload,
                    &entry.stages,
                    cfg.microbatches,
                    collectives,
                    utilization,
                ) else {
                    return;
                };
                Some(costs)
            }
            None => None,
        };
        self.counters.miss();
        let id = self.entries;
        self.entries += 1;
        ae.by_m.push((
            cfg.microbatches,
            PhaseCosts {
                id,
                primary: primary_costs,
                decode: decode_costs,
            },
        ));
    }

    /// Builds the depth-level context: partition, sub-cluster, and
    /// per-stage sub-models for both phases.
    fn build_depth(
        primary: &ModelArch,
        decode_model: Option<&ModelArch>,
        cluster: &ClusterSpec,
        p: usize,
    ) -> Result<DepthEntry, PlanError> {
        let stages = partition_model(primary, cluster, p)?;
        let sub = stage_cluster(cluster, p)?.into_owned();
        let sub_models = stage_models(primary, &stages);
        let decode_sub_models = decode_model.map_or_else(Vec::new, |dm| stage_models(dm, &stages));
        Ok(DepthEntry {
            stages,
            sub,
            sub_models,
            decode_sub_models,
            assignments: Vec::new(),
        })
    }

    /// Resolves one candidate against the table: borrowed priced stages
    /// plus the candidate's memory fold — or exactly the error
    /// `price_pipelined` would produce, in exactly its order (invalid
    /// strategies, then unmappable partition/sub-cluster, then the memory
    /// fold incl. OOM, then microbatch bounds per phase).
    ///
    /// # Errors
    ///
    /// Same conditions as `run_pipelined`.
    ///
    /// # Panics
    ///
    /// Panics when the candidate's (depth, assignment, microbatches) key
    /// was not priced via [`PipelineCostTable::ensure_plan`]; debug builds
    /// also assert that `plan`'s options match the pricing context.
    pub fn priced_for(&self, plan: &Plan) -> Result<PricedPipelineRef<'_>, PlanError> {
        debug_assert!(
            pricing_options_match(&self.options, &plan.options),
            "plan options diverge from the pipeline cost table's pricing context"
        );
        let Some(cfg) = plan.pipeline.filter(|c| c.is_pipelined()) else {
            return Err(PlanError::InvalidPipeline {
                reason: "plan has no active pipeline config (use the flat engine)".to_owned(),
            });
        };
        let primary = self.report_model();
        plan.validate_strategies(primary)?;
        let depth = self
            .depths
            .iter()
            .find(|(p, _)| *p == cfg.stages)
            .unwrap_or_else(|| {
                panic!(
                    "pipeline cost table has no entry for depth {}; \
                     call PipelineCostTable::ensure_plan for every plan first",
                    cfg.stages
                )
            });
        let entry = depth.1.as_ref().map_err(Clone::clone)?;
        let key = self.assign_key(plan);
        let ae = entry
            .assignments
            .iter()
            .find(|(k, _)| *k == key)
            .map_or_else(
                || {
                    panic!(
                        "pipeline cost table has no entry for {}; \
                         call PipelineCostTable::ensure_plan for every plan first",
                        plan.summary()
                    )
                },
                |(_, e)| e,
            );
        let memory = fold_pipeline_memory(
            &ae.per_stage_memory,
            cfg.microbatches,
            cfg.schedule,
            &self.workload,
            plan,
            self.cluster,
        )?;
        microbatch_bounds(primary, cfg.microbatches)?;
        if let Some(dm) = self.decode_model.as_deref() {
            microbatch_bounds(dm, cfg.microbatches)?;
        }
        let pc = ae
            .by_m
            .iter()
            .find(|(m, _)| *m == cfg.microbatches)
            .map_or_else(
                || {
                    panic!(
                        "pipeline cost table has no entry for {} microbatches; \
                         call PipelineCostTable::ensure_plan for every plan first",
                        cfg.microbatches
                    )
                },
                |(_, c)| c,
            );
        // Training traces depend on the schedule; serve traces do not (the
        // decode stream is forward-only), so all schedules share one tag
        // and the scratch memo collapses the schedule axis.
        let sched_tag = if self.workload.has_backward() {
            match cfg.schedule {
                madmax_parallel::PipelineSchedule::GPipe => 0,
                madmax_parallel::PipelineSchedule::OneFOneB => 1,
            }
        } else {
            2
        };
        Ok(PricedPipelineRef {
            primary: &pc.primary,
            decode: pc.decode.as_deref().map(|costs| (costs, self.decode_len)),
            cfg,
            prompt_len: primary.context_length,
            memory,
            memo_key: (self.generation, pc.id, sched_tag),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_core::HierarchicalNccl;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::{PipelineSchedule, ServeConfig, Strategy};

    fn table_for<'a>(
        model: &'a ModelArch,
        sys: &'a ClusterSpec,
        workload: Workload,
        options: PlanOptions,
    ) -> PipelineCostTable<'a> {
        PipelineCostTable::new(
            model,
            sys,
            workload,
            options,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
    }

    #[test]
    fn ensure_plan_is_idempotent_and_shares_keys() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let mut table = table_for(&model, &sys, Workload::pretrain(), base.options);
        for schedule in [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB] {
            let plan = base.clone().with_pipeline(PipelineConfig {
                stages: 8,
                microbatches: 16,
                schedule,
            });
            table.ensure_plan(&plan);
        }
        // Both schedules share one (depth, assignment, m) entry.
        assert_eq!(table.entries, 1);
        assert_eq!(table.depths.len(), 1);
        table.ensure_plan(&base.clone().with_pipeline(PipelineConfig::gpipe(8, 32)));
        assert_eq!(table.entries, 2, "new microbatch count prices once");
    }

    #[test]
    fn cached_pricing_matches_fresh_stage_costs() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let plan = base
            .clone()
            .with_pipeline(PipelineConfig::one_f_one_b(8, 32));
        let mut table = table_for(&model, &sys, Workload::pretrain(), base.options);
        table.ensure_plan(&plan);
        let priced = table.priced_for(&plan).unwrap();
        let stages = partition_model(&model, &sys, 8).unwrap();
        let fresh = crate::cost::stage_costs(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &stages,
            32,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
        .unwrap();
        assert_eq!(priced.primary, fresh.as_slice());
        let fresh_mem = crate::memory::pipeline_memory(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &stages,
            32,
            PipelineSchedule::OneFOneB,
        )
        .unwrap();
        assert_eq!(priced.memory, fresh_mem);
        assert!(priced.decode.is_none());
    }

    #[test]
    fn serve_tables_price_both_phases_and_share_schedule_entries() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let workload = Workload::serve(ServeConfig::new(512, 16).with_decode_batch(512));
        let mut table = table_for(&model, &sys, workload, base.options);
        let gpipe = base.clone().with_pipeline(PipelineConfig::gpipe(8, 8));
        let fb = base
            .clone()
            .with_pipeline(PipelineConfig::one_f_one_b(8, 8));
        table.ensure_plan(&gpipe);
        table.ensure_plan(&fb);
        let a = table.priced_for(&gpipe).unwrap();
        let b = table.priced_for(&fb).unwrap();
        assert!(a.decode.is_some());
        // Serve traces are schedule-independent: both candidates resolve
        // to the same memo key, so a recycled scratch skips re-assembly.
        assert_eq!(a.memo_key, b.memo_key);
    }

    #[test]
    fn error_shapes_match_the_uncached_path() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let mut table = table_for(&model, &sys, Workload::pretrain(), base.options);

        // No active pipeline config.
        table.ensure_plan(&base);
        let err = table.priced_for(&base).unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }));

        // Unmappable depth (256 nodes cannot split 7 ways).
        let bad = base.clone().with_pipeline(PipelineConfig::gpipe(7, 8));
        table.ensure_plan(&bad);
        let err = table.priced_for(&bad).unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }), "{err}");

        // Invalid strategy for a class.
        let invalid = base
            .clone()
            .with_strategy(LayerClass::Embedding, HierStrategy::flat(Strategy::Tp))
            .with_pipeline(PipelineConfig::gpipe(8, 16));
        table.ensure_plan(&invalid);
        let err = table.priced_for(&invalid).unwrap_err();
        assert!(matches!(err, PlanError::InvalidStrategy { .. }), "{err}");

        // Bad microbatch count.
        let zero_m = base.clone().with_pipeline(PipelineConfig::gpipe(8, 0));
        table.ensure_plan(&zero_m);
        let err = table.priced_for(&zero_m).unwrap_err();
        assert!(matches!(err, PlanError::InvalidPipeline { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn assembling_an_unpriced_key_panics() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let mut table = table_for(&model, &sys, Workload::pretrain(), base.options);
        table.ensure_plan(&base.clone().with_pipeline(PipelineConfig::gpipe(8, 16)));
        let other = base.with_pipeline(PipelineConfig::gpipe(4, 16));
        let _ = table.priced_for(&other);
    }

    #[test]
    #[should_panic(expected = "options diverge")]
    fn mismatched_pricing_options_rejected() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let mut table = table_for(&model, &sys, Workload::pretrain(), base.options);
        let mut other = base.with_pipeline(PipelineConfig::gpipe(8, 16));
        other.options.activation_checkpointing = !other.options.activation_checkpointing;
        table.ensure_plan(&other);
    }
}
