//! Pipeline-aware memory feasibility: each stage holds only its own layers'
//! parameters/gradients/optimizer state, but must retain activations for
//! every in-flight microbatch — all `m` under GPipe's fill-drain, at most
//! the pipeline depth under 1F1B (its raison d'être).

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{
    memory_per_device, MemoryBreakdown, PipelineSchedule, Plan, PlanError, Workload,
};

use crate::cost::{stage_cluster, stage_models};
use crate::partition::Stage;

/// Computes the worst-stage per-device footprint of a pipelined mapping and
/// checks it against usable HBM.
///
/// Composed of [`stage_memory`] (the per-stage raw footprints, which do
/// not depend on the microbatch count or schedule) and
/// [`fold_pipeline_memory`] (the schedule-aware worst-stage fold); the
/// shared `PipelineCostTable` caches the former and re-runs only the
/// latter per candidate.
///
/// # Errors
///
/// [`PlanError::InvalidStrategy`] for class/strategy mismatches,
/// [`PlanError::InvalidPipeline`] for indivisible device counts, and
/// [`PlanError::OutOfMemory`] when the worst stage exceeds usable HBM
/// (unless the plan ignores memory limits).
pub fn pipeline_memory(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    stages: &[Stage],
    microbatches: usize,
    schedule: PipelineSchedule,
) -> Result<MemoryBreakdown, PlanError> {
    plan.validate_strategies(model)?;
    let sub = stage_cluster(cluster, stages.len())?;
    let models = stage_models(model, stages);
    let per_stage = stage_memory(&models, &sub, plan, workload);
    fold_pipeline_memory(&per_stage, microbatches, schedule, workload, plan, cluster)
}

/// The raw per-stage footprints of a pipelined mapping: each stage holds
/// its own sub-model's parameters/gradients/optimizer state on the stage
/// sub-cluster. Schedule-independent (activations are the full-retention
/// GPipe worst case; [`fold_pipeline_memory`] applies 1F1B's in-flight
/// bound).
pub fn stage_memory(
    stage_models: &[ModelArch],
    sub: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> Vec<MemoryBreakdown> {
    stage_models
        .iter()
        .map(|m| memory_per_device(m, sub, plan, workload))
        .collect()
}

/// Folds raw per-stage footprints into the worst-stage breakdown for one
/// `(microbatches, schedule)` candidate and checks it against usable HBM.
///
/// # Errors
///
/// [`PlanError::OutOfMemory`] when the worst stage exceeds usable HBM and
/// the plan does not ignore memory limits.
pub fn fold_pipeline_memory(
    per_stage: &[MemoryBreakdown],
    microbatches: usize,
    schedule: PipelineSchedule,
    workload: &Workload,
    plan: &Plan,
    cluster: &ClusterSpec,
) -> Result<MemoryBreakdown, PlanError> {
    let p = per_stage.len();
    let mut worst = MemoryBreakdown::default();
    let mut worst_total = f64::NEG_INFINITY;
    for breakdown in per_stage {
        let mut b = *breakdown;
        // memory_per_device retains the full global batch's activations —
        // exactly GPipe's worst case. 1F1B keeps at most `p` in-flight
        // microbatches of the `m` total.
        if schedule == PipelineSchedule::OneFOneB && workload.has_backward() {
            let in_flight = (p.min(microbatches)) as f64 / microbatches as f64;
            b.activations = b.activations * in_flight.min(1.0);
        }
        if b.total().value() > worst_total {
            worst_total = b.total().value();
            worst = b;
        }
    }

    if plan.options.ignore_memory_limits {
        return Ok(worst);
    }
    let usable = plan.options.memory.usable(cluster.device.hbm_capacity);
    if worst.total() > usable {
        return Err(PlanError::OutOfMemory {
            required: worst.total(),
            usable,
        });
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_model;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    #[test]
    fn one_f_one_b_retains_less_than_gpipe() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let mut plan = Plan::fsdp_baseline(&model);
        plan.options.ignore_memory_limits = true;
        let stages = partition_model(&model, &sys, 8).unwrap();
        let gpipe = pipeline_memory(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &stages,
            32,
            PipelineSchedule::GPipe,
        )
        .unwrap();
        let fb = pipeline_memory(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &stages,
            32,
            PipelineSchedule::OneFOneB,
        )
        .unwrap();
        assert!(fb.activations < gpipe.activations);
        assert_eq!(fb.params, gpipe.params);
        // 8 in-flight of 32 microbatches -> 1/4 the activations.
        let ratio = gpipe.activations.value() / fb.activations.value();
        assert!((ratio - 4.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn stages_shrink_parameter_footprint() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let mut plan = Plan::fsdp_baseline(&model);
        plan.options.ignore_memory_limits = true;
        let flat = memory_per_device(&model, &sys, &plan, &Workload::pretrain());
        let stages = partition_model(&model, &sys, 8).unwrap();
        let piped = pipeline_memory(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &stages,
            32,
            PipelineSchedule::OneFOneB,
        )
        .unwrap();
        // Each stage's FSDP group is 8x smaller but owns 1/8 of the layers:
        // the sharded parameter bytes stay comparable, while the transient
        // unsharded gather buffer is unchanged. The pipelined footprint must
        // not exceed the flat one.
        assert!(
            piped.total() <= flat.total() * 1.05,
            "{piped:?} vs {flat:?}"
        );
    }
}
