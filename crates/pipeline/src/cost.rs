//! Per-stage cost derivation: turns a stage partition into the
//! per-microbatch compute/communication durations the schedule builders
//! consume, pricing intra-stage collectives and inter-stage P2P transfers
//! with the existing `madmax-core` cost models.

use std::borrow::Cow;

use madmax_hw::units::{ByteCount, Seconds};
use madmax_hw::{ClusterSpec, CommLevel, DType};
use madmax_model::{LayerClass, LayerKind, ModelArch};
use madmax_parallel::comm::CommPosition;
use madmax_parallel::{
    derive_layer_comm, CollectiveKind, CommReq, CommScope, Plan, PlanError, Urgency, Workload,
};

use madmax_core::compute::{backward_flops_factor, compute_time, lookup_time, optimizer_time};
use madmax_core::{CollectiveModel, UtilizationModel};

use crate::partition::Stage;

/// Everything the schedule builders need to know about one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCosts {
    /// Forward compute (+ lookups) per microbatch.
    pub fwd_compute: Seconds,
    /// Backward compute per microbatch (zero for inference).
    pub bwd_compute: Seconds,
    /// Blocking forward collectives per microbatch (TP partial sums,
    /// embedding/MoE All2All), aggregated by primitive.
    pub fwd_comm: Vec<(CollectiveKind, Seconds)>,
    /// Blocking backward collectives per microbatch.
    pub bwd_comm: Vec<(CollectiveKind, Seconds)>,
    /// Activation P2P send to the next stage, per microbatch (zero-duration
    /// for the last stage).
    pub send_fwd: Seconds,
    /// Gradient P2P send to the previous stage, per microbatch.
    pub send_bwd: Seconds,
    /// Once-per-iteration prefetchable parameter collectives (FSDP
    /// AllGathers for forward and backward).
    pub param_comm: Vec<(CollectiveKind, Seconds)>,
    /// Once-per-iteration deferred weight-gradient collectives.
    pub grad_comm: Vec<(CollectiveKind, Seconds)>,
    /// Optimizer-step time for the stage's shard of parameters.
    pub optimizer: Seconds,
    /// The layer class dominating the stage's compute (for breakdowns).
    pub dominant_class: LayerClass,
    /// Whether the stage's compute is embedding-lookup dominated.
    pub lookup_dominated: bool,
    /// Per-token KV-cache read time per microbatch (serve workloads with
    /// cache modeling, priced from the decode-phase model): a decode step
    /// at cache length `L` stretches the stage's compute by
    /// `kv_read_per_token * L`.
    pub kv_read_per_token: Seconds,
}

/// The sub-cluster one stage's devices form: total devices divided by the
/// pipeline depth, splitting whole nodes when possible. Borrows the
/// cluster unchanged for `p <= 1` and clones only when an actual sub-spec
/// must be derived — callers on the evaluation hot path cache the result
/// per depth (see `PipelineCostTable`) instead of re-splitting per
/// candidate.
///
/// # Errors
///
/// Returns [`PlanError::InvalidPipeline`] when the device count is not
/// divisible into `p` equal stage groups along the node hierarchy.
pub fn stage_cluster(cluster: &ClusterSpec, p: usize) -> Result<Cow<'_, ClusterSpec>, PlanError> {
    if p <= 1 {
        return Ok(Cow::Borrowed(cluster));
    }
    if cluster.num_nodes >= p && cluster.num_nodes.is_multiple_of(p) {
        return Ok(Cow::Owned(
            cluster.clone().with_num_nodes(cluster.num_nodes / p),
        ));
    }
    if cluster.num_nodes == 1
        && cluster.devices_per_node.is_multiple_of(p)
        && cluster.devices_per_node >= p
    {
        let mut sub = cluster.clone();
        sub.devices_per_node /= p;
        return Ok(Cow::Owned(sub));
    }
    Err(PlanError::InvalidPipeline {
        reason: format!(
            "{} nodes x {} devices cannot be split into {p} equal stage groups",
            cluster.num_nodes, cluster.devices_per_node
        ),
    })
}

/// The interconnect level inter-stage P2P transfers cross: stage groups
/// occupy whole node blocks on multi-node systems, so boundaries cross the
/// scale-out fabric; on a single node they stay on the scale-up fabric.
pub fn p2p_level(cluster: &ClusterSpec) -> CommLevel {
    if cluster.num_nodes > 1 {
        CommLevel::InterNode
    } else {
        CommLevel::IntraNode
    }
}

/// Output activation bytes per sample at a layer's boundary (what a
/// pipeline stage ships to its successor if the stage ends here).
pub fn boundary_bytes_per_sample(kind: &LayerKind, tokens: usize, act_dtype: DType) -> ByteCount {
    let bytes = f64::from(act_dtype.size_bytes());
    let b = match kind {
        LayerKind::Mlp(m) => m.out_dim() as f64 * bytes,
        LayerKind::EmbeddingBag(e) => e.pooled_output_bytes_per_sample(),
        LayerKind::TokenEmbedding(t) => t.dim as f64 * tokens as f64 * bytes,
        LayerKind::Interaction(i) => i.out_dim() as f64 * bytes,
        LayerKind::TransformerBlock(t) => t.hidden as f64 * t.seq_len(tokens) as f64 * bytes,
        LayerKind::Moe(m) => m.expert.out_dim() as f64 * tokens as f64 * bytes,
    };
    ByteCount::new(b)
}

fn add_comm(bucket: &mut Vec<(CollectiveKind, Seconds)>, kind: CollectiveKind, t: Seconds) {
    if t.is_zero() {
        return;
    }
    match bucket.iter_mut().find(|(k, _)| *k == kind) {
        Some((_, acc)) => *acc += t,
        None => bucket.push((kind, t)),
    }
}

fn p2p_time(
    payload: ByteCount,
    cluster: &ClusterSpec,
    collective_model: &dyn CollectiveModel,
) -> Seconds {
    if payload.is_zero() {
        return Seconds::ZERO;
    }
    let req = CommReq {
        collective: CollectiveKind::PointToPoint,
        scope: CommScope::Level(p2p_level(cluster)),
        group_size: 2,
        payload,
        urgency: Urgency::Blocking,
        position: CommPosition::AfterCompute,
        label: "stage.p2p".to_owned(),
    };
    collective_model.time(&req, cluster)
}

/// Builds the sub-`ModelArch` one stage executes (used for memory and
/// optimizer accounting).
pub fn stage_model(model: &ModelArch, stage: &Stage, index: usize) -> ModelArch {
    let groups = stage
        .units
        .iter()
        .map(|u| {
            let mut g = model.groups[u.group].clone();
            g.repeat = u.instances;
            g
        })
        .collect();
    ModelArch {
        name: format!("{} [stage {index}]", model.name),
        groups,
        ..model.clone()
    }
}

/// The error [`stage_costs`] reports for a microbatch count that is zero
/// or exceeds the global batch (shared with the cached path so the error
/// value cannot drift).
pub fn microbatch_bounds(model: &ModelArch, microbatches: usize) -> Result<(), PlanError> {
    if microbatches == 0 || microbatches > model.global_batch {
        return Err(PlanError::InvalidPipeline {
            reason: format!(
                "{microbatches} microbatches for a global batch of {}",
                model.global_batch
            ),
        });
    }
    Ok(())
}

/// Derives per-stage costs for `stages` of `model` under `plan`, with the
/// global batch split into `microbatches`.
///
/// Derives the stage sub-cluster and per-stage sub-models itself; the
/// evaluation hot path goes through [`stage_costs_in`] with cached ones
/// instead.
///
/// # Errors
///
/// Returns [`PlanError::InvalidPipeline`] for indivisible device counts or
/// a microbatch count exceeding the global batch.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by sim + benches
pub fn stage_costs(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    stages: &[Stage],
    microbatches: usize,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<Vec<StageCosts>, PlanError> {
    microbatch_bounds(model, microbatches)?;
    let sub = stage_cluster(cluster, stages.len())?;
    let models = stage_models(model, stages);
    stage_costs_in(
        model,
        cluster,
        &sub,
        &models,
        plan,
        workload,
        stages,
        microbatches,
        collective_model,
        utilization,
    )
}

/// Builds every stage's sub-[`ModelArch`] (see [`stage_model`]).
pub fn stage_models(model: &ModelArch, stages: &[Stage]) -> Vec<ModelArch> {
    stages
        .iter()
        .enumerate()
        .map(|(si, stage)| stage_model(model, stage, si))
        .collect()
}

/// [`stage_costs`] against a pre-derived stage sub-cluster and pre-built
/// per-stage sub-models, so repeated pricing (one call per search key
/// instead of one per candidate) clones no `ClusterSpec` or `ModelArch`.
///
/// # Errors
///
/// Same conditions as [`stage_costs`].
#[allow(clippy::too_many_arguments)] // internal plumbing shared by sim + the cost table
pub fn stage_costs_in(
    model: &ModelArch,
    cluster: &ClusterSpec,
    sub: &ClusterSpec,
    stage_models: &[ModelArch],
    plan: &Plan,
    workload: &Workload,
    stages: &[Stage],
    microbatches: usize,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<Vec<StageCosts>, PlanError> {
    let p = stages.len();
    microbatch_bounds(model, microbatches)?;
    let stage_devices = sub.total_devices() as f64;
    let micro_global = model.global_batch as f64 / microbatches as f64;
    let local_micro = micro_global / stage_devices;
    let tokens = model.context_length;

    let mut out = Vec::with_capacity(p);
    for (si, stage) in stages.iter().enumerate() {
        let mut costs = StageCosts {
            fwd_compute: Seconds::ZERO,
            bwd_compute: Seconds::ZERO,
            fwd_comm: Vec::new(),
            bwd_comm: Vec::new(),
            send_fwd: Seconds::ZERO,
            send_bwd: Seconds::ZERO,
            param_comm: Vec::new(),
            grad_comm: Vec::new(),
            optimizer: Seconds::ZERO,
            dominant_class: LayerClass::Dense,
            lookup_dominated: false,
            kv_read_per_token: Seconds::ZERO,
        };
        let mut class_weight: Vec<(LayerClass, f64)> = Vec::new();
        let mut lookup_secs = 0.0;
        let kv_modeled = workload.serve_config().is_some_and(|c| c.kv_cache);

        for unit in &stage.units {
            let group = &model.groups[unit.group];
            let reps = unit.instances as f64;

            // Compute / lookup per microbatch. Under the balanced-work
            // assumption per-device FLOPs are local_batch x per-sample FLOPs
            // for every strategy (TP's split and larger group batch cancel).
            let (fwd, is_lookup) = if group.kind.is_memory_bound() {
                let bytes = group.kind.lookup_bytes_per_sample(tokens) * local_micro;
                (lookup_time(bytes, sub), true)
            } else {
                let flops = group.kind.flops_fwd_per_sample(tokens) * local_micro;
                (compute_time(flops, model, sub, &utilization), false)
            };
            let fwd = fwd * reps;
            costs.fwd_compute += fwd;
            if is_lookup {
                lookup_secs += fwd.as_secs();
            }
            match class_weight.iter_mut().find(|(c, _)| *c == group.class) {
                Some((_, w)) => *w += fwd.as_secs(),
                None => class_weight.push((group.class, fwd.as_secs())),
            }

            if workload.has_backward() && workload.trains(group.class) {
                let recompute = plan.options.activation_checkpointing
                    && matches!(
                        group.kind,
                        LayerKind::TransformerBlock(_) | LayerKind::Moe(_)
                    );
                if is_lookup {
                    // Gradient scatter back into HBM mirrors the lookup.
                    costs.bwd_compute += fwd;
                } else {
                    costs.bwd_compute += fwd * backward_flops_factor(recompute);
                }
            }

            // KV-cache read coefficient: each attention instance re-reads
            // its cached keys/values (local batch share over the TP heads)
            // once per token position.
            if kv_modeled {
                let per_token = group.kind.kv_cache_bytes_per_token(model.compute_dtype);
                if !per_token.is_zero() {
                    let tp_part = plan.strategy_for(group.class).compute_shard_factor(sub);
                    costs.kv_read_per_token +=
                        lookup_time(per_token * local_micro / tp_part, sub) * reps;
                }
            }

            // Collectives: blocking activation traffic scales with the
            // microbatch; parameter traffic happens once per iteration.
            let comm = derive_layer_comm(group, plan, model, sub, workload, local_micro);
            for req in &comm.forward {
                let t = collective_model.time(req, sub) * reps;
                match (req.urgency, req.position) {
                    (Urgency::Prefetchable, _) => {
                        add_comm(&mut costs.param_comm, req.collective, t);
                    }
                    (_, CommPosition::BeforeCompute | CommPosition::AfterCompute) => {
                        add_comm(&mut costs.fwd_comm, req.collective, t);
                    }
                }
            }
            for req in &comm.backward {
                let t = collective_model.time(req, sub) * reps;
                if req.urgency == Urgency::Prefetchable {
                    add_comm(&mut costs.param_comm, req.collective, t);
                } else {
                    add_comm(&mut costs.bwd_comm, req.collective, t);
                }
            }
            for req in &comm.grad {
                let t = collective_model.time(req, sub) * reps;
                add_comm(&mut costs.grad_comm, req.collective, t);
            }
        }

        // Inter-stage transfers: the boundary layer's activations flow
        // forward; a same-sized gradient flows backward during training.
        if si + 1 < p {
            let last = stage.units.last().expect("stages are non-empty");
            let boundary = boundary_bytes_per_sample(
                &model.groups[last.group].kind,
                tokens,
                model.compute_dtype,
            ) * local_micro;
            costs.send_fwd = p2p_time(boundary, cluster, collective_model);
        }
        if si > 0 && workload.has_backward() {
            // The gradient shipped to the previous stage matches that
            // stage's boundary activations — i.e. this stage's input.
            let prev_out = boundary_input_bytes(model, stages, si, tokens) * local_micro;
            costs.send_bwd = p2p_time(prev_out, cluster, collective_model);
        }

        // Optimizer: streams the stage's parameter/optimizer shard once.
        costs.optimizer = optimizer_time(&stage_models[si], sub, plan, workload);

        class_weight.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        if let Some(&(c, w)) = class_weight.first() {
            costs.dominant_class = c;
            costs.lookup_dominated =
                lookup_secs > w || lookup_secs >= costs.fwd_compute.as_secs() * 0.5;
        }
        out.push(costs);
    }
    Ok(out)
}

/// Boundary activation bytes per sample entering stage `si` (the output of
/// the last layer of stage `si - 1`).
fn boundary_input_bytes(
    model: &ModelArch,
    stages: &[Stage],
    si: usize,
    tokens: usize,
) -> ByteCount {
    let prev_last = stages[si - 1].units.last().expect("stages are non-empty");
    boundary_bytes_per_sample(
        &model.groups[prev_last.group].kind,
        tokens,
        model.compute_dtype,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_model;
    use madmax_core::HierarchicalNccl;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    fn llm_setup() -> (ModelArch, ClusterSpec, Plan) {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        (model, sys, plan)
    }

    #[test]
    fn stage_cluster_splits_nodes() {
        let sys = catalog::llama_llm_system(); // 256 nodes x 8
        let sub = stage_cluster(&sys, 8).unwrap();
        assert_eq!(sub.num_nodes * 8, sys.num_nodes);
        assert_eq!(sub.devices_per_node, sys.devices_per_node);
        assert!(stage_cluster(&sys, 7).is_err());
        // Single-node systems split within the node.
        let one = catalog::zionex_dlrm_system().with_num_nodes(1);
        let quarters = stage_cluster(&one, 4).unwrap();
        assert_eq!(quarters.total_devices(), 2);
    }

    #[test]
    fn costs_scale_with_microbatches() {
        let (model, sys, plan) = llm_setup();
        let stages = partition_model(&model, &sys, 8).unwrap();
        let c8 = stage_costs(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &stages,
            8,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
        .unwrap();
        let c32 = stage_costs(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &stages,
            32,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
        .unwrap();
        for (a, b) in c8.iter().zip(&c32) {
            // Per-microbatch compute shrinks 4x with 4x the microbatches.
            assert!((a.fwd_compute.as_secs() / b.fwd_compute.as_secs() - 4.0).abs() < 1e-9);
            // Parameter collectives are batch-independent.
            let pa: Seconds = a.param_comm.iter().map(|(_, t)| *t).sum();
            let pb: Seconds = b.param_comm.iter().map(|(_, t)| *t).sum();
            assert!((pa.as_secs() - pb.as_secs()).abs() < 1e-12);
        }
    }

    #[test]
    fn interior_stages_send_both_ways() {
        let (model, sys, plan) = llm_setup();
        let stages = partition_model(&model, &sys, 4).unwrap();
        let costs = stage_costs(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &stages,
            16,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
        .unwrap();
        assert!(costs[0].send_fwd > Seconds::ZERO);
        assert_eq!(costs[0].send_bwd, Seconds::ZERO);
        assert!(costs[1].send_fwd > Seconds::ZERO);
        assert!(costs[1].send_bwd > Seconds::ZERO);
        let last = costs.last().unwrap();
        assert_eq!(last.send_fwd, Seconds::ZERO);
        assert!(last.send_bwd > Seconds::ZERO);
        // Inference ships no gradients.
        let infer = stage_costs(
            &model,
            &sys,
            &plan,
            &Workload::inference(),
            &stages,
            16,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
        .unwrap();
        assert!(infer.iter().all(|c| c.send_bwd.is_zero()));
        assert!(infer.iter().all(|c| c.bwd_compute.is_zero()));
    }

    #[test]
    fn microbatch_bounds_checked() {
        let (model, sys, plan) = llm_setup();
        let stages = partition_model(&model, &sys, 4).unwrap();
        for bad in [0usize, model.global_batch + 1] {
            let err = stage_costs(
                &model,
                &sys,
                &plan,
                &Workload::pretrain(),
                &stages,
                bad,
                &HierarchicalNccl,
                UtilizationModel::Constant,
            )
            .unwrap_err();
            assert!(matches!(err, PlanError::InvalidPipeline { .. }));
        }
    }
}
