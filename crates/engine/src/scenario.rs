//! The [`Scenario`] builder: one entry point for flat and pipelined
//! simulation.

use madmax_core::collective::{CollectiveModel, HierarchicalNccl};
use madmax_core::compute::UtilizationModel;
use madmax_core::{IterationReport, Schedule, Trace};
use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{Plan, Task};

use crate::error::EngineError;

/// One simulation scenario: a model mapped onto a system by a plan,
/// executing a task.
///
/// `Scenario` is the single front door to the MAD-Max performance model.
/// [`Scenario::run`] inspects the plan's
/// [`madmax_parallel::PipelineConfig`] and dispatches to the flat SPMD
/// engine (`madmax_core::run_flat`) or the pipeline engine
/// (`madmax_pipeline::run_pipelined`), returning the same
/// [`IterationReport`] either way and one [`EngineError`] on failure.
///
/// # Examples
///
/// ```
/// use madmax_engine::Scenario;
/// use madmax_hw::catalog;
/// use madmax_model::ModelId;
/// use madmax_parallel::{PipelineConfig, Plan, Task};
///
/// # fn main() -> Result<(), madmax_engine::EngineError> {
/// let model = ModelId::Llama2.build();
/// let system = catalog::llama_llm_system();
///
/// // Flat plan (the default FSDP baseline) ...
/// let flat = Scenario::new(&model, &system).run()?;
///
/// // ... and a pipelined plan, through the same entry point.
/// let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, 32));
/// let piped = Scenario::new(&model, &system)
///     .task(Task::Pretraining)
///     .plan(plan)
///     .run()?;
/// assert!(flat.bubble_fraction.is_none());
/// assert!(piped.bubble_fraction.unwrap() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Scenario<'a> {
    model: &'a ModelArch,
    system: &'a ClusterSpec,
    plan: Option<Plan>,
    task: Task,
    collectives: &'a dyn CollectiveModel,
    utilization: UtilizationModel,
}

impl<'a> Scenario<'a> {
    /// Creates a scenario with the FSDP-baseline plan, the pre-training
    /// task, the default NCCL-style collective model, and constant compute
    /// utilization.
    pub fn new(model: &'a ModelArch, system: &'a ClusterSpec) -> Self {
        Self {
            model,
            system,
            plan: None,
            task: Task::Pretraining,
            collectives: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
    }

    /// Sets the task (default: [`Task::Pretraining`]).
    #[must_use]
    pub fn task(mut self, task: Task) -> Self {
        self.task = task;
        self
    }

    /// Sets the parallelization plan (default: [`Plan::fsdp_baseline`]).
    /// A plan with an active pipeline config routes the scenario through
    /// the pipeline engine.
    #[must_use]
    pub fn plan(mut self, plan: Plan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Replaces the collective cost model (ablation studies).
    #[must_use]
    pub fn collectives(mut self, m: &'a dyn CollectiveModel) -> Self {
        self.collectives = m;
        self
    }

    /// Replaces the compute-utilization model (e.g. the workload-dependent
    /// MFU model of Fig. 8).
    #[must_use]
    pub fn utilization(mut self, u: UtilizationModel) -> Self {
        self.utilization = u;
        self
    }

    /// The plan this scenario will execute (the configured one, or the
    /// FSDP baseline).
    pub fn effective_plan(&self) -> Plan {
        self.plan
            .clone()
            .unwrap_or_else(|| Plan::fsdp_baseline(self.model))
    }

    fn is_pipelined(plan: &Plan) -> bool {
        plan.pipeline.is_some_and(|c| c.is_pipelined())
    }

    /// Runs the scenario end to end.
    ///
    /// # Errors
    ///
    /// [`EngineError::OutOfMemory`] when the mapping does not fit in
    /// device memory, [`EngineError::InvalidPlan`] for everything else
    /// (invalid strategy/class combinations, unmappable pipelines, ...).
    pub fn run(&self) -> Result<IterationReport, EngineError> {
        let (report, _, _) = self.run_with_trace()?;
        Ok(report)
    }

    /// Runs the scenario, also returning the trace and schedule for
    /// timeline rendering.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::run`].
    pub fn run_with_trace(&self) -> Result<(IterationReport, Trace, Schedule), EngineError> {
        let plan = self.effective_plan();
        let result = if Self::is_pipelined(&plan) {
            madmax_pipeline::run_pipelined(
                self.model,
                self.system,
                &plan,
                &self.task,
                self.collectives,
                self.utilization,
            )
        } else {
            madmax_core::run_flat(
                self.model,
                self.system,
                &plan,
                &self.task,
                self.collectives,
                self.utilization,
            )
        };
        result.map_err(EngineError::from)
    }

    /// Builds the scenario's trace without scheduling it (for inspection /
    /// Fig. 6 timelines). For pipelined plans this is the multi-stream
    /// stage trace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::run`].
    pub fn build_trace(&self) -> Result<Trace, EngineError> {
        let plan = self.effective_plan();
        if Self::is_pipelined(&plan) {
            madmax_pipeline::build_pipelined_trace(
                self.model,
                self.system,
                &plan,
                &self.task,
                self.collectives,
                self.utilization,
            )
            .map_err(EngineError::from)
        } else {
            madmax_core::build_flat_trace(
                self.model,
                self.system,
                &plan,
                &self.task,
                self.collectives,
                self.utilization,
            )
            .map_err(EngineError::from)
        }
    }
}

/// One-shot convenience wrapper: runs a [`Scenario`] with an explicit
/// plan and task.
///
/// # Errors
///
/// Same conditions as [`Scenario::run`].
pub fn simulate(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    task: Task,
) -> Result<IterationReport, EngineError> {
    Scenario::new(model, system)
        .plan(plan.clone())
        .task(task)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_core::FlatWorstLink;
    use madmax_hw::catalog;
    use madmax_model::{LayerClass, ModelId};
    use madmax_parallel::{HierStrategy, PipelineConfig, Strategy};

    #[test]
    fn defaults_run_the_fsdp_baseline() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let scenario = Scenario::new(&model, &sys);
        assert_eq!(scenario.effective_plan(), Plan::fsdp_baseline(&model));
        let r = scenario.run().unwrap();
        assert!(r.mqps() > 0.3 && r.mqps() < 5.0);
    }

    #[test]
    fn pipelined_plans_dispatch_to_the_stage_engine() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let r = Scenario::new(&model, &sys).plan(plan).run().unwrap();
        assert!(r.bubble_fraction.unwrap() > 0.0);
    }

    #[test]
    fn oom_maps_to_the_unified_error() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model)
            .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
        let err = Scenario::new(&model, &sys).plan(plan).run().unwrap_err();
        assert!(err.is_oom(), "{err}");
    }

    #[test]
    fn unmappable_pipeline_maps_to_the_unified_error() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8));
        let err = Scenario::new(&model, &sys).plan(plan).run().unwrap_err();
        assert!(err.is_unmappable_pipeline(), "{err}");
    }

    #[test]
    fn collective_and_utilization_knobs_apply_to_both_paths() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let hier = Scenario::new(&model, &sys).run().unwrap();
        let flat_model = FlatWorstLink;
        let flat = Scenario::new(&model, &sys)
            .collectives(&flat_model)
            .run()
            .unwrap();
        assert!(flat.comm_time > hier.comm_time);

        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let hier_pp = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .run()
            .unwrap();
        let flat_pp = Scenario::new(&model, &sys)
            .plan(plan)
            .collectives(&flat_model)
            .run()
            .unwrap();
        assert!(flat_pp.iteration_time >= hier_pp.iteration_time);
    }

    #[test]
    fn trace_views_are_consistent() {
        let model = ModelId::DlrmB.build();
        let sys = catalog::zionex_dlrm_system();
        let scenario = Scenario::new(&model, &sys);
        let (report, trace, sched) = scenario.run_with_trace().unwrap();
        assert_eq!(trace.len(), sched.windows.len());
        assert!((trace.serialized_time() / report.serialized_time - 1.0).abs() < 1e-12);
        let inspect = scenario.build_trace().unwrap();
        assert_eq!(trace, inspect);
    }

    #[test]
    fn one_shot_wrapper_matches_builder() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let a = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        let b = Scenario::new(&model, &sys)
            .plan(plan)
            .task(Task::Pretraining)
            .run()
            .unwrap();
        assert_eq!(a, b);
    }
}
