//! The [`Scenario`] builder: one entry point for flat and pipelined
//! simulation of any [`Workload`].

use std::borrow::Cow;

use madmax_core::collective::{CollectiveModel, HierarchicalNccl};
use madmax_core::compute::UtilizationModel;
use madmax_core::{CostTable, EngineScratch, IterationReport, Schedule, Trace};
use madmax_fault::{
    expected_goodput, young_daly_interval, CheckpointModel, FaultEvent, FaultSpec, GoodputReport,
    RetryPolicy,
};
use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{LoadSpec, Plan, Workload};
use madmax_pipeline::PipelineCostTable;
use madmax_serve::{LoadOutcome, SimMode, StepCostModel};

use crate::error::EngineError;

/// Everything a failure-aware training-goodput evaluation produces.
#[derive(Debug, Clone)]
pub struct GoodputOutcome {
    /// The fault-free iteration report (its `memory` breakdown prices
    /// the checkpoint).
    pub report: IterationReport,
    /// Priced checkpoint/restart costs of this plan on this cluster.
    pub ckpt: CheckpointModel,
    /// The closed-form expected-goodput evaluation.
    pub goodput: GoodputReport,
}

/// One simulation scenario: a model mapped onto a system by a plan,
/// executing a workload.
///
/// `Scenario` is the single front door to the MAD-Max performance model.
/// [`Scenario::run`] inspects the plan's
/// [`madmax_parallel::PipelineConfig`] and dispatches to the flat SPMD
/// engine (`madmax_core::run_flat`) or the pipeline engine
/// (`madmax_pipeline::run_pipelined`), returning the same
/// [`IterationReport`] either way and one [`EngineError`] on failure.
///
/// The workload axis spans training and serving:
/// [`Workload::pretrain`], [`Workload::finetune`], and
/// [`Workload::serve`] (prefill + token-level decode with a KV-cache;
/// serve runs additionally report TTFT/TPOT through
/// [`IterationReport::serve`]).
///
/// # Examples
///
/// ```
/// use madmax_engine::Scenario;
/// use madmax_hw::catalog;
/// use madmax_model::ModelId;
/// use madmax_parallel::{PipelineConfig, Plan, ServeConfig, Workload};
///
/// # fn main() -> Result<(), madmax_engine::EngineError> {
/// let model = ModelId::Llama2.build();
/// let system = catalog::llama_llm_system();
///
/// // Flat plan (the default FSDP baseline) ...
/// let flat = Scenario::new(&model, &system).run()?;
///
/// // ... a pipelined plan, through the same entry point ...
/// let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, 32));
/// let piped = Scenario::new(&model, &system)
///     .workload(Workload::pretrain())
///     .plan(plan.clone())
///     .run()?;
/// assert!(flat.bubble_fraction.is_none());
/// assert!(piped.bubble_fraction.unwrap() > 0.0);
///
/// // ... and a serve-mode scenario: prefill a 1K prompt, decode 128
/// // tokens per sequence, pipelining the decode stream.
/// let serve = Scenario::new(&model, &system)
///     .workload(Workload::serve(ServeConfig::new(1024, 128)))
///     .plan(plan)
///     .run()?;
/// let stats = serve.serve.unwrap();
/// assert!(stats.ttft > stats.tpot);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Scenario<'a> {
    model: &'a ModelArch,
    system: &'a ClusterSpec,
    plan: Option<Cow<'a, Plan>>,
    workload: Cow<'a, Workload>,
    collectives: &'a dyn CollectiveModel,
    utilization: UtilizationModel,
    costs: Option<&'a CostTable<'a>>,
    pipeline_costs: Option<&'a PipelineCostTable<'a>>,
    analytic_serve: bool,
}

impl<'a> Scenario<'a> {
    /// Creates a scenario with the FSDP-baseline plan, the pre-training
    /// workload, the default NCCL-style collective model, and constant
    /// compute utilization.
    pub fn new(model: &'a ModelArch, system: &'a ClusterSpec) -> Self {
        Self {
            model,
            system,
            plan: None,
            workload: Cow::Owned(Workload::pretrain()),
            collectives: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
            costs: None,
            pipeline_costs: None,
            analytic_serve: true,
        }
    }

    /// Enables or disables the closed-form steady-state decode path
    /// (`madmax_core::steady`) on every cost table this scenario *builds*
    /// ([`Scenario::price_plans`], [`Scenario::price_pipeline_plans`], and
    /// the inline table of [`Scenario::run_in`]). On by default; the
    /// closed form is byte-identical to full simulation, so this knob
    /// exists for A/B validation and as an escape hatch. Tables attached
    /// via [`Scenario::costs`] / [`Scenario::pipeline_costs`] keep their
    /// own setting.
    #[must_use]
    pub fn analytic_serve(mut self, on: bool) -> Self {
        self.analytic_serve = on;
        self
    }

    /// Sets the workload (default: [`Workload::pretrain`]).
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Cow::Owned(workload);
        self
    }

    /// Borrow-based variant of [`Scenario::workload`]: references the
    /// caller's workload instead of cloning it (the
    /// design-space-exploration hot path runs thousands of scenarios
    /// against one workload).
    #[must_use]
    pub fn workload_ref(mut self, workload: &'a Workload) -> Self {
        self.workload = Cow::Borrowed(workload);
        self
    }

    /// Sets the parallelization plan (default: [`Plan::fsdp_baseline`]).
    /// A plan with an active pipeline config routes the scenario through
    /// the pipeline engine.
    #[must_use]
    pub fn plan(mut self, plan: Plan) -> Self {
        self.plan = Some(Cow::Owned(plan));
        self
    }

    /// Borrow-based variant of [`Scenario::plan`]: references the caller's
    /// plan instead of cloning it.
    #[must_use]
    pub fn plan_ref(mut self, plan: &'a Plan) -> Self {
        self.plan = Some(Cow::Borrowed(plan));
        self
    }

    /// Attaches a shared, pre-priced [`CostTable`] (see
    /// `madmax_core::costs`): [`Scenario::run_in`] then evaluates flat
    /// plans by assembling cached costs instead of re-pricing every GEMM
    /// and collective. The table must have been priced for this scenario's
    /// model, system, and workload, and must cover the plan's strategies.
    #[must_use]
    pub fn costs(mut self, table: &'a CostTable<'a>) -> Self {
        self.costs = Some(table);
        self
    }

    /// Attaches a shared, pre-priced [`PipelineCostTable`] (see
    /// `madmax_pipeline::table`), the pipelined twin of
    /// [`Scenario::costs`]: [`Scenario::run_in`] then evaluates pipelined
    /// plans by assembling cached stage costs instead of re-partitioning
    /// and re-pricing every stage. The table must have been priced for
    /// this scenario's model, system, and workload, and must cover the
    /// plan's (depth, assignment, microbatches) key.
    #[must_use]
    pub fn pipeline_costs(mut self, table: &'a PipelineCostTable<'a>) -> Self {
        self.pipeline_costs = Some(table);
        self
    }

    /// Replaces the collective cost model (ablation studies).
    #[must_use]
    pub fn collectives(mut self, m: &'a dyn CollectiveModel) -> Self {
        self.collectives = m;
        self
    }

    /// Replaces the compute-utilization model (e.g. the workload-dependent
    /// MFU model of Fig. 8).
    #[must_use]
    pub fn utilization(mut self, u: UtilizationModel) -> Self {
        self.utilization = u;
        self
    }

    /// The plan this scenario will execute (the configured one, or the
    /// FSDP baseline).
    pub fn effective_plan(&self) -> Plan {
        match &self.plan {
            Some(p) => p.clone().into_owned(),
            None => Plan::fsdp_baseline(self.model),
        }
    }

    fn is_pipelined(plan: &Plan) -> bool {
        plan.pipeline.is_some_and(|c| c.is_pipelined())
    }

    /// Runs `f` against the effective plan without cloning a configured
    /// plan.
    fn with_plan<R>(&self, f: impl FnOnce(&Plan) -> R) -> R {
        match &self.plan {
            Some(p) => f(p),
            None => f(&Plan::fsdp_baseline(self.model)),
        }
    }

    /// Prices one [`CostTable`] covering every flat plan in `plans`
    /// (pipelined plans are skipped — the stage engine prices per
    /// sub-cluster and microbatch). The table inherits this scenario's
    /// model, system, workload, and cost models, and is `Sync`: build it
    /// once per search and share it read-only across worker threads.
    ///
    /// All plans must share the same pricing-relevant options
    /// (`activation_checkpointing`, `collective_dtype`); this is asserted.
    pub fn price_plans(&self, plans: &[Plan]) -> CostTable<'a> {
        let _span = madmax_core::prof::span("price.flat");
        let options = plans
            .first()
            .map_or_else(|| self.effective_plan().options, |p| p.options);
        let mut table = CostTable::new(
            self.model,
            self.system,
            self.workload.as_ref().clone(),
            options,
            self.collectives,
            self.utilization,
        );
        table.set_analytic_serve(self.analytic_serve);
        for plan in plans.iter().filter(|p| !Self::is_pipelined(p)) {
            table.ensure_plan(plan);
        }
        table
    }

    /// Prices one [`PipelineCostTable`] covering every pipelined plan in
    /// `plans` (flat plans are skipped — they are [`Scenario::price_plans`]'
    /// business). The table inherits this scenario's model, system,
    /// workload, and cost models, and is `Sync`: build it once per search
    /// and share it read-only across worker threads.
    ///
    /// All plans must share the same pricing-relevant options; this is
    /// asserted.
    pub fn price_pipeline_plans(&self, plans: &[Plan]) -> PipelineCostTable<'a> {
        let _span = madmax_core::prof::span("price.pipeline");
        let options = plans
            .first()
            .map_or_else(|| self.effective_plan().options, |p| p.options);
        let mut table = PipelineCostTable::new(
            self.model,
            self.system,
            self.workload.as_ref().clone(),
            options,
            self.collectives,
            self.utilization,
        );
        table.set_analytic_serve(self.analytic_serve);
        for plan in plans.iter().filter(|p| Self::is_pipelined(p)) {
            table.ensure_plan(plan);
        }
        table
    }

    /// Runs the scenario through caller-owned buffers — the evaluation
    /// fast path. Flat plans with an attached [`CostTable`]
    /// (see [`Scenario::costs`]) are assembled from cached costs; all
    /// paths recycle `scratch`'s trace arena, schedule, and stream table.
    /// The report is byte-identical to [`Scenario::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::run`].
    pub fn run_in(&self, scratch: &mut EngineScratch) -> Result<IterationReport, EngineError> {
        self.with_plan(|plan| {
            if Self::is_pipelined(plan) {
                if let Some(table) = self.pipeline_costs {
                    debug_assert!(
                        std::ptr::eq(table.model(), self.model)
                            && std::ptr::eq(table.cluster(), self.system)
                            && table.workload() == self.workload.as_ref(),
                        "pipeline cost table priced for a different scenario"
                    );
                    return madmax_pipeline::run_pipelined_cached(table, plan, scratch)
                        .map_err(EngineError::from);
                }
                return madmax_pipeline::run_pipelined_scratch(
                    self.model,
                    self.system,
                    plan,
                    &self.workload,
                    self.collectives,
                    self.utilization,
                    scratch,
                )
                .map_err(EngineError::from);
            }
            if let Some(table) = self.costs {
                debug_assert!(
                    std::ptr::eq(table.model(), self.model)
                        && std::ptr::eq(table.cluster(), self.system)
                        && table.workload() == self.workload.as_ref(),
                    "cost table priced for a different scenario"
                );
                return madmax_core::run_flat_cached(table, plan, scratch)
                    .map_err(EngineError::from);
            }
            let mut table = CostTable::new(
                self.model,
                self.system,
                self.workload.as_ref().clone(),
                plan.options,
                self.collectives,
                self.utilization,
            );
            table.set_analytic_serve(self.analytic_serve);
            table.ensure_plan(plan);
            madmax_core::run_flat_cached(&table, plan, scratch).map_err(EngineError::from)
        })
    }

    /// Runs the scenario end to end.
    ///
    /// # Errors
    ///
    /// [`EngineError::OutOfMemory`] when the mapping does not fit in
    /// device memory, [`EngineError::InvalidPlan`] for everything else
    /// (invalid strategy/class combinations, unmappable pipelines, ...).
    pub fn run(&self) -> Result<IterationReport, EngineError> {
        let (report, _, _) = self.run_with_trace()?;
        Ok(report)
    }

    /// Runs the scenario, also returning the trace and schedule for
    /// timeline rendering.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::run`].
    pub fn run_with_trace(&self) -> Result<(IterationReport, Trace, Schedule), EngineError> {
        self.with_plan(|plan| {
            let result = if Self::is_pipelined(plan) {
                madmax_pipeline::run_pipelined(
                    self.model,
                    self.system,
                    plan,
                    &self.workload,
                    self.collectives,
                    self.utilization,
                )
            } else {
                madmax_core::run_flat(
                    self.model,
                    self.system,
                    plan,
                    &self.workload,
                    self.collectives,
                    self.utilization,
                )
            };
            result.map_err(EngineError::from)
        })
    }

    /// The serve config this scenario's workload carries, or the
    /// load-path error explaining that it doesn't.
    fn load_serve_config(&self) -> Result<&madmax_parallel::ServeConfig, EngineError> {
        self.workload
            .serve_config()
            .ok_or_else(|| EngineError::InvalidLoad {
                reason: "load simulation needs a serve workload".to_owned(),
            })
    }

    /// Prices a per-step cost model ([`madmax_serve::StepCostModel`]) of
    /// this scenario's plan for the request shapes in `spec` — the slow
    /// part of a load run (a handful of engine probes), reusable across
    /// simulations via [`Scenario::serve_load_priced`].
    ///
    /// The in-flight slot count is `spec.slots`, defaulting to the serve
    /// config's decode batch.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidLoad`] for invalid specs or a non-serve
    /// workload; probe failures as in [`Scenario::run`].
    pub fn price_load(&self, spec: &LoadSpec) -> Result<StepCostModel, EngineError> {
        let serve = self.load_serve_config()?;
        spec.validate()
            .map_err(|reason| EngineError::InvalidLoad { reason })?;
        let arrivals = madmax_serve::materialize_arrivals(&spec.arrivals, serve, self.model)?;
        let slots = spec
            .slots
            .unwrap_or_else(|| serve.effective_batch(self.model));
        self.with_plan(|plan| {
            StepCostModel::price(
                self.model,
                self.system,
                plan,
                serve,
                slots,
                &arrivals,
                self.collectives,
                self.utilization,
            )
            .map_err(EngineError::from)
        })
    }

    /// Runs the continuous-batching load simulator against this
    /// scenario's plan: prices the per-step cost model, then executes
    /// `spec`'s arrival stream with in-flight batching in event mode.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::price_load`].
    pub fn serve_load(&self, spec: &LoadSpec) -> Result<LoadOutcome, EngineError> {
        let costs = self.price_load(spec)?;
        self.serve_load_priced(spec, &costs, SimMode::Event, None)
    }

    /// [`Scenario::serve_load`] with an explicit mode, a reusable
    /// pre-priced cost model (see [`Scenario::price_load`]), and an
    /// optional per-request completion callback (bridge it to a
    /// `ProgressSink` with `madmax_obs::load::forward_to_sink`).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidLoad`] for invalid specs or grid-range
    /// overflows.
    pub fn serve_load_priced(
        &self,
        spec: &LoadSpec,
        costs: &StepCostModel,
        mode: SimMode,
        on_complete: Option<&mut dyn FnMut(&madmax_serve::RequestRecord)>,
    ) -> Result<LoadOutcome, EngineError> {
        let serve = self.load_serve_config()?;
        madmax_serve::simulate_load(spec, serve, self.model, costs, mode, on_complete)
            .map_err(EngineError::from)
    }

    /// [`Scenario::serve_load_priced`] under a materialized fault stream:
    /// fatal/maintenance events interrupt in-flight requests (handled per
    /// `retry`) and degrade capacity until recovery, transient events slow
    /// the clock. An empty `faults` slice is byte-identical to the plain
    /// path.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidLoad`] for invalid specs, unsorted or
    /// malformed fault events, or grid-range overflows.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_load_faulty(
        &self,
        spec: &LoadSpec,
        costs: &StepCostModel,
        mode: SimMode,
        faults: &[FaultEvent],
        retry: &RetryPolicy,
        on_complete: Option<&mut dyn FnMut(&madmax_serve::RequestRecord)>,
    ) -> Result<LoadOutcome, EngineError> {
        let serve = self.load_serve_config()?;
        madmax_serve::simulate_load_faulty(
            spec,
            serve,
            self.model,
            costs,
            mode,
            faults,
            retry,
            on_complete,
        )
        .map_err(EngineError::from)
    }

    /// Evaluates this scenario's **failure-aware training goodput**: runs
    /// the fault-free simulation, prices a checkpoint write/restart from
    /// the plan's per-device memory breakdown and the cluster fabric (via
    /// the collective model), then folds both through the closed-form
    /// Young/Daly expected-goodput model at `spec.mtbf`.
    ///
    /// The checkpoint interval is `spec.checkpoint_interval` when set,
    /// otherwise the Young/Daly optimum `sqrt(2 * write * MTBF)`.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidFault`] for an invalid spec or a spec without
    /// a fatal-fault MTBF; otherwise the same conditions as
    /// [`Scenario::run`].
    pub fn goodput(&self, spec: &FaultSpec) -> Result<GoodputOutcome, EngineError> {
        spec.validate()
            .map_err(|reason| EngineError::InvalidFault { reason })?;
        let Some(mtbf) = spec.mtbf else {
            return Err(EngineError::InvalidFault {
                reason: "goodput evaluation needs a fatal-fault MTBF (FaultSpec::mtbf)".to_owned(),
            });
        };
        let report = self.run()?;
        let ckpt = CheckpointModel::price(&report.memory, self.system, self.collectives);
        let write = ckpt.write.as_secs();
        // A restart reloads the checkpoint and waits out capacity
        // recovery (node replacement / reschedule) before resuming.
        let restart = ckpt.restart.as_secs() + spec.recovery;
        let interval = spec
            .checkpoint_interval
            .unwrap_or_else(|| young_daly_interval(write, mtbf));
        let goodput = expected_goodput(
            report.iteration_time.as_secs(),
            write,
            restart,
            mtbf,
            interval,
        );
        Ok(GoodputOutcome {
            report,
            ckpt,
            goodput,
        })
    }

    /// Builds the scenario's trace without scheduling it (for inspection /
    /// Fig. 6 timelines). For pipelined plans this is the multi-stream
    /// stage trace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::run`].
    pub fn build_trace(&self) -> Result<Trace, EngineError> {
        self.with_plan(|plan| {
            if Self::is_pipelined(plan) {
                madmax_pipeline::build_pipelined_trace(
                    self.model,
                    self.system,
                    plan,
                    &self.workload,
                    self.collectives,
                    self.utilization,
                )
                .map_err(EngineError::from)
            } else {
                madmax_core::build_flat_trace(
                    self.model,
                    self.system,
                    plan,
                    &self.workload,
                    self.collectives,
                    self.utilization,
                )
                .map_err(EngineError::from)
            }
        })
    }
}

/// One-shot convenience wrapper: runs a [`Scenario`] with an explicit
/// plan and workload.
///
/// # Errors
///
/// Same conditions as [`Scenario::run`].
pub fn simulate(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    workload: Workload,
) -> Result<IterationReport, EngineError> {
    Scenario::new(model, system)
        .plan(plan.clone())
        .workload(workload)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_core::FlatWorstLink;
    use madmax_hw::catalog;
    use madmax_model::{LayerClass, ModelId};
    use madmax_parallel::{HierStrategy, PipelineConfig, ServeConfig, Strategy};

    #[test]
    fn defaults_run_the_fsdp_baseline() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let scenario = Scenario::new(&model, &sys);
        assert_eq!(scenario.effective_plan(), Plan::fsdp_baseline(&model));
        let r = scenario.run().unwrap();
        assert!(r.mqps() > 0.3 && r.mqps() < 5.0);
    }

    #[test]
    fn pipelined_plans_dispatch_to_the_stage_engine() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let r = Scenario::new(&model, &sys).plan(plan).run().unwrap();
        assert!(r.bubble_fraction.unwrap() > 0.0);
    }

    #[test]
    fn oom_maps_to_the_unified_error() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model)
            .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
        let err = Scenario::new(&model, &sys).plan(plan).run().unwrap_err();
        assert!(err.is_oom(), "{err}");
    }

    #[test]
    fn unmappable_pipeline_maps_to_the_unified_error() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8));
        let err = Scenario::new(&model, &sys).plan(plan).run().unwrap_err();
        assert!(err.is_unmappable_pipeline(), "{err}");
    }

    #[test]
    fn collective_and_utilization_knobs_apply_to_both_paths() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let hier = Scenario::new(&model, &sys).run().unwrap();
        let flat_model = FlatWorstLink;
        let flat = Scenario::new(&model, &sys)
            .collectives(&flat_model)
            .run()
            .unwrap();
        assert!(flat.comm_time > hier.comm_time);

        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let hier_pp = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .run()
            .unwrap();
        let flat_pp = Scenario::new(&model, &sys)
            .plan(plan)
            .collectives(&flat_model)
            .run()
            .unwrap();
        assert!(flat_pp.iteration_time >= hier_pp.iteration_time);
    }

    #[test]
    fn trace_views_are_consistent() {
        let model = ModelId::DlrmB.build();
        let sys = catalog::zionex_dlrm_system();
        let scenario = Scenario::new(&model, &sys);
        let (report, trace, sched) = scenario.run_with_trace().unwrap();
        assert_eq!(trace.len(), sched.windows.len());
        assert!((trace.serialized_time() / report.serialized_time - 1.0).abs() < 1e-12);
        let inspect = scenario.build_trace().unwrap();
        assert_eq!(trace, inspect);
    }

    #[test]
    fn one_shot_wrapper_matches_builder() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let a = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let b = Scenario::new(&model, &sys)
            .plan(plan)
            .workload(Workload::pretrain())
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serve_scenarios_flow_through_both_engines() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let workload = Workload::serve(ServeConfig::new(512, 32));
        let flat = Scenario::new(&model, &sys)
            .workload(workload.clone())
            .run()
            .unwrap();
        assert!(flat.serve.is_some());
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
        let piped = Scenario::new(&model, &sys)
            .workload(workload)
            .plan(plan)
            .run()
            .unwrap();
        assert!(piped.serve.is_some());
        assert!(piped.bubble_fraction.is_some());
    }

    #[test]
    fn serve_load_runs_a_poisson_stream_end_to_end() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let spec = madmax_parallel::LoadSpec::poisson(200.0, 12, 7);
        let scenario = Scenario::new(&model, &sys).workload(Workload::serve(
            ServeConfig::new(256, 32).with_decode_batch(4),
        ));
        let out = scenario.serve_load(&spec).unwrap();
        assert_eq!(out.report.arrivals, 12);
        assert_eq!(out.report.completed + out.report.rejected, 12);
        assert!(out.report.ttft.is_some());
        assert!(out.report.tokens_per_sec > 0.0);

        // A pre-priced cost model reproduces the same outcome, and the
        // per-token reference agrees byte for byte.
        let costs = scenario.price_load(&spec).unwrap();
        let again = scenario
            .serve_load_priced(&spec, &costs, SimMode::Event, None)
            .unwrap();
        assert_eq!(again.report, out.report);
        let naive = scenario
            .serve_load_priced(&spec, &costs, SimMode::PerToken, None)
            .unwrap();
        assert_eq!(naive.report, out.report);
    }

    #[test]
    fn serve_load_rejects_non_serve_workloads() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let spec = madmax_parallel::LoadSpec::poisson(100.0, 4, 1);
        let err = Scenario::new(&model, &sys).serve_load(&spec).unwrap_err();
        assert!(matches!(err, EngineError::InvalidLoad { .. }), "{err}");
    }

    #[test]
    fn goodput_degrades_with_mtbf_and_needs_a_fatal_stream() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let scenario = Scenario::new(&model, &sys);

        let plentiful = scenario.goodput(&FaultSpec::fatal(1e9, 60.0, 1)).unwrap();
        assert!(plentiful.goodput.goodput_fraction > 0.99);
        assert!(plentiful.ckpt.write.as_secs() > 0.0);
        // Fault-free throughput comes straight from the iteration report.
        assert!(
            (plentiful.goodput.fault_free_throughput
                - 1.0 / plentiful.report.iteration_time.as_secs())
            .abs()
                < 1e-12
        );

        let scarce = scenario.goodput(&FaultSpec::fatal(600.0, 60.0, 1)).unwrap();
        assert!(scarce.goodput.goodput_fraction < plentiful.goodput.goodput_fraction);
        assert!(scarce.goodput.effective_throughput < scarce.goodput.fault_free_throughput);
        // Same fault-free plan either way.
        assert_eq!(scarce.report, plentiful.report);

        // No fatal stream -> no goodput model.
        let err = scenario.goodput(&FaultSpec::none()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidFault { .. }), "{err}");
        let err = scenario
            .goodput(&FaultSpec::fatal(-1.0, 0.0, 1))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidFault { .. }), "{err}");
    }

    #[test]
    fn explicit_checkpoint_interval_overrides_young_daly() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let scenario = Scenario::new(&model, &sys);
        let auto = scenario
            .goodput(&FaultSpec::fatal(3600.0, 30.0, 1))
            .unwrap();
        let forced = scenario
            .goodput(&FaultSpec::fatal(3600.0, 30.0, 1).with_checkpoint_interval(1.0))
            .unwrap();
        assert!((forced.goodput.interval - 1.0).abs() < 1e-12);
        // The Young/Daly choice is at least as good as an arbitrary one.
        assert!(auto.goodput.goodput_fraction >= forced.goodput.goodput_fraction);
    }

    #[test]
    fn serve_load_faulty_with_no_events_matches_the_plain_path() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let spec = madmax_parallel::LoadSpec::poisson(200.0, 10, 3);
        let scenario = Scenario::new(&model, &sys).workload(Workload::serve(
            ServeConfig::new(256, 32).with_decode_batch(4),
        ));
        let costs = scenario.price_load(&spec).unwrap();
        let plain = scenario
            .serve_load_priced(&spec, &costs, SimMode::Event, None)
            .unwrap();
        let faulty = scenario
            .serve_load_faulty(
                &spec,
                &costs,
                SimMode::Event,
                &[],
                &RetryPolicy::default(),
                None,
            )
            .unwrap();
        assert_eq!(plain.report, faulty.report);
        assert_eq!(plain.trace, faulty.trace);
    }

    #[test]
    fn pipeline_cost_table_path_matches_run() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plans: Vec<Plan> = [(8usize, 16usize), (4, 8)]
            .into_iter()
            .map(|(p, m)| Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(p, m)))
            .collect();
        for workload in [
            Workload::pretrain(),
            Workload::serve(ServeConfig::new(512, 8)),
        ] {
            let scenario = Scenario::new(&model, &sys).workload_ref(&workload);
            let table = scenario.price_pipeline_plans(&plans);
            let mut scratch = EngineScratch::new();
            for plan in &plans {
                let cached = Scenario::new(&model, &sys)
                    .workload_ref(&workload)
                    .plan_ref(plan)
                    .pipeline_costs(&table)
                    .run_in(&mut scratch)
                    .unwrap();
                let fresh = Scenario::new(&model, &sys)
                    .workload_ref(&workload)
                    .plan_ref(plan)
                    .run()
                    .unwrap();
                assert_eq!(cached, fresh);
            }
        }
    }
}
