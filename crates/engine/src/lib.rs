//! # madmax-engine
//!
//! The unified front door to the MAD-Max distributed ML performance model
//! (Hsia et al., ISCA 2024): one [`Scenario`] entry point that executes
//! *any* parallelization plan — flat SPMD mappings through
//! `madmax-core`'s two-stream overlap engine, pipelined mappings through
//! `madmax-pipeline`'s stage engine — and returns the same
//! [`madmax_core::IterationReport`] either way, with every failure folded
//! into one [`EngineError`].
//!
//! # Quickstart
//!
//! ```
//! use madmax_engine::Scenario;
//! use madmax_hw::catalog;
//! use madmax_model::ModelId;
//! use madmax_parallel::{PipelineConfig, Plan, ServeConfig, Workload};
//!
//! # fn main() -> Result<(), madmax_engine::EngineError> {
//! // 1. Pick a workload (Table II) and a system (Table III).
//! let model = ModelId::DlrmA.build();
//! let system = catalog::zionex_dlrm_system();
//!
//! // 2. Simulate one pre-training iteration of the FSDP baseline.
//! let report = Scenario::new(&model, &system).workload(Workload::pretrain()).run()?;
//! assert!(report.mqps() > 0.5 && report.mqps() < 5.0);
//!
//! // 3. The same entry point executes pipelined plans: configure the
//! //    pipeline dimension on the plan and `run()` dispatches for you.
//! let llm = ModelId::Llama2.build();
//! let llm_system = catalog::llama_llm_system();
//! let plan = Plan::fsdp_baseline(&llm).with_pipeline(PipelineConfig::one_f_one_b(8, 32));
//! let piped = Scenario::new(&llm, &llm_system).plan(plan.clone()).run()?;
//! assert!(piped.bubble_fraction.unwrap() > 0.0);
//!
//! // 4. Serve-mode scenarios open the inference half: prefill a prompt,
//! //    decode token by token, and read TTFT/TPOT off the report.
//! let serve = Scenario::new(&llm, &llm_system)
//!     .workload(Workload::serve(ServeConfig::new(1024, 128)))
//!     .plan(plan)
//!     .run()?;
//! assert!(serve.serve.unwrap().ttft > serve.serve.unwrap().tpot);
//! # Ok(())
//! # }
//! ```
//!
//! Design-space exploration on top of `Scenario` — the unified
//! `SearchSpace` / `Explorer` pair that subsumes the old `optimize` /
//! `optimize_pipeline` searches — lives in `madmax-dse`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod scenario;

pub use error::EngineError;
pub use scenario::{simulate, GoodputOutcome, Scenario};

// Re-exported so engine consumers (the explorer, benches) can name the
// fast-path types without a direct `madmax-core` / `madmax-pipeline`
// dependency.
pub use madmax_core::{CostTable, EngineScratch};
pub use madmax_pipeline::PipelineCostTable;
// Likewise for the continuous-batching load path (`Scenario::serve_load`)
// and the failure-aware goodput path (`Scenario::goodput`,
// `Scenario::serve_load_faulty`).
pub use madmax_fault::{
    CheckpointModel, FaultEvent, FaultSpec, GoodputReport, MaintenanceWindow, RetryPolicy,
};
pub use madmax_serve::{LoadOutcome, LoadReport, SimMode, StepCostModel};
