//! The engine's single error type: every way a [`crate::Scenario`] can
//! fail, regardless of whether the flat or the pipeline engine executed
//! the plan.

use madmax_hw::units::ByteCount;
use madmax_parallel::PlanError;

/// Unified error of [`crate::Scenario::run`] and the DSE explorer.
///
/// Callers previously had to match on the raw [`PlanError`] shapes of two
/// different simulators; `EngineError` folds both into one enum with
/// classification helpers ([`EngineError::is_oom`],
/// [`EngineError::is_unmappable_pipeline`]).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The mapping does not fit in device memory (the memory check or the
    /// pipeline-aware memory model rejected it).
    OutOfMemory {
        /// Required bytes per device.
        required: ByteCount,
        /// Usable bytes per device.
        usable: ByteCount,
    },
    /// The plan cannot be executed on this model/system: an invalid
    /// strategy/class combination, an unmappable pipeline, or a pipelined
    /// plan handed to the flat engine.
    InvalidPlan(PlanError),
    /// A continuous-batching load run cannot be set up or executed: an
    /// invalid [`madmax_parallel::LoadSpec`], a non-serve workload, or a
    /// run leaving the exact duration grid.
    InvalidLoad {
        /// What went wrong.
        reason: String,
    },
    /// A fault process cannot be set up or evaluated: an invalid
    /// `madmax_fault::FaultSpec`, or a fault stream leaving the exact
    /// duration grid.
    InvalidFault {
        /// What went wrong.
        reason: String,
    },
}

impl EngineError {
    /// Whether this is a memory-capacity failure (the gray "OOM" bars of
    /// the paper's sweeps).
    pub fn is_oom(&self) -> bool {
        matches!(self, EngineError::OutOfMemory { .. })
    }

    /// Whether this is an unmappable pipeline (too few layers, indivisible
    /// device counts, bad microbatch count).
    pub fn is_unmappable_pipeline(&self) -> bool {
        matches!(
            self,
            EngineError::InvalidPlan(PlanError::InvalidPipeline { .. })
        )
    }

    /// The underlying [`PlanError`] for callers interoperating with the
    /// pre-`Scenario` APIs.
    pub fn into_plan_error(self) -> PlanError {
        match self {
            EngineError::OutOfMemory { required, usable } => {
                PlanError::OutOfMemory { required, usable }
            }
            EngineError::InvalidPlan(e) => e,
            EngineError::InvalidLoad { reason } => PlanError::InvalidPipeline {
                reason: format!("load: {reason}"),
            },
            EngineError::InvalidFault { reason } => PlanError::InvalidPipeline {
                reason: format!("fault: {reason}"),
            },
        }
    }
}

impl From<madmax_fault::FaultError> for EngineError {
    fn from(e: madmax_fault::FaultError) -> Self {
        EngineError::InvalidFault {
            reason: e.to_string(),
        }
    }
}

impl From<madmax_serve::LoadError> for EngineError {
    fn from(e: madmax_serve::LoadError) -> Self {
        use madmax_serve::LoadError;
        match e {
            LoadError::Plan(pe) => EngineError::from(pe),
            LoadError::Spec(reason) | LoadError::GridRange(reason) => {
                EngineError::InvalidLoad { reason }
            }
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        match e {
            PlanError::OutOfMemory { required, usable } => {
                EngineError::OutOfMemory { required, usable }
            }
            other => EngineError::InvalidPlan(other),
        }
    }
}

impl From<EngineError> for PlanError {
    fn from(e: EngineError) -> Self {
        e.into_plan_error()
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::OutOfMemory { required, usable } => write!(
                f,
                "out of memory: requires {:.2} GB/device but only {:.2} GB usable",
                required.as_gb(),
                usable.as_gb()
            ),
            EngineError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
            EngineError::InvalidLoad { reason } => write!(f, "invalid load: {reason}"),
            EngineError::InvalidFault { reason } => write!(f, "invalid fault spec: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidPlan(e) => Some(e),
            EngineError::OutOfMemory { .. }
            | EngineError::InvalidLoad { .. }
            | EngineError::InvalidFault { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_parallel::PlanError;

    #[test]
    fn oom_round_trips_through_both_conversions() {
        let pe = PlanError::OutOfMemory {
            required: ByteCount::from_gb(100.0),
            usable: ByteCount::from_gb(64.0),
        };
        let ee = EngineError::from(pe.clone());
        assert!(ee.is_oom());
        assert!(!ee.is_unmappable_pipeline());
        assert_eq!(PlanError::from(ee), pe);
    }

    #[test]
    fn pipeline_errors_classify_as_unmappable() {
        let ee = EngineError::from(PlanError::InvalidPipeline {
            reason: "7 stages over 16 nodes".to_owned(),
        });
        assert!(ee.is_unmappable_pipeline());
        assert!(!ee.is_oom());
        assert!(ee.to_string().contains("invalid plan"));
    }
}
