//! Horizontal bar charts and stacked bars for terminal output — the
//! figure-shaped half of the experiment harness.

/// One bar: a label and a value (with an optional annotation).
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Row label.
    pub label: String,
    /// Bar magnitude (must be finite and non-negative for rendering).
    pub value: f64,
    /// Text appended after the value, e.g. the winning strategy.
    pub note: String,
}

impl Bar {
    /// Creates a bar without a note.
    pub fn new(label: impl Into<String>, value: f64) -> Self {
        Self {
            label: label.into(),
            value,
            note: String::new(),
        }
    }

    /// Creates a bar with a note.
    pub fn with_note(label: impl Into<String>, value: f64, note: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            value,
            note: note.into(),
        }
    }
}

/// Renders a horizontal bar chart scaled to `width` characters at the
/// maximum value.
///
/// ```
/// use madmax_report::chart::{bar_chart, Bar};
/// let out = bar_chart(&[Bar::new("FSDP", 1.0), Bar::new("(TP, DDP)", 2.0)], 20, "x");
/// assert!(out.contains("(TP, DDP)"));
/// ```
pub fn bar_chart(bars: &[Bar], width: usize, unit: &str) -> String {
    let max = bars.iter().map(|b| b.value).fold(0.0_f64, f64::max);
    let label_w = bars
        .iter()
        .map(|b| b.label.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for b in bars {
        let filled = if max > 0.0 && b.value.is_finite() && b.value > 0.0 {
            ((b.value / max) * width as f64).round() as usize
        } else {
            0
        };
        let pad = label_w.saturating_sub(b.label.chars().count());
        out.push_str(&format!(
            "{}{}  {}{} {:.2} {}{}\n",
            b.label,
            " ".repeat(pad),
            "#".repeat(filled),
            " ".repeat(width.saturating_sub(filled)),
            b.value,
            unit,
            if b.note.is_empty() {
                String::new()
            } else {
                format!("  [{}]", b.note)
            },
        ));
    }
    out
}

/// One segment of a stacked bar.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment name (shown in the legend).
    pub name: String,
    /// Segment magnitude.
    pub value: f64,
}

/// Renders stacked horizontal bars (used for execution-time breakdowns,
/// Figs. 7 and 20). Each segment is drawn with a distinct fill character;
/// a legend line maps characters to names.
pub fn stacked_bars(rows: &[(String, Vec<Segment>)], width: usize, unit: &str) -> String {
    const FILLS: [char; 8] = ['#', '=', '@', '+', '%', 'o', '*', '~'];
    // Legend over the union of segment names (ordered by first appearance).
    let mut names: Vec<String> = Vec::new();
    for (_, segs) in rows {
        for s in segs {
            if !names.contains(&s.name) {
                names.push(s.name.clone());
            }
        }
    }
    let fill_of =
        |name: &str| FILLS[names.iter().position(|n| n == name).unwrap_or(0) % FILLS.len()];
    let max: f64 = rows
        .iter()
        .map(|(_, segs)| segs.iter().map(|s| s.value).sum::<f64>())
        .fold(0.0, f64::max);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);

    let mut out = String::new();
    out.push_str("legend: ");
    for n in &names {
        out.push_str(&format!("{}={} ", fill_of(n), n));
    }
    out.push('\n');
    for (label, segs) in rows {
        let total: f64 = segs.iter().map(|s| s.value).sum();
        let pad = label_w.saturating_sub(label.chars().count());
        out.push_str(&format!("{}{}  ", label, " ".repeat(pad)));
        let mut drawn = 0usize;
        if max > 0.0 {
            for s in segs {
                let w = ((s.value / max) * width as f64).round() as usize;
                out.push_str(&fill_of(&s.name).to_string().repeat(w));
                drawn += w;
            }
        }
        out.push_str(&" ".repeat(width.saturating_sub(drawn)));
        out.push_str(&format!(" {total:.2} {unit}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let out = bar_chart(&[Bar::new("a", 1.0), Bar::new("bb", 2.0)], 10, "x");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('#').count(), 5);
        assert_eq!(lines[1].matches('#').count(), 10);
    }

    #[test]
    fn zero_and_negative_values_render_empty() {
        let out = bar_chart(&[Bar::new("z", 0.0), Bar::new("n", f64::NAN)], 10, "x");
        assert_eq!(out.matches('#').count(), 0);
    }

    #[test]
    fn notes_are_appended() {
        let out = bar_chart(&[Bar::with_note("a", 1.0, "(TP, DDP)")], 5, "x");
        assert!(out.contains("[(TP, DDP)]"));
    }

    #[test]
    fn stacked_bars_have_legend_and_totals() {
        let rows = vec![
            (
                "serialized".to_owned(),
                vec![
                    Segment {
                        name: "gemm".into(),
                        value: 3.0,
                    },
                    Segment {
                        name: "a2a".into(),
                        value: 1.0,
                    },
                ],
            ),
            (
                "other".to_owned(),
                vec![Segment {
                    name: "gemm".into(),
                    value: 2.0,
                }],
            ),
        ];
        let out = stacked_bars(&rows, 20, "ms");
        assert!(out.starts_with("legend:"));
        assert!(out.contains("#=gemm"));
        assert!(out.contains("=a2a") || out.contains("==a2a"));
        assert!(out.contains("4.00 ms"));
        assert!(out.contains("2.00 ms"));
    }
}
