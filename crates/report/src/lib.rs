//! # madmax-report
//!
//! Plain-text reporting utilities for the MAD-Max experiment harness:
//! aligned tables (paper tables), horizontal/stacked bar charts (paper
//! figures), and two-stream ASCII timelines (Fig. 6). Everything renders
//! to `String` so experiment binaries can both print and persist results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chart;
pub mod table;
pub mod timeline;

pub use chart::{bar_chart, stacked_bars, Bar, Segment};
pub use table::{Align, Table};
pub use timeline::{render as render_timeline, TimelineOp};

/// Formats a heading banner used by every experiment binary.
pub fn heading(title: &str) -> String {
    let line = "=".repeat(title.chars().count().max(8));
    format!("{line}\n{title}\n{line}\n")
}

#[cfg(test)]
mod tests {
    #[test]
    fn heading_wraps_title() {
        let h = super::heading("Table I");
        assert_eq!(h.lines().count(), 3);
        assert!(h.contains("Table I"));
    }
}
