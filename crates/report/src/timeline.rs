//! ASCII Gantt rendering of scheduled execution streams — the shape of the
//! paper's Fig. 6 ("Sample generated GPU compute and communication streams
//! with labeled exposed communication").

/// One scheduled op, already reduced to plain data so this crate stays
/// independent of the simulator types.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineOp {
    /// Display name.
    pub name: String,
    /// Lane (stream) name, e.g. `"compute"` or `"comm"`.
    pub lane: String,
    /// Start time (any consistent unit).
    pub start: f64,
    /// Finish time.
    pub finish: f64,
}

/// Renders lanes of ops as rows of `[name___]` boxes positioned on a
/// shared time axis of `width` characters.
pub fn render(ops: &[TimelineOp], width: usize) -> String {
    let t_end = ops.iter().map(|o| o.finish).fold(0.0_f64, f64::max);
    if t_end <= 0.0 || ops.is_empty() {
        return String::from("(empty timeline)\n");
    }
    let scale = width as f64 / t_end;
    // Preserve lane order of first appearance.
    let mut lanes: Vec<String> = Vec::new();
    for o in ops {
        if !lanes.contains(&o.lane) {
            lanes.push(o.lane.clone());
        }
    }
    let lane_w = lanes.iter().map(|l| l.chars().count()).max().unwrap_or(0);

    let mut out = String::new();
    for lane in &lanes {
        let mut row = vec![' '; width + 1];
        for o in ops.iter().filter(|o| &o.lane == lane) {
            let s = (o.start * scale).round() as usize;
            let e = ((o.finish * scale).round() as usize).min(width).max(s + 1);
            let span = e - s;
            let mut cell: Vec<char> = Vec::with_capacity(span);
            cell.push('|');
            let inner: String = o.name.chars().take(span.saturating_sub(2)).collect();
            cell.extend(inner.chars());
            while cell.len() < span.saturating_sub(1) {
                cell.push('_');
            }
            if span > 1 {
                cell.push('|');
            }
            for (i, ch) in cell.into_iter().enumerate() {
                if s + i <= width {
                    row[s + i] = ch;
                }
            }
        }
        let pad = lane_w.saturating_sub(lane.chars().count());
        out.push_str(&format!(
            "{}{} {}\n",
            lane,
            " ".repeat(pad),
            row.into_iter().collect::<String>().trim_end()
        ));
    }
    out.push_str(&format!(
        "{} 0{}t={t_end:.2}\n",
        " ".repeat(lane_w),
        " ".repeat(width.saturating_sub(8))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, lane: &str, start: f64, finish: f64) -> TimelineOp {
        TimelineOp {
            name: name.into(),
            lane: lane.into(),
            start,
            finish,
        }
    }

    #[test]
    fn lanes_render_in_order() {
        let ops = vec![
            op("emb", "compute", 0.0, 2.0),
            op("a2a", "comm", 2.0, 6.0),
            op("mlp", "compute", 2.0, 4.0),
        ];
        let out = render(&ops, 40);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("compute"));
        assert!(lines[1].starts_with("comm"));
        assert!(lines[0].contains("emb"));
        assert!(lines[1].contains("a2a"));
    }

    #[test]
    fn empty_input_is_graceful() {
        assert!(render(&[], 40).contains("empty"));
    }

    #[test]
    fn boxes_are_positioned_proportionally() {
        let ops = vec![op("x", "c", 5.0, 10.0)];
        let out = render(&ops, 20);
        let line = out.lines().next().unwrap();
        // Starts halfway across a 20-char axis (plus the "c " prefix).
        let bar_start = line.find('|').unwrap();
        assert!((9..=13).contains(&bar_start), "{line}");
    }
}
