//! Aligned plain-text tables.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// ```
/// use madmax_report::table::Table;
/// let mut t = Table::new(["model", "params"]);
/// t.row(["DLRM-A", "793B"]);
/// let s = t.render();
/// assert!(s.contains("DLRM-A"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given header; all columns default to
    /// left-aligned labels, numbers are right-aligned via [`Table::align`].
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = std::iter::once(Align::Left)
            .chain(std::iter::repeat(Align::Right))
            .take(header.len())
            .collect();
        Self {
            header,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides a column's alignment.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        if let Some(a) = self.aligns.get_mut(col) {
            *a = align;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < cols {
                            out.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
            }
            out
        };
        let mut s = fmt_row(&self.header);
        s.push('\n');
        s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&fmt_row(row));
            s.push('\n');
        }
        s
    }

    /// Renders as CSV (comma-separated, quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut s: String = self
            .header
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1.0"]);
        t.row(["long-name", "123.45"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines are the same width (right-aligned last col).
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("123.45"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["k", "v"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn alignment_override() {
        let mut t = Table::new(["x", "y"]);
        t.align(1, Align::Left);
        t.row(["a", "b"]);
        assert!(t.render().contains('b'));
    }
}
