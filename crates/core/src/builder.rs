//! Trace construction: turns (model, system, plan, workload) into
//! per-device compute + communication streams with explicit data
//! dependencies (Section IV-C: "Piecing Together Computation and Comm.
//! Streams").
//!
//! Construction runs in two phases (see [`crate::costs`]):
//!
//! 1. **Pricing** — every per-(group, strategy, phase) compute duration
//!    and collective cost is evaluated once into a [`CostTable`];
//! 2. **Assembly** — [`CostTable::assemble_into`] walks the model's layer
//!    groups in execution order for the forward pass and in reverse for
//!    the backward pass, composing cached costs into ops. Serve
//!    workloads with decode steps append one single-token pass per
//!    generated token, chained autoregressively.
//!
//! Embedding groups form a side chain (their blocking All2All joins the
//! dense chain at the feature-combination stage, exactly as in the paper's
//! Fig. 6), FSDP AllGathers are issued eagerly when prefetching is enabled
//! (Fig. 9), and weight-gradient collectives land on a separate
//! lower-priority stream so they drain behind blocking traffic.
//!
//! [`TraceBuilder`] performs both phases for one plan; design-space
//! searches build the [`CostTable`] once and assemble every candidate from
//! it.

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{Plan, Workload};

use crate::collective::CollectiveModel;
use crate::compute::UtilizationModel;
use crate::costs::CostTable;
use crate::trace::Trace;

/// Inputs to trace construction.
#[derive(Debug)]
pub struct TraceBuilder<'a> {
    /// Model architecture.
    pub model: &'a ModelArch,
    /// Target system.
    pub cluster: &'a ClusterSpec,
    /// Workload-to-system mapping.
    pub plan: &'a Plan,
    /// What the model executes (pre-training / fine-tuning / serving).
    pub workload: &'a Workload,
    /// Collective cost model.
    pub collective_model: &'a dyn CollectiveModel,
    /// Compute-utilization model.
    pub utilization: UtilizationModel,
}

impl<'a> TraceBuilder<'a> {
    /// Prices this builder's plan into a fresh [`CostTable`].
    pub fn price(&self) -> CostTable<'a> {
        let mut table = CostTable::new(
            self.model,
            self.cluster,
            self.workload.clone(),
            self.plan.options,
            self.collective_model,
            self.utilization,
        );
        table.ensure_plan(self.plan);
        table
    }

    /// Builds the full per-iteration trace (price + assemble).
    pub fn build(&self) -> Trace {
        let mut trace = Trace::new();
        self.price().assemble_into(self.plan, &mut trace);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::HierarchicalNccl;
    use crate::trace::{OpId, OpKind, Phase, StreamId};
    use madmax_model::ModelId;
    use madmax_parallel::CollectiveKind;

    fn build(model: &ModelArch, workload: &Workload) -> Trace {
        let cluster = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(model);
        TraceBuilder {
            model,
            cluster: &cluster,
            plan: &plan,
            workload,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build()
    }

    use madmax_hw::catalog;

    #[test]
    fn dlrm_forward_matches_fig6_structure() {
        let model = ModelId::DlrmA.build();
        let trace = build(&model, &Workload::inference());
        let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
        // Lookup before A2A; A2A consumed by the interaction stage, not the
        // bottom MLP.
        let lookup = names.iter().position(|n| n.contains("lookup")).unwrap();
        let a2a = names.iter().position(|n| n.contains("a2a")).unwrap();
        let bottom = names
            .iter()
            .position(|n| n.contains("bottom_mlp") && !n.contains(".ag"))
            .unwrap();
        let interaction = names
            .iter()
            .position(|n| n.contains("feature_interaction"))
            .unwrap();
        assert!(lookup < a2a);
        let a2a_op = &trace.ops()[a2a];
        assert_eq!(a2a_op.deps, vec![OpId(lookup)]);
        // Bottom MLP does not depend on the A2A...
        assert!(!trace.ops()[bottom].deps.contains(&OpId(a2a)));
        // ...but the interaction does, plus the bottom MLP.
        let ideps = &trace.ops()[interaction].deps;
        assert!(ideps.contains(&OpId(a2a)), "{ideps:?}");
        assert!(ideps.contains(&OpId(bottom)), "{ideps:?}");
    }

    #[test]
    fn inference_has_no_backward_ops() {
        let model = ModelId::DlrmA.build();
        let trace = build(&model, &Workload::inference());
        assert!(trace.ops().iter().all(|o| o.phase == Phase::Forward));
    }

    #[test]
    fn pretraining_emits_gradient_collectives_and_optimizer() {
        let model = ModelId::DlrmA.build();
        let trace = build(&model, &Workload::pretrain());
        let has_rs = trace.ops().iter().any(|o| {
            matches!(
                o.kind,
                OpKind::Collective {
                    kind: CollectiveKind::ReduceScatter
                }
            )
        });
        assert!(has_rs, "FSDP baseline must reduce-scatter gradients");
        let opt = trace
            .ops()
            .iter()
            .find(|o| o.kind == OpKind::Optimizer)
            .unwrap();
        assert!(!opt.deps.is_empty());
        // Gradient collectives live on the deferred stream.
        assert!(trace.stream_ops(StreamId::GradComm).count() >= 2);
    }

    #[test]
    fn finetune_embedding_skips_dense_backward() {
        let model = ModelId::DlrmA.build();
        let trace = build(
            &model,
            &Workload::finetune_only(madmax_model::LayerClass::Embedding),
        );
        // No backward GEMMs: the paper's Insight 5 simplification.
        let bwd_gemms = trace
            .ops()
            .iter()
            .filter(|o| o.phase == Phase::Backward && matches!(o.kind, OpKind::Gemm { .. }))
            .count();
        assert_eq!(bwd_gemms, 0);
        // But the embedding gradient exchange and scatter exist.
        assert!(trace
            .ops()
            .iter()
            .any(|o| o.name.to_string().contains("a2a_bwd")));
        assert!(trace
            .ops()
            .iter()
            .any(|o| o.name.to_string().contains("grad_scatter")));
    }

    #[test]
    fn llm_trace_has_per_block_instances() {
        let model = ModelId::Gpt3.build();
        let cluster = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let workload = Workload::pretrain();
        let trace = TraceBuilder {
            model: &model,
            cluster: &cluster,
            plan: &plan,
            workload: &workload,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build();
        let fwd_blocks = trace
            .ops()
            .iter()
            .filter(|o| o.phase == Phase::Forward && matches!(o.kind, OpKind::Gemm { .. }))
            .count();
        assert_eq!(fwd_blocks, 96);
        // 96 forward gathers + 96 backward gathers + 96 reduce-scatters
        // (plus the embedding's), all nonzero.
        let ags = trace
            .ops()
            .iter()
            .filter(|o| {
                matches!(
                    o.kind,
                    OpKind::Collective {
                        kind: CollectiveKind::AllGather
                    }
                )
            })
            .count();
        assert!(ags >= 192, "{ags}");
    }

    #[test]
    fn prefetch_removes_gather_dependencies() {
        let model = ModelId::Gpt3.build();
        let cluster = catalog::llama_llm_system();
        let mut plan = Plan::fsdp_baseline(&model);
        let workload = Workload::pretrain();
        plan.options.fsdp_prefetch = true;
        let with = TraceBuilder {
            model: &model,
            cluster: &cluster,
            plan: &plan,
            workload: &workload,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build();
        plan.options.fsdp_prefetch = false;
        let without = TraceBuilder {
            model: &model,
            cluster: &cluster,
            plan: &plan,
            workload: &workload,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build();
        let dep_count = |t: &Trace| -> usize {
            t.ops()
                .iter()
                .filter(|o| o.name.to_string().contains(".ag"))
                .map(|o| o.deps.len())
                .sum()
        };
        assert!(dep_count(&with) < dep_count(&without));
    }

    #[test]
    fn serve_trace_chains_decode_steps_autoregressively() {
        let model = ModelId::Llama2.build();
        let cluster = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let workload = Workload::serve(madmax_parallel::ServeConfig::new(256, 3));
        let trace = TraceBuilder {
            model: &model,
            cluster: &cluster,
            plan: &plan,
            workload: &workload,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build();
        // Every decode step's first compute transitively follows the
        // previous step: the trace stays topologically ordered, and step
        // boundaries appear in step order.
        let step_of = |name: &crate::trace::OpName| match name {
            crate::trace::OpName::DecodeFlat { step, .. } => Some(*step),
            _ => None,
        };
        let mut last_step = None;
        for op in trace.ops() {
            if let Some(s) = step_of(&op.name) {
                if let Some(prev) = last_step {
                    assert!(s >= prev, "decode steps out of order");
                }
                last_step = Some(s);
            }
        }
        assert_eq!(last_step, Some(2));
    }
}
