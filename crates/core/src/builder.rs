//! Trace construction: turns (model, system, plan, task) into per-device
//! compute + communication streams with explicit data dependencies
//! (Section IV-C: "Piecing Together Computation and Comm. Streams").
//!
//! The builder walks the model's layer groups in execution order for the
//! forward pass and in reverse for the backward pass. Embedding groups form
//! a side chain (their blocking All2All joins the dense chain at the
//! feature-combination stage, exactly as in the paper's Fig. 6), FSDP
//! AllGathers are issued eagerly when prefetching is enabled (Fig. 9), and
//! weight-gradient collectives land on a separate lower-priority stream so
//! they drain behind blocking traffic.

use madmax_hw::units::Seconds;
use madmax_hw::ClusterSpec;
use madmax_model::{LayerKind, ModelArch};
use madmax_parallel::comm::CommPosition;
use madmax_parallel::{derive_layer_comm, CommReq, Plan, Task, Urgency};

use crate::collective::CollectiveModel;
use crate::compute::{
    backward_flops_factor, compute_time, device_flops_fwd, device_lookup_bytes, lookup_time,
    optimizer_time, UtilizationModel,
};
use crate::trace::{OpId, OpKind, Phase, StreamId, Trace, TraceOp};

/// Inputs to trace construction.
#[derive(Debug)]
pub struct TraceBuilder<'a> {
    /// Model architecture.
    pub model: &'a ModelArch,
    /// Target system.
    pub cluster: &'a ClusterSpec,
    /// Workload-to-system mapping.
    pub plan: &'a Plan,
    /// Task (pre-training / fine-tuning / inference).
    pub task: &'a Task,
    /// Collective cost model.
    pub collective_model: &'a dyn CollectiveModel,
    /// Compute-utilization model.
    pub utilization: UtilizationModel,
}

impl<'a> TraceBuilder<'a> {
    fn comm_op(
        &self,
        trace: &mut Trace,
        req: &CommReq,
        phase: Phase,
        stream: StreamId,
        deps: Vec<OpId>,
        prefix: &str,
    ) -> OpId {
        trace.push(TraceOp {
            name: format!("{prefix}.{}", req.label),
            stream,
            kind: OpKind::Collective {
                kind: req.collective,
            },
            phase,
            duration: self.collective_model.time(req, self.cluster),
            deps,
        })
    }

    /// Builds the full per-iteration trace.
    pub fn build(&self) -> Trace {
        let mut trace = Trace::new();
        let local_batch = self.model.global_batch as f64 / self.cluster.total_devices() as f64;
        let prefetch = self.plan.options.fsdp_prefetch;

        // Per-group communication plans (identical across instances).
        let comms: Vec<_> = self
            .model
            .groups
            .iter()
            .map(|g| {
                derive_layer_comm(
                    g,
                    self.plan,
                    self.model,
                    self.cluster,
                    self.task,
                    local_batch,
                )
            })
            .collect();

        // ---------------- Forward pass ----------------
        let mut last_out: Option<OpId> = None; // dense-chain tail
        let mut pending_join: Vec<OpId> = Vec::new(); // embedding-side outputs
        let mut last_compute: Option<OpId> = None; // for just-in-time gathers

        for (gi, group) in self.model.groups.iter().enumerate() {
            let comm = &comms[gi];
            let is_embedding = group.kind.is_memory_bound();
            let is_side_branch_input = matches!(group.kind, LayerKind::Mlp(_));

            for inst in 0..group.repeat {
                let prefix = if group.repeat > 1 {
                    format!("fwd[{inst}]")
                } else {
                    "fwd".to_owned()
                };

                // Input dependencies of this layer's compute.
                let mut base_deps: Vec<OpId> = Vec::new();
                if is_embedding {
                    // Embedding lookups start from iteration inputs.
                } else {
                    if let Some(l) = last_out {
                        base_deps.push(l);
                    }
                    if !is_side_branch_input && !pending_join.is_empty() {
                        // Feature-combination stage: consume embedding outputs.
                        base_deps.append(&mut pending_join);
                    }
                }

                // Pre-compute collectives (FSDP gathers, MoE dispatch).
                let mut gate_deps: Vec<OpId> = Vec::new();
                for req in comm
                    .forward
                    .iter()
                    .filter(|r| r.position == CommPosition::BeforeCompute)
                {
                    if req.payload.is_zero() {
                        continue;
                    }
                    let deps = match req.urgency {
                        Urgency::Prefetchable if prefetch => vec![],
                        Urgency::Prefetchable => last_compute.into_iter().collect(),
                        _ => base_deps.clone(),
                    };
                    let id = self.comm_op(
                        &mut trace,
                        req,
                        Phase::Forward,
                        StreamId::Comm,
                        deps,
                        &prefix,
                    );
                    if req.urgency == Urgency::Blocking {
                        // e.g. MoE dispatch carries the layer input.
                        base_deps = vec![id];
                    } else {
                        gate_deps.push(id);
                    }
                }

                // The layer's compute (or HBM lookup) op.
                let mut deps = base_deps;
                deps.extend(gate_deps);
                deps.sort_unstable();
                deps.dedup();
                let compute_id = if is_embedding {
                    let bytes = device_lookup_bytes(group, self.model, self.cluster);
                    trace.push(TraceOp {
                        name: format!("{prefix}.{}.lookup", group.name),
                        stream: StreamId::Compute,
                        kind: OpKind::Lookup,
                        phase: Phase::Forward,
                        duration: lookup_time(bytes, self.cluster),
                        deps,
                    })
                } else {
                    let strategy = self.plan.strategy_for(group.class);
                    let flops =
                        device_flops_fwd(group, self.model, self.cluster, &strategy, local_batch);
                    trace.push(TraceOp {
                        name: format!("{prefix}.{}", group.name),
                        stream: StreamId::Compute,
                        kind: OpKind::Gemm { class: group.class },
                        phase: Phase::Forward,
                        duration: compute_time(flops, self.model, self.cluster, &self.utilization),
                        deps,
                    })
                };
                last_compute = Some(compute_id);

                // Post-compute blocking collectives (TP AllReduce, embedding
                // All2All, MoE combine).
                let mut out = compute_id;
                for req in comm
                    .forward
                    .iter()
                    .filter(|r| r.position == CommPosition::AfterCompute)
                {
                    if req.payload.is_zero() {
                        continue;
                    }
                    out = self.comm_op(
                        &mut trace,
                        req,
                        Phase::Forward,
                        StreamId::Comm,
                        vec![out],
                        &prefix,
                    );
                }

                if is_embedding {
                    pending_join.push(out);
                } else {
                    last_out = Some(out);
                }
            }
        }

        let final_fwd = last_out
            .or_else(|| pending_join.last().copied())
            .unwrap_or(OpId(0));

        // ---------------- Backward pass ----------------
        if self.task.has_backward() && !trace.is_empty() {
            let mut last_bwd = final_fwd;
            let mut grad_ops: Vec<OpId> = Vec::new();

            for (gi, group) in self.model.groups.iter().enumerate().rev() {
                if !self.task.trains(group.class) {
                    continue; // frozen layers' gradient work is omitted
                }
                let comm = &comms[gi];
                let is_embedding = group.kind.is_memory_bound();

                for inst in (0..group.repeat).rev() {
                    let prefix = if group.repeat > 1 {
                        format!("bwd[{inst}]")
                    } else {
                        "bwd".to_owned()
                    };

                    if is_embedding {
                        // Gradients are routed back to shard owners, then
                        // scattered into HBM; both off the dense critical
                        // path.
                        let mut dep = vec![last_bwd];
                        for req in &comm.grad {
                            if req.payload.is_zero() {
                                continue;
                            }
                            let id = self.comm_op(
                                &mut trace,
                                req,
                                Phase::Backward,
                                StreamId::GradComm,
                                dep.clone(),
                                &prefix,
                            );
                            dep = vec![id];
                        }
                        let bytes = device_lookup_bytes(group, self.model, self.cluster);
                        let scatter = trace.push(TraceOp {
                            name: format!("{prefix}.{}.grad_scatter", group.name),
                            stream: StreamId::Compute,
                            kind: OpKind::Lookup,
                            phase: Phase::Backward,
                            duration: lookup_time(bytes, self.cluster),
                            deps: dep,
                        });
                        grad_ops.push(scatter);
                        continue;
                    }

                    // Pre-compute backward collectives (FSDP re-gather,
                    // MoE combine_bwd).
                    let mut base_deps = vec![last_bwd];
                    let mut gate_deps: Vec<OpId> = Vec::new();
                    for req in comm
                        .backward
                        .iter()
                        .filter(|r| r.position == CommPosition::BeforeCompute)
                    {
                        if req.payload.is_zero() {
                            continue;
                        }
                        let deps = match req.urgency {
                            Urgency::Prefetchable if prefetch => vec![],
                            Urgency::Prefetchable => vec![last_bwd],
                            _ => base_deps.clone(),
                        };
                        let id = self.comm_op(
                            &mut trace,
                            req,
                            Phase::Backward,
                            StreamId::Comm,
                            deps,
                            &prefix,
                        );
                        if req.urgency == Urgency::Blocking {
                            base_deps = vec![id];
                        } else {
                            gate_deps.push(id);
                        }
                    }

                    // Backward compute: weight + input gradients, plus a
                    // forward recompute for checkpointed blocks.
                    let recompute = self.plan.options.activation_checkpointing
                        && matches!(
                            group.kind,
                            LayerKind::TransformerBlock(_) | LayerKind::Moe(_)
                        );
                    let strategy = self.plan.strategy_for(group.class);
                    let flops =
                        device_flops_fwd(group, self.model, self.cluster, &strategy, local_batch)
                            * backward_flops_factor(recompute);
                    let mut deps = base_deps;
                    deps.extend(gate_deps);
                    deps.sort_unstable();
                    deps.dedup();
                    let bwd_compute = trace.push(TraceOp {
                        name: format!("{prefix}.{}", group.name),
                        stream: StreamId::Compute,
                        kind: OpKind::Gemm { class: group.class },
                        phase: Phase::Backward,
                        duration: compute_time(flops, self.model, self.cluster, &self.utilization),
                        deps,
                    });
                    last_bwd = bwd_compute;

                    // Post-compute blocking backward collectives.
                    for req in comm
                        .backward
                        .iter()
                        .filter(|r| r.position == CommPosition::AfterCompute)
                    {
                        if req.payload.is_zero() {
                            continue;
                        }
                        last_bwd = self.comm_op(
                            &mut trace,
                            req,
                            Phase::Backward,
                            StreamId::Comm,
                            vec![last_bwd],
                            &prefix,
                        );
                    }

                    // Weight-gradient collectives: deferred, off the
                    // critical path until the optimizer.
                    for req in &comm.grad {
                        if req.payload.is_zero() {
                            continue;
                        }
                        let id = self.comm_op(
                            &mut trace,
                            req,
                            Phase::Backward,
                            StreamId::GradComm,
                            vec![bwd_compute],
                            &prefix,
                        );
                        grad_ops.push(id);
                    }
                }
            }

            // Optimizer step waits on every gradient.
            let mut deps = grad_ops;
            deps.push(last_bwd);
            deps.sort_unstable();
            deps.dedup();
            let opt_dur = optimizer_time(self.model, self.cluster, self.plan, self.task);
            if opt_dur > Seconds::ZERO {
                trace.push(TraceOp {
                    name: "update.optimizer".to_owned(),
                    stream: StreamId::Compute,
                    kind: OpKind::Optimizer,
                    phase: Phase::Update,
                    duration: opt_dur,
                    deps,
                });
            }
        }

        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::HierarchicalNccl;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::CollectiveKind;

    fn build(model: &ModelArch, task: &Task) -> Trace {
        let cluster = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(model);
        TraceBuilder {
            model,
            cluster: &cluster,
            plan: &plan,
            task,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build()
    }

    #[test]
    fn dlrm_forward_matches_fig6_structure() {
        let model = ModelId::DlrmA.build();
        let trace = build(&model, &Task::Inference);
        let names: Vec<&str> = trace.ops().iter().map(|o| o.name.as_str()).collect();
        // Lookup before A2A; A2A consumed by the interaction stage, not the
        // bottom MLP.
        let lookup = names.iter().position(|n| n.contains("lookup")).unwrap();
        let a2a = names.iter().position(|n| n.contains("a2a")).unwrap();
        let bottom = names
            .iter()
            .position(|n| n.contains("bottom_mlp") && !n.contains(".ag"))
            .unwrap();
        let interaction = names
            .iter()
            .position(|n| n.contains("feature_interaction"))
            .unwrap();
        assert!(lookup < a2a);
        let a2a_op = &trace.ops()[a2a];
        assert_eq!(a2a_op.deps, vec![OpId(lookup)]);
        // Bottom MLP does not depend on the A2A...
        assert!(!trace.ops()[bottom].deps.contains(&OpId(a2a)));
        // ...but the interaction does, plus the bottom MLP.
        let ideps = &trace.ops()[interaction].deps;
        assert!(ideps.contains(&OpId(a2a)), "{ideps:?}");
        assert!(ideps.contains(&OpId(bottom)), "{ideps:?}");
    }

    #[test]
    fn inference_has_no_backward_ops() {
        let model = ModelId::DlrmA.build();
        let trace = build(&model, &Task::Inference);
        assert!(trace.ops().iter().all(|o| o.phase == Phase::Forward));
    }

    #[test]
    fn pretraining_emits_gradient_collectives_and_optimizer() {
        let model = ModelId::DlrmA.build();
        let trace = build(&model, &Task::Pretraining);
        let has_rs = trace.ops().iter().any(|o| {
            matches!(
                o.kind,
                OpKind::Collective {
                    kind: CollectiveKind::ReduceScatter
                }
            )
        });
        assert!(has_rs, "FSDP baseline must reduce-scatter gradients");
        let opt = trace
            .ops()
            .iter()
            .find(|o| o.kind == OpKind::Optimizer)
            .unwrap();
        assert!(!opt.deps.is_empty());
        // Gradient collectives live on the deferred stream.
        assert!(trace.stream_ops(StreamId::GradComm).count() >= 2);
    }

    #[test]
    fn finetune_embedding_skips_dense_backward() {
        let model = ModelId::DlrmA.build();
        let trace = build(
            &model,
            &Task::finetune_only(madmax_model::LayerClass::Embedding),
        );
        // No backward GEMMs: the paper's Insight 5 simplification.
        let bwd_gemms = trace
            .ops()
            .iter()
            .filter(|o| o.phase == Phase::Backward && matches!(o.kind, OpKind::Gemm { .. }))
            .count();
        assert_eq!(bwd_gemms, 0);
        // But the embedding gradient exchange and scatter exist.
        assert!(trace.ops().iter().any(|o| o.name.contains("a2a_bwd")));
        assert!(trace.ops().iter().any(|o| o.name.contains("grad_scatter")));
    }

    #[test]
    fn llm_trace_has_per_block_instances() {
        let model = ModelId::Gpt3.build();
        let cluster = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let trace = TraceBuilder {
            model: &model,
            cluster: &cluster,
            plan: &plan,
            task: &Task::Pretraining,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build();
        let fwd_blocks = trace
            .ops()
            .iter()
            .filter(|o| o.phase == Phase::Forward && matches!(o.kind, OpKind::Gemm { .. }))
            .count();
        assert_eq!(fwd_blocks, 96);
        // 96 forward gathers + 96 backward gathers + 96 reduce-scatters
        // (plus the embedding's), all nonzero.
        let ags = trace
            .ops()
            .iter()
            .filter(|o| {
                matches!(
                    o.kind,
                    OpKind::Collective {
                        kind: CollectiveKind::AllGather
                    }
                )
            })
            .count();
        assert!(ags >= 192, "{ags}");
    }

    #[test]
    fn prefetch_removes_gather_dependencies() {
        let model = ModelId::Gpt3.build();
        let cluster = catalog::llama_llm_system();
        let mut plan = Plan::fsdp_baseline(&model);
        let task = Task::Pretraining;
        plan.options.fsdp_prefetch = true;
        let with = TraceBuilder {
            model: &model,
            cluster: &cluster,
            plan: &plan,
            task: &task,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build();
        plan.options.fsdp_prefetch = false;
        let without = TraceBuilder {
            model: &model,
            cluster: &cluster,
            plan: &plan,
            task: &task,
            collective_model: &HierarchicalNccl,
            utilization: UtilizationModel::Constant,
        }
        .build();
        let dep_count = |t: &Trace| -> usize {
            t.ops()
                .iter()
                .filter(|o| o.name.contains(".ag"))
                .map(|o| o.deps.len())
                .sum()
        };
        assert!(dep_count(&with) < dep_count(&without));
    }
}
