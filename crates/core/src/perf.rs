//! The flat-SPMD execution engine: turns one (model, system, plan, task)
//! combination into an [`IterationReport`].
//!
//! [`run_flat`] is the low-level entry point shared by the unified
//! `madmax_engine::Scenario` front door and the deprecated [`Simulation`]
//! shim. New code should go through `Scenario`, which also dispatches
//! pipelined plans.

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{check_memory, Plan, PlanError, Task};

use crate::builder::TraceBuilder;
use crate::collective::{CollectiveModel, HierarchicalNccl};
use crate::compute::UtilizationModel;
use crate::costs::CostTable;
use crate::metrics::IterationReport;
use crate::sim::{schedule, schedule_into, EngineScratch, Schedule};
use crate::trace::Trace;

/// The default collective model instance.
static DEFAULT_COLLECTIVES: HierarchicalNccl = HierarchicalNccl;

/// This engine executes the flat SPMD mapping only; plans that configure
/// pipeline parallelism must go through `madmax-pipeline`'s stage engine
/// (or the dispatching `madmax_engine::Scenario`).
fn reject_pipelined(plan: &Plan) -> Result<(), PlanError> {
    match plan.pipeline {
        Some(pp) if pp.is_pipelined() => Err(PlanError::PipelinedPlan { stages: pp.stages }),
        _ => Ok(()),
    }
}

/// The shared front half of the flat engine: validate, check memory, and
/// build the trace. Both trace-only inspection and the full run go
/// through here so the two views can never drift.
fn prepare_flat(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<(Trace, madmax_parallel::MemoryBreakdown), PlanError> {
    reject_pipelined(plan)?;
    let memory = check_memory(model, cluster, plan, task)?;
    let trace = TraceBuilder {
        model,
        cluster,
        plan,
        task,
        collective_model,
        utilization,
    }
    .build();
    Ok((trace, memory))
}

/// Builds the flat-SPMD trace without scheduling it (for inspection /
/// Fig. 6 timelines).
///
/// # Errors
///
/// Fails when the plan is pipelined ([`PlanError::PipelinedPlan`]),
/// invalid ([`PlanError::InvalidStrategy`]), or the mapping does not fit
/// in device memory ([`PlanError::OutOfMemory`]).
pub fn build_flat_trace(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<Trace, PlanError> {
    prepare_flat(model, cluster, plan, task, collective_model, utilization).map(|(trace, _)| trace)
}

/// Runs the flat-SPMD engine end to end, returning the report plus the
/// trace and schedule for timeline rendering.
///
/// # Errors
///
/// Same conditions as [`build_flat_trace`].
pub fn run_flat(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<(IterationReport, Trace, Schedule), PlanError> {
    let (trace, memory) = prepare_flat(model, cluster, plan, task, collective_model, utilization)?;
    let sched = schedule(&trace);
    let report = IterationReport::from_schedule(&trace, &sched, model, memory);
    Ok((report, trace, sched))
}

/// The flat engine's allocation-free fast path: evaluates `plan` against
/// a shared, pre-priced [`CostTable`] using caller-owned buffers.
///
/// This is the design-space-exploration hot path — the report is
/// byte-identical to [`run_flat`] with the same inputs, but no compute or
/// collective cost model is invoked (costs come from the table) and the
/// trace arena, schedule, and stream-slot table in `scratch` are recycled
/// across calls.
///
/// # Errors
///
/// Same conditions as [`run_flat`].
///
/// # Panics
///
/// Panics when a strategy of `plan` was not priced into `table` via
/// [`CostTable::ensure_plan`]. Debug builds additionally assert that
/// `plan`'s options match the table's pricing context.
pub fn run_flat_cached(
    table: &CostTable,
    plan: &Plan,
    scratch: &mut EngineScratch,
) -> Result<IterationReport, PlanError> {
    reject_pipelined(plan)?;
    let memory = table.memory_for(plan)?;
    table.assemble_into(plan, &mut scratch.trace);
    schedule_into(&scratch.trace, &mut scratch.sched, &mut scratch.streams);
    Ok(IterationReport::from_schedule_in(
        &scratch.trace,
        &scratch.sched,
        table.model(),
        memory,
        &mut scratch.report,
    ))
}

/// A configured flat-SPMD MAD-Max simulation.
///
/// Deprecated: `madmax_engine::Scenario` is the unified entry point; it
/// accepts both flat and pipelined plans and reports one error type.
#[deprecated(
    since = "0.2.0",
    note = "use madmax_engine::Scenario, the unified flat + pipeline entry point"
)]
#[derive(Debug)]
pub struct Simulation<'a> {
    model: &'a ModelArch,
    cluster: &'a ClusterSpec,
    plan: &'a Plan,
    task: Task,
    collective_model: &'a dyn CollectiveModel,
    utilization: UtilizationModel,
}

#[allow(deprecated)]
impl<'a> Simulation<'a> {
    /// Creates a simulation with the default NCCL-style collective model
    /// and constant compute utilization.
    pub fn new(model: &'a ModelArch, cluster: &'a ClusterSpec, plan: &'a Plan, task: Task) -> Self {
        Self {
            model,
            cluster,
            plan,
            task,
            collective_model: &DEFAULT_COLLECTIVES,
            utilization: UtilizationModel::Constant,
        }
    }

    /// Replaces the collective cost model (ablation studies).
    #[must_use]
    pub fn with_collective_model(mut self, m: &'a dyn CollectiveModel) -> Self {
        self.collective_model = m;
        self
    }

    /// Replaces the compute-utilization model (e.g. the workload-dependent
    /// MFU model of Fig. 8).
    #[must_use]
    pub fn with_utilization(mut self, u: UtilizationModel) -> Self {
        self.utilization = u;
        self
    }

    /// Builds the trace without scheduling (for inspection / Fig. 6).
    ///
    /// # Errors
    ///
    /// Fails when the plan is invalid or the mapping does not fit in
    /// device memory.
    pub fn build_trace(&self) -> Result<Trace, PlanError> {
        build_flat_trace(
            self.model,
            self.cluster,
            self.plan,
            &self.task,
            self.collective_model,
            self.utilization,
        )
    }

    /// Runs the simulation end to end.
    ///
    /// # Errors
    ///
    /// Fails when the plan is invalid ([`PlanError::InvalidStrategy`]) or
    /// the mapping does not fit in device memory
    /// ([`PlanError::OutOfMemory`]), unless the plan ignores memory limits.
    pub fn run(&self) -> Result<IterationReport, PlanError> {
        let (report, _, _) = self.run_with_trace()?;
        Ok(report)
    }

    /// Runs the simulation, also returning the trace and schedule for
    /// timeline rendering.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_with_trace(&self) -> Result<(IterationReport, Trace, Schedule), PlanError> {
        run_flat(
            self.model,
            self.cluster,
            self.plan,
            &self.task,
            self.collective_model,
            self.utilization,
        )
    }
}

/// One-shot convenience wrapper around the flat engine.
///
/// # Errors
///
/// Same conditions as [`run_flat`].
#[deprecated(
    since = "0.2.0",
    note = "use madmax_engine::Scenario, the unified flat + pipeline entry point"
)]
pub fn simulate(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: Task,
) -> Result<IterationReport, PlanError> {
    run_flat(
        model,
        cluster,
        plan,
        &task,
        &DEFAULT_COLLECTIVES,
        UtilizationModel::Constant,
    )
    .map(|(report, _, _)| report)
}

/// Runs the flat engine with the default cost models (the implementation
/// behind the deprecated [`simulate`] and the non-pipelined half of
/// `madmax_engine::Scenario`).
///
/// # Errors
///
/// Same conditions as [`run_flat`].
pub fn run_flat_default(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: &Task,
) -> Result<IterationReport, PlanError> {
    run_flat(
        model,
        cluster,
        plan,
        task,
        &DEFAULT_COLLECTIVES,
        UtilizationModel::Constant,
    )
    .map(|(report, _, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::FlatWorstLink;
    use madmax_hw::catalog;
    use madmax_model::{LayerClass, ModelId};
    use madmax_parallel::{HierStrategy, Strategy};

    fn run(
        model: &ModelArch,
        cluster: &ClusterSpec,
        plan: &Plan,
        task: Task,
    ) -> Result<IterationReport, PlanError> {
        run_flat_default(model, cluster, plan, &task)
    }

    #[test]
    fn dlrm_baseline_runs_and_is_sane() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let r = run(&model, &sys, &plan, Task::Pretraining).unwrap();
        assert!(r.iteration_time.as_ms() > 10.0 && r.iteration_time.as_ms() < 200.0);
        assert!(r.serialized_time >= r.iteration_time);
        assert!(r.exposed_comm <= r.comm_time);
        assert!(r.mqps() > 0.3 && r.mqps() < 5.0, "{}", r.mqps());
    }

    #[test]
    fn oom_plans_fail() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model)
            .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
        assert!(matches!(
            run(&model, &sys, &plan, Task::Pretraining),
            Err(PlanError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn inference_is_faster_than_training() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let train = run(&model, &sys, &plan, Task::Pretraining).unwrap();
        let infer = run(&model, &sys, &plan, Task::Inference).unwrap();
        assert!(infer.iteration_time < train.iteration_time);
    }

    #[test]
    fn collective_model_ablation_changes_results() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let (hier, _, _) = run_flat(
            &model,
            &sys,
            &plan,
            &Task::Pretraining,
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .unwrap();
        let (flat, _, _) = run_flat(
            &model,
            &sys,
            &plan,
            &Task::Pretraining,
            &FlatWorstLink,
            UtilizationModel::Constant,
        )
        .unwrap();
        assert!(flat.comm_time > hier.comm_time);
    }

    #[test]
    fn trace_inspection_available() {
        let model = ModelId::DlrmB.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let (report, trace, sched) = run_flat(
            &model,
            &sys,
            &plan,
            &Task::Pretraining,
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .unwrap();
        assert_eq!(trace.len(), sched.windows.len());
        assert!((trace.serialized_time() / report.serialized_time - 1.0).abs() < 1e-12);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_engine() {
        // The legacy `Simulation` / `simulate` front door must keep
        // producing the exact reports of the underlying engine until it is
        // removed.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let engine = run(&model, &sys, &plan, Task::Pretraining).unwrap();
        let shim = Simulation::new(&model, &sys, &plan, Task::Pretraining)
            .run()
            .unwrap();
        let one_shot = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        assert_eq!(engine, shim);
        assert_eq!(engine, one_shot);
    }
}
