//! The flat-SPMD execution engine: turns one (model, system, plan,
//! workload) combination into an [`IterationReport`].
//!
//! [`run_flat`] is the low-level entry point behind the unified
//! `madmax_engine::Scenario` front door. New code should go through
//! `Scenario`, which also dispatches pipelined plans.
//!
//! Serve workloads run their prefill and decode phases through the same
//! trace machinery: the prefill is the familiar forward-only pass (over
//! the prompt-length effective model), decode steps are appended as
//! autoregressive single-token passes, and the report additionally
//! carries [`crate::metrics::ServeStats`] (TTFT / TPOT).
//!
//! # Debug-assertions contract
//!
//! Every schedule this engine assembles — one-shot and cached paths
//! alike — is cross-checked by [`crate::sim::debug_check_schedule`] in
//! debug builds (causality, per-stream exclusivity, non-negative
//! durations, makespan consistency). Release builds skip the check
//! entirely; the full structural rule set with non-panicking diagnostics
//! is `madmax-verify`.

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{check_memory, Plan, PlanError, Workload};

use crate::builder::TraceBuilder;
use crate::collective::{CollectiveModel, HierarchicalNccl};
use crate::compute::UtilizationModel;
use crate::costs::CostTable;
use crate::metrics::IterationReport;
use crate::sim::{schedule, schedule_into, EngineScratch, Schedule};
use crate::trace::Trace;

/// The default collective model instance.
static DEFAULT_COLLECTIVES: HierarchicalNccl = HierarchicalNccl;

/// This engine executes the flat SPMD mapping only; plans that configure
/// pipeline parallelism must go through `madmax-pipeline`'s stage engine
/// (or the dispatching `madmax_engine::Scenario`).
fn reject_pipelined(plan: &Plan) -> Result<(), PlanError> {
    match plan.pipeline {
        Some(pp) if pp.is_pipelined() => Err(PlanError::PipelinedPlan { stages: pp.stages }),
        _ => Ok(()),
    }
}

/// The shared front half of the flat engine: validate, check memory, and
/// price + build the trace. Both trace-only inspection and the full run
/// go through here so the two views can never drift.
fn prepare_flat<'a>(
    model: &'a ModelArch,
    cluster: &'a ClusterSpec,
    plan: &'a Plan,
    workload: &'a Workload,
    collective_model: &'a dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<(CostTable<'a>, Trace, madmax_parallel::MemoryBreakdown), PlanError> {
    reject_pipelined(plan)?;
    let memory = check_memory(model, cluster, plan, workload)?;
    let table = TraceBuilder {
        model,
        cluster,
        plan,
        workload,
        collective_model,
        utilization,
    }
    .price();
    let mut trace = Trace::new();
    table.assemble_into(plan, &mut trace);
    Ok((table, trace, memory))
}

/// Builds the flat-SPMD trace without scheduling it (for inspection /
/// Fig. 6 timelines).
///
/// # Errors
///
/// Fails when the plan is pipelined ([`PlanError::PipelinedPlan`]),
/// invalid ([`PlanError::InvalidStrategy`]), or the mapping does not fit
/// in device memory ([`PlanError::OutOfMemory`]).
pub fn build_flat_trace(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<Trace, PlanError> {
    prepare_flat(
        model,
        cluster,
        plan,
        workload,
        collective_model,
        utilization,
    )
    .map(|(_, trace, _)| trace)
}

/// Runs the flat-SPMD engine end to end, returning the report plus the
/// trace and schedule for timeline rendering.
///
/// # Errors
///
/// Same conditions as [`build_flat_trace`].
pub fn run_flat(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    collective_model: &dyn CollectiveModel,
    utilization: UtilizationModel,
) -> Result<(IterationReport, Trace, Schedule), PlanError> {
    let (table, trace, memory) = {
        let _span = crate::prof::span("price.flat");
        prepare_flat(
            model,
            cluster,
            plan,
            workload,
            collective_model,
            utilization,
        )?
    };
    let sched = {
        let _span = crate::prof::span("assemble.flat");
        schedule(&trace)
    };
    if cfg!(debug_assertions) {
        crate::sim::debug_check_schedule(&trace, &sched);
    }
    let _span = crate::prof::span("report.flat");
    let mut report = IterationReport::from_schedule(&trace, &sched, table.report_model(), memory);
    report.serve = table.serve_stats(&trace, &sched);
    Ok((report, trace, sched))
}

/// The flat engine's allocation-free fast path: evaluates `plan` against
/// a shared, pre-priced [`CostTable`] using caller-owned buffers.
///
/// This is the design-space-exploration hot path — the report is
/// byte-identical to [`run_flat`] with the same inputs, but no compute or
/// collective cost model is invoked (costs come from the table) and the
/// trace arena, schedule, and stream-slot table in `scratch` are recycled
/// across calls.
///
/// # Errors
///
/// Same conditions as [`run_flat`].
///
/// # Panics
///
/// Panics when a strategy of `plan` was not priced into `table` via
/// [`CostTable::ensure_plan`]. Debug builds additionally assert that
/// `plan`'s options match the table's pricing context.
pub fn run_flat_cached(
    table: &CostTable,
    plan: &Plan,
    scratch: &mut EngineScratch,
) -> Result<IterationReport, PlanError> {
    reject_pipelined(plan)?;
    let memory = table.memory_for(plan)?;
    // Closed-form serve path: assemble only the prefill + transient
    // tokens and synthesize the report (bit-identical to the full
    // simulation below; see `crate::steady`). Falls through on any
    // structural condition the closed form does not cover.
    if table.analytic_serve() {
        if let Some(dims) = table.serve_dims() {
            if dims.decode_len >= crate::steady::MIN_ANALYTIC_DECODE {
                let _span = crate::prof::span("steady.flat");
                table.assemble_serve_prefix_into(
                    plan,
                    &mut scratch.trace,
                    crate::steady::EXPLICIT_TOKENS,
                );
                if let Some(report) = crate::steady::evaluate_serve_prefix(
                    &scratch.trace,
                    crate::steady::EXPLICIT_TOKENS,
                    &dims,
                    table.report_model(),
                    memory,
                    &mut scratch.steady,
                ) {
                    table.analytic_counters().hit();
                    return Ok(report);
                }
            }
        }
    }
    if table.serve_dims().is_some() {
        table.analytic_counters().miss();
    }
    {
        let _span = crate::prof::span("assemble.flat");
        table.assemble_into(plan, &mut scratch.trace);
        schedule_into(&scratch.trace, &mut scratch.sched, &mut scratch.streams);
    }
    if cfg!(debug_assertions) {
        crate::sim::debug_check_schedule(&scratch.trace, &scratch.sched);
    }
    let _span = crate::prof::span("report.flat");
    let mut report = IterationReport::from_schedule_in(
        &scratch.trace,
        &scratch.sched,
        table.report_model(),
        memory,
        &mut scratch.report,
    );
    report.serve = table.serve_stats(&scratch.trace, &scratch.sched);
    Ok(report)
}

/// Runs the flat engine with the default cost models (the non-pipelined
/// half of `madmax_engine::Scenario`).
///
/// # Errors
///
/// Same conditions as [`run_flat`].
pub fn run_flat_default(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> Result<IterationReport, PlanError> {
    run_flat(
        model,
        cluster,
        plan,
        workload,
        &DEFAULT_COLLECTIVES,
        UtilizationModel::Constant,
    )
    .map(|(report, _, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::FlatWorstLink;
    use madmax_hw::catalog;
    use madmax_model::{LayerClass, ModelId};
    use madmax_parallel::{HierStrategy, ServeConfig, Strategy};

    fn run(
        model: &ModelArch,
        cluster: &ClusterSpec,
        plan: &Plan,
        workload: Workload,
    ) -> Result<IterationReport, PlanError> {
        run_flat_default(model, cluster, plan, &workload)
    }

    #[test]
    fn dlrm_baseline_runs_and_is_sane() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let r = run(&model, &sys, &plan, Workload::pretrain()).unwrap();
        assert!(r.iteration_time.as_ms() > 10.0 && r.iteration_time.as_ms() < 200.0);
        assert!(r.serialized_time >= r.iteration_time);
        assert!(r.exposed_comm <= r.comm_time);
        assert!(r.mqps() > 0.3 && r.mqps() < 5.0, "{}", r.mqps());
        assert!(r.serve.is_none());
    }

    #[test]
    fn oom_plans_fail() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model)
            .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
        assert!(matches!(
            run(&model, &sys, &plan, Workload::pretrain()),
            Err(PlanError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn inference_is_faster_than_training() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let train = run(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let infer = run(&model, &sys, &plan, Workload::inference()).unwrap();
        assert!(infer.iteration_time < train.iteration_time);
        assert!(infer.serve.is_none(), "prefill-only runs carry no stats");
    }

    #[test]
    fn collective_model_ablation_changes_results() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let (hier, _, _) = run_flat(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .unwrap();
        let (flat, _, _) = run_flat(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &FlatWorstLink,
            UtilizationModel::Constant,
        )
        .unwrap();
        assert!(flat.comm_time > hier.comm_time);
    }

    #[test]
    fn trace_inspection_available() {
        let model = ModelId::DlrmB.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let (report, trace, sched) = run_flat(
            &model,
            &sys,
            &plan,
            &Workload::pretrain(),
            &DEFAULT_COLLECTIVES,
            UtilizationModel::Constant,
        )
        .unwrap();
        assert_eq!(trace.len(), sched.windows.len());
        assert!((trace.serialized_time() / report.serialized_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serve_run_reports_ttft_and_tpot() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let workload = Workload::serve(ServeConfig::new(1024, 32));
        let r = run(&model, &sys, &plan, workload).unwrap();
        let s = r.serve.expect("decode run reports serve stats");
        assert_eq!(s.prompt_len, 1024);
        assert_eq!(s.decode_len, 32);
        assert_eq!(s.decode_batch, model.global_batch);
        assert!(s.ttft.as_secs() > 0.0);
        assert!(s.tpot.as_secs() > 0.0);
        assert!(s.ttft > s.tpot, "prefill outweighs one decode step");
        assert!(
            (s.ttft + s.tpot * 32.0 - r.iteration_time).as_secs().abs() < 1e-9,
            "iteration splits into TTFT + decode stream"
        );
        assert!(r.serve_tokens_per_sec().unwrap() > 0.0);
        assert!(r.memory.kv_cache.as_gb() > 0.0);
    }

    #[test]
    fn prefill_only_serve_matches_legacy_inference_shape() {
        // Workload::inference() (the Task::Inference mapping) must run the
        // exact legacy forward-only path: same report, no serve stats.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let r = run(&model, &sys, &plan, Workload::inference()).unwrap();
        assert!(r.serve.is_none());
        assert_eq!(r.memory.kv_cache, madmax_hw::units::ByteCount::ZERO);
        // Explicit prompt = model context yields identical numbers (only
        // the engine-internal model handle differs).
        let explicit = Workload::serve(ServeConfig {
            prompt_len: Some(model.context_length),
            decode_len: 0,
            decode_batch: None,
            kv_cache: false,
        });
        let r2 = run(&model, &sys, &plan, explicit).unwrap();
        assert_eq!(r, r2);
    }
}
