//! The top-level MAD-Max entry point: configure a simulation of one
//! (model, system, plan, task) combination and obtain an
//! [`IterationReport`].

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{check_memory, Plan, PlanError, Task};

use crate::builder::TraceBuilder;
use crate::collective::{CollectiveModel, HierarchicalNccl};
use crate::compute::UtilizationModel;
use crate::metrics::IterationReport;
use crate::sim::{schedule, Schedule};
use crate::trace::Trace;

/// A configured MAD-Max simulation.
///
/// # Examples
///
/// ```
/// use madmax_core::Simulation;
/// use madmax_hw::catalog;
/// use madmax_model::ModelId;
/// use madmax_parallel::{Plan, Task};
///
/// # fn main() -> Result<(), madmax_parallel::PlanError> {
/// let model = ModelId::DlrmA.build();
/// let system = catalog::zionex_dlrm_system();
/// let plan = Plan::fsdp_baseline(&model);
/// let report = Simulation::new(&model, &system, &plan, Task::Pretraining).run()?;
/// assert!(report.mqps() > 0.5 && report.mqps() < 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation<'a> {
    model: &'a ModelArch,
    cluster: &'a ClusterSpec,
    plan: &'a Plan,
    task: Task,
    collective_model: &'a dyn CollectiveModel,
    utilization: UtilizationModel,
}

/// The default collective model instance.
static DEFAULT_COLLECTIVES: HierarchicalNccl = HierarchicalNccl;

impl<'a> Simulation<'a> {
    /// Creates a simulation with the default NCCL-style collective model
    /// and constant compute utilization.
    pub fn new(model: &'a ModelArch, cluster: &'a ClusterSpec, plan: &'a Plan, task: Task) -> Self {
        Self {
            model,
            cluster,
            plan,
            task,
            collective_model: &DEFAULT_COLLECTIVES,
            utilization: UtilizationModel::Constant,
        }
    }

    /// Replaces the collective cost model (ablation studies).
    #[must_use]
    pub fn with_collective_model(mut self, m: &'a dyn CollectiveModel) -> Self {
        self.collective_model = m;
        self
    }

    /// Replaces the compute-utilization model (e.g. the workload-dependent
    /// MFU model of Fig. 8).
    #[must_use]
    pub fn with_utilization(mut self, u: UtilizationModel) -> Self {
        self.utilization = u;
        self
    }

    /// This simulator executes the flat SPMD mapping; plans that configure
    /// pipeline parallelism must go through `madmax-pipeline`'s simulator,
    /// which builds multi-stream stage traces.
    fn reject_pipelined(&self) -> Result<(), PlanError> {
        match self.plan.pipeline {
            Some(pp) if pp.is_pipelined() => Err(PlanError::PipelinedPlan { stages: pp.stages }),
            _ => Ok(()),
        }
    }

    /// Builds the trace without scheduling (for inspection / Fig. 6).
    ///
    /// # Errors
    ///
    /// Fails when the plan is invalid or the mapping does not fit in
    /// device memory.
    pub fn build_trace(&self) -> Result<Trace, PlanError> {
        self.reject_pipelined()?;
        check_memory(self.model, self.cluster, self.plan, &self.task)?;
        Ok(TraceBuilder {
            model: self.model,
            cluster: self.cluster,
            plan: self.plan,
            task: &self.task,
            collective_model: self.collective_model,
            utilization: self.utilization,
        }
        .build())
    }

    /// Runs the simulation end to end.
    ///
    /// # Errors
    ///
    /// Fails when the plan is invalid ([`PlanError::InvalidStrategy`]) or
    /// the mapping does not fit in device memory
    /// ([`PlanError::OutOfMemory`]), unless the plan ignores memory limits.
    pub fn run(&self) -> Result<IterationReport, PlanError> {
        let (report, _, _) = self.run_with_trace()?;
        Ok(report)
    }

    /// Runs the simulation, also returning the trace and schedule for
    /// timeline rendering.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_with_trace(&self) -> Result<(IterationReport, Trace, Schedule), PlanError> {
        self.reject_pipelined()?;
        let memory = check_memory(self.model, self.cluster, self.plan, &self.task)?;
        let trace = TraceBuilder {
            model: self.model,
            cluster: self.cluster,
            plan: self.plan,
            task: &self.task,
            collective_model: self.collective_model,
            utilization: self.utilization,
        }
        .build();
        let sched = schedule(&trace);
        let report = IterationReport::from_schedule(&trace, &sched, self.model, memory);
        Ok((report, trace, sched))
    }
}

/// One-shot convenience wrapper around [`Simulation`].
///
/// # Errors
///
/// Same conditions as [`Simulation::run`].
pub fn simulate(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    task: Task,
) -> Result<IterationReport, PlanError> {
    Simulation::new(model, cluster, plan, task).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::FlatWorstLink;
    use madmax_hw::catalog;
    use madmax_model::{LayerClass, ModelId};
    use madmax_parallel::{HierStrategy, Strategy};

    #[test]
    fn dlrm_baseline_runs_and_is_sane() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let r = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        assert!(r.iteration_time.as_ms() > 10.0 && r.iteration_time.as_ms() < 200.0);
        assert!(r.serialized_time >= r.iteration_time);
        assert!(r.exposed_comm <= r.comm_time);
        assert!(r.mqps() > 0.3 && r.mqps() < 5.0, "{}", r.mqps());
    }

    #[test]
    fn oom_plans_fail() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model)
            .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
        assert!(matches!(
            simulate(&model, &sys, &plan, Task::Pretraining),
            Err(PlanError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn inference_is_faster_than_training() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let train = simulate(&model, &sys, &plan, Task::Pretraining).unwrap();
        let infer = simulate(&model, &sys, &plan, Task::Inference).unwrap();
        assert!(infer.iteration_time < train.iteration_time);
    }

    #[test]
    fn collective_model_ablation_changes_results() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let hier = Simulation::new(&model, &sys, &plan, Task::Pretraining)
            .run()
            .unwrap();
        let flat_model = FlatWorstLink;
        let flat = Simulation::new(&model, &sys, &plan, Task::Pretraining)
            .with_collective_model(&flat_model)
            .run()
            .unwrap();
        assert!(flat.comm_time > hier.comm_time);
    }

    #[test]
    fn trace_inspection_available() {
        let model = ModelId::DlrmB.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let (report, trace, sched) = Simulation::new(&model, &sys, &plan, Task::Pretraining)
            .run_with_trace()
            .unwrap();
        assert_eq!(trace.len(), sched.windows.len());
        assert!((trace.serialized_time() / report.serialized_time - 1.0).abs() < 1e-12);
    }
}
