//! Cost models for compute blocks and embedding lookups
//! (Section IV-B: "Processing Individual Model Layers").

use madmax_hw::units::{ByteCount, FlopCount, Seconds};
use madmax_hw::ClusterSpec;
use madmax_model::{LayerGroup, ModelArch};
use madmax_parallel::{HierStrategy, Plan, Workload};

/// Pass multiplier for backward compute relative to forward: weight
/// gradients (1x) + input gradients (1x), plus a forward recompute when
/// activation checkpointing is enabled.
pub fn backward_flops_factor(activation_checkpointing: bool) -> f64 {
    if activation_checkpointing {
        3.0
    } else {
        2.0
    }
}

/// Compute-utilization model: either the constant factor from the cluster
/// spec, or the paper's Fig. 8 refinement where SM utilization is a
/// function of the per-GPU workload intensity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum UtilizationModel {
    /// Constant utilization from [`madmax_hw::Utilization::compute`].
    #[default]
    Constant,
    /// Utilization saturates with per-device work per layer:
    /// `u = max_util * x / (x + half_sat)` where `x` is per-device GFLOPs
    /// per layer invocation. Models small-batch launch/SM-occupancy losses.
    WorkloadDependent {
        /// Asymptotic utilization at large per-layer workloads.
        max_util: f64,
        /// Per-layer GFLOPs at which utilization reaches half of max.
        half_saturation_gflops: f64,
    },
}

impl UtilizationModel {
    /// The default parameters used for the ViT MFU validation (Fig. 8).
    pub fn vit_default() -> Self {
        UtilizationModel::WorkloadDependent {
            max_util: 0.62,
            half_saturation_gflops: 1.5,
        }
    }

    /// Effective utilization for a layer invocation of `flops` on a device
    /// whose constant factor is `base`.
    pub fn utilization(&self, base: f64, flops: FlopCount) -> f64 {
        match *self {
            UtilizationModel::Constant => base,
            UtilizationModel::WorkloadDependent {
                max_util,
                half_saturation_gflops,
            } => {
                let x = flops.as_gflops();
                max_util * x / (x + half_saturation_gflops)
            }
        }
    }
}

/// Forward FLOPs one device executes for one instance of `group`.
///
/// Under the balanced-work assumption this is `local_batch` x the
/// per-sample FLOPs for *every* strategy: data parallelism splits samples,
/// tensor parallelism splits each matmul over a proportionally larger
/// group batch — the two factors cancel.
pub fn device_flops_fwd(
    group: &LayerGroup,
    model: &ModelArch,
    _cluster: &ClusterSpec,
    _strategy: &HierStrategy,
    local_batch: f64,
) -> FlopCount {
    let per_sample = group.kind.flops_fwd_per_sample(model.context_length);
    per_sample * local_batch
}

/// Execution time of a compute block:
/// `flops / (peak_flops(dtype) * utilization)`.
pub fn compute_time(
    flops: FlopCount,
    model: &ModelArch,
    cluster: &ClusterSpec,
    util_model: &UtilizationModel,
) -> Seconds {
    if flops.is_zero() {
        return Seconds::ZERO;
    }
    let peak = cluster.device.peak.rate(model.compute_dtype);
    let util = util_model.utilization(cluster.utilization.compute, flops);
    flops / (peak * util)
}

/// HBM bytes one device touches for one instance of an embedding layer.
///
/// Sharded tables serve lookups for the whole global batch over the local
/// shard; replicated tables serve the local batch over all tables — both
/// equal `global_batch * lookup_bytes / devices` under the paper's
/// even-sharding assumption.
pub fn device_lookup_bytes(
    group: &LayerGroup,
    model: &ModelArch,
    cluster: &ClusterSpec,
) -> ByteCount {
    let per_sample = group.kind.lookup_bytes_per_sample(model.context_length);
    per_sample * (model.global_batch as f64 / cluster.total_devices() as f64)
}

/// Lookup time of an embedding bag:
/// `lookup_bytes_per_gpu / (hbm_bw * hbm_utilization)`.
pub fn lookup_time(bytes: ByteCount, cluster: &ClusterSpec) -> Seconds {
    if bytes.is_zero() {
        return Seconds::ZERO;
    }
    bytes / (cluster.device.hbm_bw * cluster.utilization.hbm)
}

/// Optimizer-step time: the update streams parameters, gradients, and
/// optimizer state through HBM once (read + write ~ 3 passes over the
/// local parameter bytes).
pub fn optimizer_time(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> Seconds {
    if !workload.has_backward() {
        return Seconds::ZERO;
    }
    let mut bytes = 0.0;
    for group in &model.groups {
        if !workload.trains(group.class) {
            continue;
        }
        // Sparse embedding updates are fused with the backward gradient
        // scatter (already a trace op); counting them here would double
        // count the same HBM traffic.
        if group.kind.is_memory_bound() {
            continue;
        }
        let shard = plan.strategy_for(group.class).param_shard_factor(cluster);
        let opt = plan.options.optimizer_for(group.class);
        let p =
            madmax_parallel::comm::instance_param_bytes(group, model).value() * group.repeat as f64;
        let state = opt.state_bytes(group.kind.params(), &group.kind) * group.repeat as f64;
        bytes += 3.0 * (p + state) / shard;
    }
    lookup_time(ByteCount::new(bytes), cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::{LayerClass, ModelId};
    use madmax_parallel::Strategy;

    #[test]
    fn backward_factors() {
        assert_eq!(backward_flops_factor(false), 2.0);
        assert_eq!(backward_flops_factor(true), 3.0);
    }

    #[test]
    fn compute_time_matches_equation() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let t = compute_time(
            FlopCount::from_gflops(109.2),
            &model,
            &sys,
            &UtilizationModel::Constant,
        );
        // 109.2 GF / (156 TF * 0.7) = 1.0 ms.
        assert!((t.as_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tp_and_ddp_share_device_flops() {
        // TP shards each matmul but serves the whole TP group's batch:
        // per-device FLOPs match data parallelism under balanced work.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let top = model.groups.iter().find(|g| g.name == "top_mlp").unwrap();
        let flat_tp = HierStrategy::flat(Strategy::Tp);
        let ddp = HierStrategy::flat(Strategy::Ddp);
        let f_tp = device_flops_fwd(top, &model, &sys, &flat_tp, 512.0);
        let f_ddp = device_flops_fwd(top, &model, &sys, &ddp, 512.0);
        assert!((f_ddp.value() / f_tp.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dlrm_a_lookup_time_near_nine_ms() {
        // 64K x 22.61 MB / 128 GPUs / (1.555 TB/s * 0.8) = ~9.1 ms.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let emb = model
            .groups
            .iter()
            .find(|g| g.class == LayerClass::Embedding)
            .unwrap();
        let bytes = device_lookup_bytes(emb, &model, &sys);
        assert!((bytes.as_gib() - 10.77).abs() < 0.3, "{}", bytes.as_gib());
        let t = lookup_time(bytes, &sys);
        assert!((t.as_ms() - 9.3).abs() < 0.5, "{}", t.as_ms());
    }

    #[test]
    fn workload_dependent_utilization_saturates() {
        let m = UtilizationModel::vit_default();
        let small = m.utilization(0.7, FlopCount::from_gflops(0.1));
        let large = m.utilization(0.7, FlopCount::from_gflops(100.0));
        assert!(small < 0.1);
        assert!(large > 0.6);
        assert!(large <= 0.62);
        // Monotone in workload.
        let mid = m.utilization(0.7, FlopCount::from_gflops(1.5));
        assert!(small < mid && mid < large);
        assert!((mid - 0.31).abs() < 1e-9, "half saturation");
    }

    #[test]
    fn optimizer_time_zero_for_inference() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = madmax_parallel::Plan::fsdp_baseline(&model);
        assert_eq!(
            optimizer_time(&model, &sys, &plan, &Workload::inference()),
            Seconds::ZERO
        );
        let t = optimizer_time(&model, &sys, &plan, &Workload::pretrain());
        assert!(t.as_ms() > 0.0 && t.as_ms() < 10.0, "{}", t.as_ms());
    }
}
