//! # madmax-core
//!
//! The MAD-Max distributed ML performance model (Hsia et al., ISCA 2024):
//! given a model architecture, a distributed system, a task, and a
//! hierarchical parallelization plan, it generates per-device execution
//! traces (compute + communication streams with data dependencies), replays
//! them on a two-stream overlap simulator, and reports throughput,
//! serialized/overlapped execution, exposed communication, and per-
//! collective breakdowns (Section IV of the paper).
//!
//! The unified front door to the performance model is
//! `madmax_engine::Scenario`, which dispatches between this crate's flat
//! engine ([`run_flat`]) and `madmax-pipeline`'s stage engine. The
//! `validation` module holds the paper's Table I / Fig. 7-9 reference
//! experiments.
//!
//! # The two-phase engine: price, then assemble
//!
//! Trace construction is split into a **pricing** phase and an
//! **assembly** phase so design-space searches never pay for the same
//! cost twice:
//!
//! 1. *Pricing* ([`costs::CostTable`]) evaluates every per-(layer-group,
//!    [`madmax_parallel::HierStrategy`]) compute duration and collective
//!    cost once, for a fixed `(model, cluster, task, options)` context.
//! 2. *Assembly* ([`costs::CostTable::assemble_into`]) walks the model in
//!    execution order and composes cached costs into a [`Trace`] —
//!    allocation-free on the hot path: op names are structured
//!    [`trace::OpName`]s sharing `Arc<str>` labels, dependency lists store
//!    up to two entries inline ([`trace::Deps`]), and the trace arena,
//!    schedule, and stream-slot table ([`sim::EngineScratch`]) are
//!    recycled across candidates.
//!
//! **CostTable sharing contract**: `madmax-dse` builds one table per
//! search (`CostTable::ensure_plan` for every candidate, before spawning
//! workers) and shares it read-only (`&CostTable` is `Sync`) across the
//! worker pool; each worker owns an `EngineScratch` and evaluates
//! candidates through [`run_flat_cached`]. A table must only be used with
//! plans whose pricing-relevant options (`activation_checkpointing`,
//! `collective_dtype`) match its context — this is asserted — and
//! produces reports byte-identical to the one-shot [`run_flat`] path.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod collective;
pub mod compute;
pub mod config;
pub mod costs;
pub mod counters;
pub mod metrics;
pub mod perf;
pub mod prof;
pub mod sim;
pub mod steady;
pub mod trace;
pub mod validation;

pub use collective::{CollectiveModel, FlatWorstLink, HierarchicalNccl};
pub use compute::UtilizationModel;
pub use costs::{CostTable, PricedComm, StrategyCosts};
pub use counters::{CacheCounters, CacheStats};
pub use metrics::{serve_stats_from, IterationReport, ReportScratch, ServeStats};
pub use perf::{build_flat_trace, run_flat, run_flat_cached, run_flat_default};
pub use sim::{
    debug_check_schedule, merged, merged_into, schedule, schedule_into, single_difference_measure,
    EngineScratch, OpWindow, ReportMemo, Schedule, StreamTable,
};
pub use steady::{
    affine_series_units, decode_compute_duration, evaluate_serve_prefix, first_series_crossing,
    grid_seconds, grid_units, grid_units_round, quantize, ServeDims, SteadyScratch,
};
pub use trace::{
    intern_label, Deps, OpId, OpKind, OpName, PassDir, Phase, StreamId, Trace, TraceOp,
};

#[cfg(test)]
mod cross_module_tests {
    use crate::perf::run_flat_default;
    use crate::{IterationReport, Schedule, Trace, UtilizationModel};
    use madmax_hw::{catalog, ClusterSpec};
    use madmax_model::{ModelArch, ModelId};
    use madmax_parallel::{Plan, PlanError, Workload};

    fn simulate(
        model: &ModelArch,
        cluster: &ClusterSpec,
        plan: &Plan,
        workload: Workload,
    ) -> Result<IterationReport, PlanError> {
        run_flat_default(model, cluster, plan, &workload)
    }

    fn run_with_trace(
        model: &ModelArch,
        cluster: &ClusterSpec,
        plan: &Plan,
        workload: Workload,
    ) -> Result<(IterationReport, Trace, Schedule), PlanError> {
        crate::run_flat(
            model,
            cluster,
            plan,
            &workload,
            &crate::HierarchicalNccl,
            UtilizationModel::Constant,
        )
    }

    #[test]
    fn report_serde_round_trip() {
        let model = ModelId::DlrmB.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let r = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let js = serde_json::to_string(&r).unwrap();
        let back: crate::IterationReport = serde_json::from_str(&js).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn trace_serde_round_trip() {
        let model = ModelId::DlrmB.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let (_, trace, _) = run_with_trace(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let js = serde_json::to_string(&trace).unwrap();
        let back: crate::Trace = serde_json::from_str(&js).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn faster_compute_shrinks_gemm_only() {
        use madmax_hw::DeviceScaling;
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let fast = sys.scaled(&DeviceScaling::compute_only(10.0));
        let plan = Plan::fsdp_baseline(&model);
        let base = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let scaled = simulate(&model, &fast, &plan, Workload::pretrain()).unwrap();
        assert!((scaled.gemm_time.as_secs() - base.gemm_time.as_secs() / 10.0).abs() < 1e-9);
        assert_eq!(scaled.lookup_time, base.lookup_time);
        assert_eq!(scaled.comm_time, base.comm_time);
    }

    #[test]
    fn faster_hbm_shrinks_lookups_only() {
        use madmax_hw::DeviceScaling;
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let fast = sys.scaled(&DeviceScaling::mem_bw_only(10.0));
        let plan = Plan::fsdp_baseline(&model);
        let base = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let scaled = simulate(&model, &fast, &plan, Workload::pretrain()).unwrap();
        assert!(scaled.lookup_time < base.lookup_time);
        assert_eq!(scaled.gemm_time, base.gemm_time);
    }

    #[test]
    fn bigger_batch_amortizes_fixed_communication() {
        // Doubling the global batch less than doubles iteration time for
        // FSDP workloads (parameter gathers are batch-independent).
        let mut model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let r1 = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        model.global_batch *= 2;
        let r2 = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        assert!(r2.iteration_time > r1.iteration_time);
        assert!(r2.iteration_time.as_secs() < 2.0 * r1.iteration_time.as_secs());
        assert!(r2.samples_per_sec() > r1.samples_per_sec());
    }

    #[test]
    fn inference_runs_forward_collectives_only() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let train = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let infer = simulate(&model, &sys, &plan, Workload::inference()).unwrap();
        use madmax_parallel::CollectiveKind;
        // No gradient reduce-scatter at inference.
        assert!(!infer
            .comm_by_collective
            .contains_key(&CollectiveKind::ReduceScatter));
        assert!(train
            .comm_by_collective
            .contains_key(&CollectiveKind::ReduceScatter));
        // Forward All2All halves (no gradient exchange).
        let a2a_t = train.comm_by_collective[&CollectiveKind::AllToAll];
        let a2a_i = infer.comm_by_collective[&CollectiveKind::AllToAll];
        assert!((a2a_t.as_secs() / a2a_i.as_secs() - 2.0).abs() < 1e-6);
    }
}
