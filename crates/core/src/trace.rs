//! Execution-trace representation: the "detailed record capturing the
//! sequence and duration of both compute and communication events (i.e.,
//! streams) on each device" (Section IV-A).
//!
//! Because execution is SPMD, MAD-Max builds the trace of one
//! representative device.

use serde::{Deserialize, Serialize};

use madmax_hw::units::Seconds;
use madmax_model::LayerClass;
use madmax_parallel::CollectiveKind;

/// Hardware queue an op occupies.
///
/// Flat SPMD traces use the first three variants (one representative
/// device). Pipeline-parallel traces are *multi-stream*: each stage `s`
/// contributes its own compute and communication streams, representing one
/// device of that stage's group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StreamId {
    /// SMs + HBM: GEMMs, embedding lookups, optimizer updates.
    Compute,
    /// Blocking/prefetchable collectives (the "communication stream").
    Comm,
    /// Weight-gradient collectives (FSDP/DDP issue these on a separate
    /// lower-priority channel so they drain behind blocking traffic).
    GradComm,
    /// Compute stream of one pipeline stage.
    StageCompute(u16),
    /// Forward communication stream of one pipeline stage (intra-stage
    /// blocking collectives and activation P2P sends).
    StageComm(u16),
    /// Backward/deferred communication stream of one pipeline stage
    /// (gradient P2P sends and weight-gradient collectives), mirroring the
    /// flat trace's `Comm`/`GradComm` split so backward traffic does not
    /// serialize behind activation transfers.
    StageGradComm(u16),
}

impl StreamId {
    /// Whether this stream moves bytes between devices.
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            StreamId::Comm
                | StreamId::GradComm
                | StreamId::StageComm(_)
                | StreamId::StageGradComm(_)
        )
    }

    /// Whether this stream occupies the device's compute resources.
    pub fn is_compute(self) -> bool {
        matches!(self, StreamId::Compute | StreamId::StageCompute(_))
    }

    /// The pipeline stage this stream belongs to, if any.
    pub fn stage(self) -> Option<u16> {
        match self {
            StreamId::StageCompute(s) | StreamId::StageComm(s) | StreamId::StageGradComm(s) => {
                Some(s)
            }
            _ => None,
        }
    }
}

/// Iteration phase an op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward pass (gradient flow).
    Backward,
    /// Parameter update.
    Update,
}

/// What an op does, for breakdown accounting (Figs. 4, 7, 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Matrix compute (MLP/transformer/MoE/interaction).
    Gemm {
        /// The layer class executing.
        class: LayerClass,
    },
    /// HBM-bound embedding lookup or gradient scatter.
    Lookup,
    /// A communication collective.
    Collective {
        /// Which primitive.
        kind: CollectiveKind,
    },
    /// Optimizer step.
    Optimizer,
}

/// Index of an op within its [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub usize);

/// One event on a stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceOp {
    /// Display name, e.g. `"fwd.embedding_tables.a2a"`.
    pub name: String,
    /// Queue this op occupies.
    pub stream: StreamId,
    /// Category for breakdowns.
    pub kind: OpKind,
    /// Iteration phase.
    pub phase: Phase,
    /// Modeled execution time.
    pub duration: Seconds,
    /// Ops that must finish before this one starts (data dependencies).
    pub deps: Vec<OpId>,
}

/// A per-device execution trace: ops in issue order (which is also a
/// topological order of the dependency graph).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if any dependency refers to a later op (the trace must stay
    /// topologically ordered).
    pub fn push(&mut self, op: TraceOp) -> OpId {
        let id = OpId(self.ops.len());
        assert!(
            op.deps.iter().all(|d| d.0 < id.0),
            "dependency cycle: op {} depends on a later op",
            op.name
        );
        self.ops.push(op);
        id
    }

    /// All ops in issue order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Sum of all op durations: the paper's *serialized* execution time.
    pub fn serialized_time(&self) -> Seconds {
        self.ops.iter().map(|o| o.duration).sum()
    }

    /// Ops on a given stream.
    pub fn stream_ops(&self, stream: StreamId) -> impl Iterator<Item = (OpId, &TraceOp)> {
        self.ops
            .iter()
            .enumerate()
            .filter(move |(_, o)| o.stream == stream)
            .map(|(i, o)| (OpId(i), o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, stream: StreamId, ms: f64, deps: Vec<OpId>) -> TraceOp {
        TraceOp {
            name: name.to_owned(),
            stream,
            kind: OpKind::Lookup,
            phase: Phase::Forward,
            duration: Seconds::from_ms(ms),
            deps,
        }
    }

    #[test]
    fn push_returns_sequential_ids() {
        let mut t = Trace::new();
        let a = t.push(op("a", StreamId::Compute, 1.0, vec![]));
        let b = t.push(op("b", StreamId::Comm, 2.0, vec![a]));
        assert_eq!(a, OpId(0));
        assert_eq!(b, OpId(1));
        assert_eq!(t.len(), 2);
        assert!((t.serialized_time().as_ms() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn forward_dependency_rejected() {
        let mut t = Trace::new();
        t.push(op("bad", StreamId::Compute, 1.0, vec![OpId(5)]));
    }

    #[test]
    fn stream_filtering() {
        let mut t = Trace::new();
        t.push(op("a", StreamId::Compute, 1.0, vec![]));
        t.push(op("b", StreamId::Comm, 1.0, vec![]));
        t.push(op("c", StreamId::Compute, 1.0, vec![]));
        assert_eq!(t.stream_ops(StreamId::Compute).count(), 2);
        assert_eq!(t.stream_ops(StreamId::Comm).count(), 1);
        assert_eq!(t.stream_ops(StreamId::GradComm).count(), 0);
    }

    #[test]
    fn comm_stream_classification() {
        assert!(!StreamId::Compute.is_comm());
        assert!(StreamId::Comm.is_comm());
        assert!(StreamId::GradComm.is_comm());
    }
}
