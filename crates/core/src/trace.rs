//! Execution-trace representation: the "detailed record capturing the
//! sequence and duration of both compute and communication events (i.e.,
//! streams) on each device" (Section IV-A).
//!
//! Because execution is SPMD, MAD-Max builds the trace of one
//! representative device.
//!
//! The trace types are built for the design-space-exploration hot path,
//! where millions of ops are created and thrown away per search:
//!
//! - [`OpName`] is a structured name (shared-label handle or fully inline
//!   stage coordinates) rendered to a string only for display/serde, so
//!   naming an op never allocates;
//! - [`Deps`] stores up to two dependencies inline (almost every op has at
//!   most two) and spills to the heap only for join points like the
//!   feature-interaction and optimizer ops;
//! - [`Trace::clear`] recycles the op arena so a worker thread reuses one
//!   allocation across all candidates it evaluates.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use madmax_hw::units::Seconds;
use madmax_model::LayerClass;
use madmax_parallel::CollectiveKind;

/// Hardware queue an op occupies.
///
/// Flat SPMD traces use the first three variants (one representative
/// device). Pipeline-parallel traces are *multi-stream*: each stage `s`
/// contributes its own compute and communication streams, representing one
/// device of that stage's group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StreamId {
    /// SMs + HBM: GEMMs, embedding lookups, optimizer updates.
    Compute,
    /// Blocking/prefetchable collectives (the "communication stream").
    Comm,
    /// Weight-gradient collectives (FSDP/DDP issue these on a separate
    /// lower-priority channel so they drain behind blocking traffic).
    GradComm,
    /// Compute stream of one pipeline stage.
    StageCompute(u16),
    /// Forward communication stream of one pipeline stage (intra-stage
    /// blocking collectives and activation P2P sends).
    StageComm(u16),
    /// Backward/deferred communication stream of one pipeline stage
    /// (gradient P2P sends and weight-gradient collectives), mirroring the
    /// flat trace's `Comm`/`GradComm` split so backward traffic does not
    /// serialize behind activation transfers.
    StageGradComm(u16),
}

impl StreamId {
    /// Whether this stream moves bytes between devices.
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            StreamId::Comm
                | StreamId::GradComm
                | StreamId::StageComm(_)
                | StreamId::StageGradComm(_)
        )
    }

    /// Whether this stream occupies the device's compute resources.
    pub fn is_compute(self) -> bool {
        matches!(self, StreamId::Compute | StreamId::StageCompute(_))
    }

    /// The pipeline stage this stream belongs to, if any.
    pub fn stage(self) -> Option<u16> {
        match self {
            StreamId::StageCompute(s) | StreamId::StageComm(s) | StreamId::StageGradComm(s) => {
                Some(s)
            }
            _ => None,
        }
    }

    /// Dense index of this stream for slot-table lookups: the three flat
    /// streams occupy slots 0-2 and each pipeline stage's three streams
    /// follow as a contiguous triple, so the scheduler can track per-stream
    /// state in a plain `Vec` instead of an ordered map.
    pub fn slot(self) -> usize {
        match self {
            StreamId::Compute => 0,
            StreamId::Comm => 1,
            StreamId::GradComm => 2,
            StreamId::StageCompute(s) => 3 + 3 * s as usize,
            StreamId::StageComm(s) => 4 + 3 * s as usize,
            StreamId::StageGradComm(s) => 5 + 3 * s as usize,
        }
    }
}

/// Iteration phase an op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass (training forward, or the serve prefill).
    Forward,
    /// Backward pass (gradient flow).
    Backward,
    /// Parameter update.
    Update,
    /// Autoregressive decode step of a serve workload.
    Decode,
}

/// What an op does, for breakdown accounting (Figs. 4, 7, 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Matrix compute (MLP/transformer/MoE/interaction).
    Gemm {
        /// The layer class executing.
        class: LayerClass,
    },
    /// HBM-bound embedding lookup or gradient scatter.
    Lookup,
    /// A communication collective.
    Collective {
        /// Which primitive.
        kind: CollectiveKind,
    },
    /// Optimizer step.
    Optimizer,
}

/// Index of an op within its [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub usize);

/// Direction tag of a flat-trace or stage-trace pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassDir {
    /// Forward-pass op (`fwd` prefix).
    Fwd,
    /// Backward-pass op (`bwd` prefix).
    Bwd,
    /// Decode-step op of a serve trace (`dec` prefix); the stage-trace
    /// microbatch index then counts positions in the decode stream.
    Dec,
}

impl std::fmt::Display for PassDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PassDir::Fwd => "fwd",
            PassDir::Bwd => "bwd",
            PassDir::Dec => "dec",
        })
    }
}

/// Structured op name, rendered to a display string on demand.
///
/// Creating an `OpName` never allocates — or touches a refcount — on the
/// evaluation hot path: flat ops copy an interned [`intern_label`]
/// `&'static str` label (priced once per search by the cost table), and
/// stage ops carry their coordinates inline. The rendered
/// forms reproduce the historical string names exactly, e.g.
/// `fwd.embedding_tables.a2a`, `bwd[3].blocks.ag_bwd`, `stage0.fwd[2]`,
/// `update.optimizer`.
///
/// Serialization uses the rendered string (see [`std::fmt::Display`] /
/// [`std::str::FromStr`]); unrecognized strings deserialize as
/// [`OpName::Custom`], which also serves ad-hoc traces built by hand.
#[derive(Debug, Clone, PartialEq)]
pub enum OpName {
    /// Flat-trace op: `"{dir}[{inst}].{label}"` (the `[{inst}]` part is
    /// omitted for single-instance layer groups). The label covers both
    /// compute ops (`"bottom_mlp"`, `"embedding_tables.lookup"`) and
    /// collectives (`"top_mlp.ag"`).
    Flat {
        /// Pass direction prefix.
        dir: PassDir,
        /// Layer-group instance, for groups with `repeat > 1`.
        inst: Option<u32>,
        /// Interned display label.
        label: &'static str,
    },
    /// Flat-trace decode-step op: `"dec[{step}].{label}"` (or
    /// `"dec[{step}][{inst}].{label}"` for groups with `repeat > 1`). One
    /// name per (decode step, layer instance) pair of a serve trace.
    DecodeFlat {
        /// Decode step index (token position in the output stream).
        step: u32,
        /// Layer-group instance, for groups with `repeat > 1`.
        inst: Option<u32>,
        /// Interned display label.
        label: &'static str,
    },
    /// The flat trace's single optimizer step: `"update.optimizer"`.
    UpdateOptimizer,
    /// Once-per-iteration stage parameter collective:
    /// `"stage{s}.param.{kind}"`.
    StageParam {
        /// Pipeline stage.
        stage: u16,
        /// Collective primitive.
        kind: CollectiveKind,
    },
    /// Stage compute of one microbatch: `"stage{s}.{dir}[{mb}]"`.
    StagePass {
        /// Pipeline stage.
        stage: u16,
        /// Pass direction.
        dir: PassDir,
        /// Microbatch index.
        mb: u32,
    },
    /// Blocking stage collective of one microbatch:
    /// `"stage{s}.{dir}[{mb}].{kind}"`.
    StagePassColl {
        /// Pipeline stage.
        stage: u16,
        /// Pass direction.
        dir: PassDir,
        /// Microbatch index.
        mb: u32,
        /// Collective primitive.
        kind: CollectiveKind,
    },
    /// Activation send to the next stage: `"stage{s}.send_act[{mb}]"`.
    StageSendAct {
        /// Pipeline stage.
        stage: u16,
        /// Microbatch index.
        mb: u32,
    },
    /// Decode-stream activation send to the next stage:
    /// `"stage{s}.send_tok[{mb}]"` (`mb` counts positions in the decode
    /// stream, so the name never collides with a prefill send).
    StageSendTok {
        /// Pipeline stage.
        stage: u16,
        /// Decode-stream unit index.
        mb: u32,
    },
    /// Gradient send to the previous stage: `"stage{s}.send_grad[{mb}]"`.
    StageSendGrad {
        /// Pipeline stage.
        stage: u16,
        /// Microbatch index.
        mb: u32,
    },
    /// Deferred stage weight-gradient collective:
    /// `"stage{s}.grad.{kind}"`.
    StageGrad {
        /// Pipeline stage.
        stage: u16,
        /// Collective primitive.
        kind: CollectiveKind,
    },
    /// Per-stage optimizer step: `"stage{s}.optimizer"`.
    StageOptimizer {
        /// Pipeline stage.
        stage: u16,
    },
    /// Free-form name (hand-built traces, unrecognized deserialized
    /// names).
    Custom(Arc<str>),
}

/// Interns `s` into the global label registry, returning the canonical
/// `&'static str` the flat [`OpName`] variants carry. Labels are priced
/// once per search (layer-group and collective names), so the leaked set
/// is bounded by the distinct label strings of the process; interning the
/// same string twice returns the same reference.
///
/// Parsing rendered op names ([`OpName`]'s `FromStr`/deserialization)
/// also interns the labels it recovers: feeding unbounded *distinct*
/// labels from untrusted serialized traces would grow the registry for
/// the process lifetime. Engine-generated traces only ever carry the
/// bounded label set priced from the model, so this is a non-issue on
/// every in-tree path.
pub fn intern_label(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static LABELS: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = LABELS
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("label registry poisoned");
    if let Some(&interned) = set.get(s) {
        return interned;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

impl OpName {
    /// A flat-trace name with an interned label.
    pub fn flat(dir: PassDir, inst: Option<u32>, label: &'static str) -> Self {
        OpName::Flat { dir, inst, label }
    }

    /// A flat-trace decode-step name with an interned label.
    pub fn decode(step: u32, inst: Option<u32>, label: &'static str) -> Self {
        OpName::DecodeFlat { step, inst, label }
    }

    /// A free-form name (allocates; intended for hand-built traces).
    pub fn custom(name: impl AsRef<str>) -> Self {
        OpName::Custom(Arc::from(name.as_ref()))
    }
}

impl From<String> for OpName {
    fn from(s: String) -> Self {
        OpName::Custom(Arc::from(s.as_str()))
    }
}

impl From<&str> for OpName {
    fn from(s: &str) -> Self {
        OpName::Custom(Arc::from(s))
    }
}

impl std::fmt::Display for OpName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpName::Flat {
                dir,
                inst: None,
                label,
            } => write!(f, "{dir}.{label}"),
            OpName::Flat {
                dir,
                inst: Some(i),
                label,
            } => write!(f, "{dir}[{i}].{label}"),
            OpName::DecodeFlat {
                step,
                inst: None,
                label,
            } => write!(f, "dec[{step}].{label}"),
            OpName::DecodeFlat {
                step,
                inst: Some(i),
                label,
            } => write!(f, "dec[{step}][{i}].{label}"),
            OpName::UpdateOptimizer => f.write_str("update.optimizer"),
            OpName::StageParam { stage, kind } => write!(f, "stage{stage}.param.{kind}"),
            OpName::StagePass { stage, dir, mb } => write!(f, "stage{stage}.{dir}[{mb}]"),
            OpName::StagePassColl {
                stage,
                dir,
                mb,
                kind,
            } => write!(f, "stage{stage}.{dir}[{mb}].{kind}"),
            OpName::StageSendAct { stage, mb } => write!(f, "stage{stage}.send_act[{mb}]"),
            OpName::StageSendTok { stage, mb } => write!(f, "stage{stage}.send_tok[{mb}]"),
            OpName::StageSendGrad { stage, mb } => write!(f, "stage{stage}.send_grad[{mb}]"),
            OpName::StageGrad { stage, kind } => write!(f, "stage{stage}.grad.{kind}"),
            OpName::StageOptimizer { stage } => write!(f, "stage{stage}.optimizer"),
            OpName::Custom(s) => f.write_str(s),
        }
    }
}

/// Splits `"{head}[{n}]{rest}"` into `(n, rest)` when `s` starts with an
/// index in brackets.
fn parse_index(s: &str) -> Option<(u32, &str)> {
    let inner = s.strip_prefix('[')?;
    let close = inner.find(']')?;
    let n: u32 = inner[..close].parse().ok()?;
    Some((n, &inner[close + 1..]))
}

fn parse_stage_name(s: &str) -> Option<OpName> {
    let rest = s.strip_prefix("stage")?;
    let digits = rest.find(|c: char| !c.is_ascii_digit())?;
    let stage: u16 = rest[..digits].parse().ok()?;
    let rest = rest[digits..].strip_prefix('.')?;
    if rest == "optimizer" {
        return Some(OpName::StageOptimizer { stage });
    }
    if let Some(kind) = rest.strip_prefix("param.") {
        return Some(OpName::StageParam {
            stage,
            kind: kind.parse().ok()?,
        });
    }
    if let Some(kind) = rest.strip_prefix("grad.") {
        return Some(OpName::StageGrad {
            stage,
            kind: kind.parse().ok()?,
        });
    }
    type SendCtor = fn(u16, u32) -> OpName;
    let sends: [(&str, SendCtor); 3] = [
        ("send_act", |stage, mb| OpName::StageSendAct { stage, mb }),
        ("send_tok", |stage, mb| OpName::StageSendTok { stage, mb }),
        ("send_grad", |stage, mb| OpName::StageSendGrad { stage, mb }),
    ];
    for (prefix, ctor) in sends {
        if let Some(tail) = rest.strip_prefix(prefix) {
            let (mb, tail) = parse_index(tail)?;
            if !tail.is_empty() {
                return None;
            }
            return Some(ctor(stage, mb));
        }
    }
    for (prefix, dir) in [
        ("fwd", PassDir::Fwd),
        ("bwd", PassDir::Bwd),
        ("dec", PassDir::Dec),
    ] {
        if let Some(tail) = rest.strip_prefix(prefix) {
            let (mb, tail) = parse_index(tail)?;
            if tail.is_empty() {
                return Some(OpName::StagePass { stage, dir, mb });
            }
            let kind = tail.strip_prefix('.')?.parse().ok()?;
            return Some(OpName::StagePassColl {
                stage,
                dir,
                mb,
                kind,
            });
        }
    }
    None
}

fn parse_decode_name(s: &str) -> Option<OpName> {
    let tail = s.strip_prefix("dec")?;
    let (step, tail) = parse_index(tail)?;
    let (inst, tail) = match parse_index(tail) {
        Some((i, t)) => (Some(i), t),
        None => (None, tail),
    };
    let label = tail.strip_prefix('.')?;
    if label.is_empty() {
        return None;
    }
    Some(OpName::DecodeFlat {
        step,
        inst,
        label: intern_label(label),
    })
}

fn parse_flat_name(s: &str) -> Option<OpName> {
    for (prefix, dir) in [("fwd", PassDir::Fwd), ("bwd", PassDir::Bwd)] {
        if let Some(tail) = s.strip_prefix(prefix) {
            let (inst, tail) = match parse_index(tail) {
                Some((i, t)) => (Some(i), t),
                None => (None, tail),
            };
            let label = tail.strip_prefix('.')?;
            if label.is_empty() {
                return None;
            }
            return Some(OpName::Flat {
                dir,
                inst,
                label: intern_label(label),
            });
        }
    }
    None
}

impl std::str::FromStr for OpName {
    type Err = std::convert::Infallible;

    /// Parses a rendered op name back into its structured form; anything
    /// unrecognized becomes [`OpName::Custom`], so parsing is total.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "update.optimizer" {
            return Ok(OpName::UpdateOptimizer);
        }
        Ok(parse_stage_name(s)
            .or_else(|| parse_decode_name(s))
            .or_else(|| parse_flat_name(s))
            .unwrap_or_else(|| OpName::custom(s)))
    }
}

impl Serialize for OpName {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for OpName {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => Ok(s.parse().expect("OpName parsing is total")),
            _ => Err(serde::Error::msg("expected string op name")),
        }
    }
}

/// Maximum dependencies stored without a heap allocation.
pub const INLINE_DEPS: usize = 2;

/// Dependency list of one op: up to [`INLINE_DEPS`] ids inline, spilling
/// to a `Vec` only for wide join points (feature interaction consuming
/// many embedding outputs, the optimizer consuming every gradient).
///
/// Equality compares the dependency *list* ([`Deps::as_slice`]), not the
/// representation: an inline list equals its spilled twin, and stale
/// inactive inline slots are ignored.
#[derive(Debug, Clone)]
pub enum Deps {
    /// The common case, stored inline.
    Inline {
        /// Number of valid entries in `ids`.
        len: u8,
        /// Dependency ids (`..len` are valid).
        ids: [OpId; INLINE_DEPS],
    },
    /// More than [`INLINE_DEPS`] dependencies.
    Spilled(Vec<OpId>),
}

impl Default for Deps {
    fn default() -> Self {
        Deps::Inline {
            len: 0,
            ids: [OpId(0); INLINE_DEPS],
        }
    }
}

impl Deps {
    /// No dependencies.
    pub fn none() -> Self {
        Deps::default()
    }

    /// A single dependency.
    pub fn one(id: OpId) -> Self {
        Deps::Inline {
            len: 1,
            ids: [id, OpId(0)],
        }
    }

    /// The dependencies as a slice.
    pub fn as_slice(&self) -> &[OpId] {
        match self {
            Deps::Inline { len, ids } => &ids[..*len as usize],
            Deps::Spilled(v) => v,
        }
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the dependency ids.
    pub fn iter(&self) -> std::slice::Iter<'_, OpId> {
        self.as_slice().iter()
    }

    /// Whether `id` is a dependency.
    pub fn contains(&self, id: &OpId) -> bool {
        self.as_slice().contains(id)
    }

    /// Inserts a dependency at its sorted position, spilling to the heap
    /// past [`INLINE_DEPS`].
    ///
    /// Insertion (rather than appending) keeps a sorted list sorted, so a
    /// push after [`Deps::sort_dedup`] cannot silently break the sorted
    /// invariant the scheduler and verifier rely on. Duplicates are still
    /// allowed (they land adjacent); `sort_dedup` removes them. Ascending
    /// pushes — the builders' common case — insert at the tail, so this
    /// stays O(log n) + amortized O(1) for them.
    pub fn push(&mut self, id: OpId) {
        match self {
            Deps::Inline { len, ids } => {
                let n = *len as usize;
                if n < INLINE_DEPS {
                    let at = if n == 0 || ids[n - 1] <= id {
                        n // ascending push: plain append
                    } else {
                        ids[..n].partition_point(|&d| d <= id)
                    };
                    ids.copy_within(at..n, at + 1);
                    ids[at] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_DEPS + 2);
                    v.extend_from_slice(&ids[..]);
                    let at = v.partition_point(|&d| d <= id);
                    v.insert(at, id);
                    *self = Deps::Spilled(v);
                }
            }
            Deps::Spilled(v) => {
                if v.last().is_none_or(|&d| d <= id) {
                    v.push(id);
                } else {
                    let at = v.partition_point(|&d| d <= id);
                    v.insert(at, id);
                }
            }
        }
    }

    /// Removes all dependencies (keeps any spilled capacity).
    pub fn clear(&mut self) {
        match self {
            Deps::Inline { len, .. } => *len = 0,
            Deps::Spilled(v) => v.clear(),
        }
    }

    /// Appends every dependency of `other`.
    pub fn extend_from(&mut self, other: &Deps) {
        for &id in other.as_slice() {
            self.push(id);
        }
    }

    /// Sorts and deduplicates the list in place.
    pub fn sort_dedup(&mut self) {
        match self {
            Deps::Inline { len, ids } => {
                let n = *len as usize;
                ids[..n].sort_unstable();
                if n == 2 && ids[0] == ids[1] {
                    *len = 1;
                }
            }
            Deps::Spilled(v) => {
                v.sort_unstable();
                v.dedup();
            }
        }
    }
}

impl PartialEq for Deps {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<OpId>> for Deps {
    fn from(v: Vec<OpId>) -> Self {
        match v.as_slice() {
            [] => Deps::none(),
            [a] => Deps::one(*a),
            [a, b] => Deps::Inline {
                len: 2,
                ids: [*a, *b],
            },
            _ => Deps::Spilled(v),
        }
    }
}

impl FromIterator<OpId> for Deps {
    fn from_iter<I: IntoIterator<Item = OpId>>(iter: I) -> Self {
        let mut deps = Deps::none();
        for id in iter {
            deps.push(id);
        }
        deps
    }
}

impl<'a> IntoIterator for &'a Deps {
    type Item = &'a OpId;
    type IntoIter = std::slice::Iter<'a, OpId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq<Vec<OpId>> for Deps {
    fn eq(&self, other: &Vec<OpId>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Deps> for Vec<OpId> {
    fn eq(&self, other: &Deps) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Serialize for Deps {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl Deserialize for Deps {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let ids: Vec<OpId> = Deserialize::from_value(v)?;
        Ok(Deps::from(ids))
    }
}

/// One event on a stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceOp {
    /// Structured display name, e.g. `"fwd.embedding_tables.a2a"`.
    pub name: OpName,
    /// Queue this op occupies.
    pub stream: StreamId,
    /// Category for breakdowns.
    pub kind: OpKind,
    /// Iteration phase.
    pub phase: Phase,
    /// Modeled execution time.
    pub duration: Seconds,
    /// Ops that must finish before this one starts (data dependencies).
    pub deps: Deps,
}

/// A per-device execution trace: ops in issue order (which is also a
/// topological order of the dependency graph).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if any dependency refers to a later op (the trace must stay
    /// topologically ordered).
    pub fn push(&mut self, op: TraceOp) -> OpId {
        let id = OpId(self.ops.len());
        assert!(
            op.deps.iter().all(|d| d.0 < id.0),
            "dependency cycle: op {} depends on a later op",
            op.name
        );
        self.ops.push(op);
        id
    }

    /// Removes all ops, keeping the allocation for arena-style reuse
    /// across evaluation candidates.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// All ops in issue order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Sum of all op durations: the paper's *serialized* execution time.
    pub fn serialized_time(&self) -> Seconds {
        self.ops.iter().map(|o| o.duration).sum()
    }

    /// Applies `f` to every op duration from index `start` on. Used by
    /// the serve builders to round an assembled prefix onto the analytic
    /// grid (see [`crate::steady`]); durations are the only op field a
    /// builder may rewrite after the fact (names, streams, and deps are
    /// structural).
    pub fn map_durations_from(&mut self, start: usize, mut f: impl FnMut(Seconds) -> Seconds) {
        for op in &mut self.ops[start..] {
            op.duration = f(op.duration);
        }
    }

    /// Ops on a given stream.
    pub fn stream_ops(&self, stream: StreamId) -> impl Iterator<Item = (OpId, &TraceOp)> {
        self.ops
            .iter()
            .enumerate()
            .filter(move |(_, o)| o.stream == stream)
            .map(|(i, o)| (OpId(i), o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, stream: StreamId, ms: f64, deps: Vec<OpId>) -> TraceOp {
        TraceOp {
            name: OpName::custom(name),
            stream,
            kind: OpKind::Lookup,
            phase: Phase::Forward,
            duration: Seconds::from_ms(ms),
            deps: deps.into(),
        }
    }

    #[test]
    fn push_returns_sequential_ids() {
        let mut t = Trace::new();
        let a = t.push(op("a", StreamId::Compute, 1.0, vec![]));
        let b = t.push(op("b", StreamId::Comm, 2.0, vec![a]));
        assert_eq!(a, OpId(0));
        assert_eq!(b, OpId(1));
        assert_eq!(t.len(), 2);
        assert!((t.serialized_time().as_ms() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn forward_dependency_rejected() {
        let mut t = Trace::new();
        t.push(op("bad", StreamId::Compute, 1.0, vec![OpId(5)]));
    }

    #[test]
    fn stream_filtering() {
        let mut t = Trace::new();
        t.push(op("a", StreamId::Compute, 1.0, vec![]));
        t.push(op("b", StreamId::Comm, 1.0, vec![]));
        t.push(op("c", StreamId::Compute, 1.0, vec![]));
        assert_eq!(t.stream_ops(StreamId::Compute).count(), 2);
        assert_eq!(t.stream_ops(StreamId::Comm).count(), 1);
        assert_eq!(t.stream_ops(StreamId::GradComm).count(), 0);
    }

    #[test]
    fn comm_stream_classification() {
        assert!(!StreamId::Compute.is_comm());
        assert!(StreamId::Comm.is_comm());
        assert!(StreamId::GradComm.is_comm());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut t = Trace::new();
        for _ in 0..64 {
            t.push(op("x", StreamId::Compute, 1.0, vec![]));
        }
        let cap = t.ops.capacity();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.ops.capacity(), cap);
    }

    #[test]
    fn stream_slots_are_dense_and_unique() {
        let streams = [
            StreamId::Compute,
            StreamId::Comm,
            StreamId::GradComm,
            StreamId::StageCompute(0),
            StreamId::StageComm(0),
            StreamId::StageGradComm(0),
            StreamId::StageCompute(1),
            StreamId::StageComm(1),
            StreamId::StageGradComm(1),
        ];
        let slots: Vec<usize> = streams.iter().map(|s| s.slot()).collect();
        assert_eq!(slots, (0..streams.len()).collect::<Vec<_>>());
    }

    #[test]
    fn op_name_renders_exact_legacy_strings() {
        use madmax_parallel::CollectiveKind as Ck;
        assert_eq!(
            OpName::flat(PassDir::Fwd, None, "embedding_tables.a2a").to_string(),
            "fwd.embedding_tables.a2a"
        );
        assert_eq!(
            OpName::flat(PassDir::Bwd, Some(3), "blocks.ag_bwd").to_string(),
            "bwd[3].blocks.ag_bwd"
        );
        assert_eq!(OpName::UpdateOptimizer.to_string(), "update.optimizer");
        assert_eq!(
            OpName::decode(0, None, "transformer_blocks").to_string(),
            "dec[0].transformer_blocks"
        );
        assert_eq!(
            OpName::decode(31, Some(95), "transformer_blocks").to_string(),
            "dec[31][95].transformer_blocks"
        );
        assert_eq!(
            OpName::StageParam {
                stage: 0,
                kind: Ck::AllGather
            }
            .to_string(),
            "stage0.param.AllGather"
        );
        assert_eq!(
            OpName::StagePass {
                stage: 2,
                dir: PassDir::Fwd,
                mb: 7
            }
            .to_string(),
            "stage2.fwd[7]"
        );
        assert_eq!(
            OpName::StagePassColl {
                stage: 1,
                dir: PassDir::Bwd,
                mb: 0,
                kind: Ck::AllReduce
            }
            .to_string(),
            "stage1.bwd[0].AllReduce"
        );
        assert_eq!(
            OpName::StageSendAct { stage: 0, mb: 4 }.to_string(),
            "stage0.send_act[4]"
        );
        assert_eq!(
            OpName::StageSendGrad { stage: 3, mb: 11 }.to_string(),
            "stage3.send_grad[11]"
        );
        assert_eq!(
            OpName::StageGrad {
                stage: 5,
                kind: Ck::ReduceScatter
            }
            .to_string(),
            "stage5.grad.ReduceScatter"
        );
        assert_eq!(
            OpName::StageOptimizer { stage: 7 }.to_string(),
            "stage7.optimizer"
        );
    }

    #[test]
    fn op_name_round_trips_through_strings() {
        use madmax_parallel::CollectiveKind as Ck;
        let names = [
            OpName::flat(PassDir::Fwd, None, "embedding_tables.a2a"),
            OpName::flat(PassDir::Bwd, Some(95), "blocks"),
            OpName::UpdateOptimizer,
            OpName::StageParam {
                stage: 0,
                kind: Ck::AllGather,
            },
            OpName::StagePass {
                stage: 2,
                dir: PassDir::Fwd,
                mb: 7,
            },
            OpName::StagePassColl {
                stage: 1,
                dir: PassDir::Bwd,
                mb: 0,
                kind: Ck::AllToAll,
            },
            OpName::StageSendAct { stage: 0, mb: 4 },
            OpName::StageSendTok { stage: 2, mb: 47 },
            OpName::StageSendGrad { stage: 3, mb: 11 },
            OpName::StageGrad {
                stage: 5,
                kind: Ck::ReduceScatter,
            },
            OpName::StageOptimizer { stage: 7 },
            OpName::decode(0, None, "word_embedding.lookup"),
            OpName::decode(63, Some(12), "transformer_blocks.tp_ar"),
            OpName::custom("op17"),
        ];
        for name in names {
            let parsed: OpName = name.to_string().parse().unwrap();
            assert_eq!(parsed, name, "{name}");
        }
    }

    #[test]
    fn deps_inline_up_to_two_then_spill() {
        let mut d = Deps::none();
        assert!(d.is_empty());
        d.push(OpId(3));
        d.push(OpId(1));
        assert!(matches!(d, Deps::Inline { len: 2, .. }));
        d.sort_dedup();
        assert_eq!(d.as_slice(), &[OpId(1), OpId(3)]);
        d.push(OpId(2));
        assert!(matches!(d, Deps::Spilled(_)));
        d.sort_dedup();
        assert_eq!(d.as_slice(), &[OpId(1), OpId(2), OpId(3)]);
        assert!(d.contains(&OpId(2)));
        assert_eq!(d, vec![OpId(1), OpId(2), OpId(3)]);
    }

    #[test]
    fn deps_push_after_sort_dedup_keeps_sorted_invariant() {
        // Regression: push used to append, so pushing a smaller id after
        // sort_dedup left the list unsorted and the dedup in sort_dedup
        // (which assumes adjacency) could miss duplicates.
        let mut d = Deps::from(vec![OpId(4), OpId(9)]);
        d.sort_dedup();
        d.push(OpId(1));
        assert_eq!(d.as_slice(), &[OpId(1), OpId(4), OpId(9)]);
        d.push(OpId(6));
        assert_eq!(d.as_slice(), &[OpId(1), OpId(4), OpId(6), OpId(9)]);
        // Duplicates land adjacent, so a later sort_dedup still removes
        // them even without re-sorting.
        d.push(OpId(4));
        assert_eq!(d.as_slice(), &[OpId(1), OpId(4), OpId(4), OpId(6), OpId(9)]);
        d.sort_dedup();
        assert_eq!(d.as_slice(), &[OpId(1), OpId(4), OpId(6), OpId(9)]);
        // The inline representation keeps the invariant too.
        let mut inline = Deps::one(OpId(7));
        inline.push(OpId(2));
        assert_eq!(inline.as_slice(), &[OpId(2), OpId(7)]);
        assert!(matches!(inline, Deps::Inline { len: 2, .. }));
    }

    #[test]
    fn deps_equality_ignores_representation() {
        // Dedup leaves a stale inactive slot; equality must not see it.
        let mut d = Deps::from(vec![OpId(5), OpId(5)]);
        d.sort_dedup();
        assert_eq!(d, Deps::one(OpId(5)));
        // Spilled and inline forms of the same list are equal.
        let spilled = Deps::Spilled(vec![OpId(1), OpId(2)]);
        assert_eq!(spilled, Deps::from(vec![OpId(1), OpId(2)]));
        // Serde round trip preserves equality regardless of representation.
        let mut grown = Deps::from(vec![OpId(3), OpId(3)]);
        grown.sort_dedup();
        let json = serde_json::to_string(&grown).unwrap();
        let back: Deps = serde_json::from_str(&json).unwrap();
        assert_eq!(back, grown);
    }

    #[test]
    fn deps_sort_dedup_inline_pair() {
        let mut d = Deps::from(vec![OpId(5), OpId(5)]);
        d.sort_dedup();
        assert_eq!(d.as_slice(), &[OpId(5)]);
        let mut d = Deps::from(vec![OpId(9), OpId(2)]);
        d.sort_dedup();
        assert_eq!(d.as_slice(), &[OpId(2), OpId(9)]);
    }
}
