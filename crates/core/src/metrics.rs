//! Iteration-level performance metrics and breakdowns: overall throughput,
//! serialized and overlapped execution, exposed communication, and the
//! per-collective / per-layer-class splits used across Figs. 4, 7, and 20.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use madmax_hw::units::Seconds;
use madmax_model::{BatchUnit, LayerClass, ModelArch};
use madmax_parallel::{CollectiveKind, MemoryBreakdown};

use crate::sim::{merged_into, Schedule};
use crate::trace::{OpKind, Phase, StreamId, Trace};

/// Serve-mode metrics of one iteration: the latency split between the
/// prompt's prefill and the autoregressive decode stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Prompt length (tokens per sequence).
    pub prompt_len: usize,
    /// Output tokens generated per sequence.
    pub decode_len: usize,
    /// Sequences decoded concurrently.
    pub decode_batch: usize,
    /// Time to first token: when the prefill of every in-flight sequence
    /// completes (the last non-decode op finishes).
    pub ttft: Seconds,
    /// Time per output token: the mean decode-step latency,
    /// `(iteration_time - ttft) / decode_len`.
    pub tpot: Seconds,
}

impl ServeStats {
    /// Output tokens produced per iteration (`decode_batch * decode_len`).
    pub fn output_tokens_per_iteration(&self) -> f64 {
        (self.decode_batch * self.decode_len) as f64
    }
}

/// Computes the serve metrics of a scheduled serve trace: TTFT is the
/// completion of the last non-decode op (prefill + once-per-iteration
/// parameter traffic), TPOT the mean decode-step time after it.
///
/// Both engines emit every decode op after every prefill op, so the
/// non-decode prefix is located with one binary search instead of
/// sweeping the (decode-dominated) trace.
pub fn serve_stats_from(
    trace: &Trace,
    schedule: &Schedule,
    prompt_len: usize,
    decode_len: usize,
    decode_batch: usize,
) -> ServeStats {
    let boundary = trace.ops().partition_point(|op| op.phase != Phase::Decode);
    debug_assert!(
        trace.ops()[boundary..]
            .iter()
            .all(|op| op.phase == Phase::Decode),
        "decode ops must form the trace suffix"
    );
    let ttft = schedule.windows[..boundary]
        .iter()
        .map(|w| w.finish)
        .fold(Seconds::ZERO, Seconds::max);
    let tpot = if decode_len == 0 {
        Seconds::ZERO
    } else {
        (schedule.makespan - ttft) / decode_len as f64
    };
    ServeStats {
        prompt_len,
        decode_len,
        decode_batch,
        ttft,
        tpot,
    }
}

/// Everything MAD-Max reports about one training/inference iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Overlapped (wall-clock) iteration time: the schedule makespan.
    pub iteration_time: Seconds,
    /// Serialized iteration time: the sum of every op's duration.
    pub serialized_time: Seconds,
    /// Total GEMM time on the compute stream.
    pub gemm_time: Seconds,
    /// Total embedding lookup/scatter time.
    pub lookup_time: Seconds,
    /// Optimizer-step time.
    pub optimizer_time: Seconds,
    /// Sum of all collective durations.
    pub comm_time: Seconds,
    /// Collective durations by primitive.
    pub comm_by_collective: BTreeMap<CollectiveKind, Seconds>,
    /// GEMM durations by layer class.
    pub gemm_by_class: BTreeMap<LayerClass, Seconds>,
    /// Wall-clock time when communication channels are busy but the
    /// compute stream is idle (the paper's *exposed communication*). For
    /// pipelined traces this is computed per stage device against that
    /// device's own compute stream and summed, matching `comm_time`'s
    /// all-device total.
    pub exposed_comm: Seconds,
    /// Per-collective exposure (each op's window minus compute-busy time;
    /// may sum to slightly more than `exposed_comm` when the two comm
    /// streams are simultaneously exposed).
    pub exposed_by_collective: BTreeMap<CollectiveKind, Seconds>,
    /// Pipeline-bubble fraction: the share of the iteration each stage's
    /// compute stream sits idle on average, `1 - mean(stage busy) /
    /// makespan`. `None` for flat (non-pipelined) traces; for uniform
    /// stages and a GPipe schedule it equals the analytic
    /// `(p - 1) / (m + p - 1)`.
    pub bubble_fraction: Option<f64>,
    /// Per-device memory footprint of this mapping.
    pub memory: MemoryBreakdown,
    /// Serve-mode metrics (TTFT / TPOT); `None` for training and
    /// prefill-only runs. Attached by the engines after scheduling.
    pub serve: Option<ServeStats>,
    /// Global batch (samples or sequences) per iteration.
    pub global_batch: usize,
    /// Tokens per iteration (== samples for sample-based models).
    pub tokens_per_iteration: f64,
    /// Throughput accounting unit.
    pub batch_unit: BatchUnit,
}

/// One comm op's coordinates, captured during the main sweep so the
/// per-collective exposure pass re-reads a compact record instead of the
/// full trace.
#[derive(Debug, Clone, Copy)]
struct CommOpRec {
    /// Dense stream slot ([`StreamId::slot`]) of the op's comm stream.
    stream_slot: u32,
    /// Dense collective index ([`kind_idx`]).
    kind: u8,
    /// Scheduled window.
    span: (f64, f64),
}

/// Reusable interval buffers for report construction: per-stream and
/// per-device busy lists and their merged unions (device slot 0 is the
/// flat trace's representative device; slot `1 + s` is pipeline stage
/// `s`). Keeping one `ReportScratch` per evaluation worker removes the
/// per-candidate allocation of every interval list.
#[derive(Debug, Default)]
pub struct ReportScratch {
    compute_busy: Vec<Vec<(f64, f64)>>,
    /// Comm busy intervals per *stream slot* (each list is in
    /// non-decreasing start order, because streams execute in order).
    comm_busy: Vec<Vec<(f64, f64)>>,
    merged_compute: Vec<Vec<(f64, f64)>>,
    comm_scratch: Vec<(f64, f64)>,
    /// Per-stream monotone cursors into the device's merged compute list.
    cursors: Vec<usize>,
    /// Comm ops captured by the main sweep, in trace order.
    comm_ops: Vec<CommOpRec>,
    /// Per-stage compute busy time, dense by stage index.
    stage_busy: Vec<Seconds>,
}

/// Dense buffer slot of a device: the flat representative device, or one
/// pipeline stage. Slot order equals the `Option<u16>` sort order, so
/// per-device folds visit devices exactly as the previous ordered-map
/// implementation did.
pub(crate) fn device_slot(device: Option<u16>) -> usize {
    match device {
        None => 0,
        Some(s) => 1 + s as usize,
    }
}

/// The device slot a comm *stream slot* belongs to: the flat `Comm` /
/// `GradComm` slots (1, 2) map to the representative device, and each
/// stage's comm slots (`4 + 3s`, `5 + 3s`) to that stage's device.
pub(crate) fn comm_stream_device(stream_slot: usize) -> usize {
    if stream_slot < 3 {
        0
    } else {
        1 + (stream_slot - 3) / 3
    }
}

/// Dense index of a layer class, matching [`LayerClass::ALL`]'s order.
pub(crate) fn class_idx(class: LayerClass) -> usize {
    match class {
        LayerClass::Embedding => 0,
        LayerClass::Dense => 1,
        LayerClass::Transformer => 2,
        LayerClass::Moe => 3,
    }
}

/// Every collective primitive, in dense-index order (see [`kind_idx`]).
pub(crate) const COLLECTIVES: [CollectiveKind; 5] = [
    CollectiveKind::AllReduce,
    CollectiveKind::AllGather,
    CollectiveKind::ReduceScatter,
    CollectiveKind::AllToAll,
    CollectiveKind::PointToPoint,
];

/// Dense index of a collective primitive, matching [`COLLECTIVES`].
pub(crate) fn kind_idx(kind: CollectiveKind) -> usize {
    match kind {
        CollectiveKind::AllReduce => 0,
        CollectiveKind::AllGather => 1,
        CollectiveKind::ReduceScatter => 2,
        CollectiveKind::AllToAll => 3,
        CollectiveKind::PointToPoint => 4,
    }
}

/// Builds the ordered map a dense accumulator row stands in for: one entry
/// per *touched* index (zero-duration ops still create entries, exactly
/// like the previous per-op `entry()` calls).
pub(crate) fn to_map<K: Ord + Copy, const N: usize>(
    keys: [K; N],
    touched: [bool; N],
    totals: [Seconds; N],
) -> BTreeMap<K, Seconds> {
    let mut out = BTreeMap::new();
    for i in 0..N {
        if touched[i] {
            out.insert(keys[i], totals[i]);
        }
    }
    out
}

fn clear_buckets(buckets: &mut [Vec<(f64, f64)>]) {
    for b in buckets {
        b.clear();
    }
}

fn push_span(buckets: &mut Vec<Vec<(f64, f64)>>, slot: usize, span: (f64, f64)) {
    if slot >= buckets.len() {
        buckets.resize_with(slot + 1, Vec::new);
    }
    buckets[slot].push(span);
}

/// Lazily yields the canonical disjoint union segments of a
/// sorted-by-start interval list, with [`merged_into`]'s exact merge rule
/// (`start <= current end` extends the segment).
#[derive(Debug)]
struct UnionSegments<'a> {
    list: &'a [(f64, f64)],
    i: usize,
}

impl Iterator for UnionSegments<'_> {
    type Item = (f64, f64);

    fn next(&mut self) -> Option<(f64, f64)> {
        let &(start, mut end) = self.list.get(self.i)?;
        self.i += 1;
        while let Some(&(s, e)) = self.list.get(self.i) {
            if s > end {
                break;
            }
            end = end.max(e);
            self.i += 1;
        }
        Some((start, end))
    }
}

/// [`crate::sim::difference_measure`] for a sorted-by-start `a` against an
/// already-merged `b` — allocation-free and sort-free, producing exactly
/// the general measure's result (same union segments, same accumulation
/// order).
fn difference_measure_presorted(a_sorted: &[(f64, f64)], b_merged: &[(f64, f64)]) -> f64 {
    let segments = |list| UnionSegments { list, i: 0 };
    let a_measure: f64 = segments(a_sorted).map(|(s, e)| e - s).sum();
    if b_merged.is_empty() {
        return a_measure;
    }
    let mut inter = 0.0;
    let mut a_segs = segments(a_sorted);
    let mut cur = a_segs.next();
    let mut j = 0;
    while let Some((a_start, a_end)) = cur {
        if j >= b_merged.len() {
            break;
        }
        let (b_start, b_end) = b_merged[j];
        let lo = a_start.max(b_start);
        let hi = a_end.min(b_end);
        if hi > lo {
            inter += hi - lo;
        }
        if a_end < b_end {
            cur = a_segs.next();
        } else {
            j += 1;
        }
    }
    a_measure - inter
}

/// Merges two sorted-by-start interval lists into `out` (cleared first),
/// keeping the result sorted by start. Ties may resolve either way: the
/// downstream union/difference measures are tie-order independent (equal
/// starts produce the same merged segments either way).
fn merge_sorted_into(a: &[(f64, f64)], b: &[(f64, f64)], out: &mut Vec<(f64, f64)>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0 <= b[j].0 {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

impl IterationReport {
    /// Builds the report by sweeping the scheduled trace.
    pub fn from_schedule(
        trace: &Trace,
        schedule: &Schedule,
        model: &ModelArch,
        memory: MemoryBreakdown,
    ) -> Self {
        Self::from_schedule_in(
            trace,
            schedule,
            model,
            memory,
            &mut ReportScratch::default(),
        )
    }

    /// [`IterationReport::from_schedule`] with caller-owned interval
    /// buffers — the evaluation hot path. The report is byte-identical to
    /// the buffer-free call.
    pub fn from_schedule_in(
        trace: &Trace,
        schedule: &Schedule,
        model: &ModelArch,
        memory: MemoryBreakdown,
        scratch: &mut ReportScratch,
    ) -> Self {
        let mut serialized_time = Seconds::ZERO;
        let mut gemm_time = Seconds::ZERO;
        let mut lookup_time = Seconds::ZERO;
        let mut optimizer_time = Seconds::ZERO;
        let mut comm_time = Seconds::ZERO;
        // Per-key totals accumulate into dense rows (indexed by
        // `class_idx` / `kind_idx`) in trace order — the same additions in
        // the same order the previous per-op `BTreeMap::entry` calls made
        // — and materialize as maps at the end.
        let mut comm_totals = [Seconds::ZERO; COLLECTIVES.len()];
        let mut comm_touched = [false; COLLECTIVES.len()];
        let mut gemm_totals = [Seconds::ZERO; LayerClass::ALL.len()];
        let mut gemm_touched = [false; LayerClass::ALL.len()];

        // Busy intervals are kept per device (compute) and per stream
        // (comm): flat traces model one representative device (slot 0);
        // pipelined traces model one device per stage (slot `1 + stage`).
        // Exposure must compare a comm interval against *its own device's*
        // compute stream — merging all stages' compute would let stage 0's
        // GEMMs "hide" stage 1's transfers, which run on different
        // hardware.
        clear_buckets(&mut scratch.compute_busy);
        clear_buckets(&mut scratch.comm_busy);
        scratch.comm_ops.clear();
        for b in &mut scratch.stage_busy {
            *b = Seconds::ZERO;
        }
        let compute_busy = &mut scratch.compute_busy;
        let comm_busy = &mut scratch.comm_busy;

        for (op, w) in trace.ops().iter().zip(&schedule.windows) {
            serialized_time += op.duration;
            let span = (w.start.as_secs(), w.finish.as_secs());
            match op.kind {
                OpKind::Gemm { class } => {
                    gemm_time += op.duration;
                    let i = class_idx(class);
                    gemm_totals[i] += op.duration;
                    gemm_touched[i] = true;
                }
                OpKind::Lookup => lookup_time += op.duration,
                OpKind::Optimizer => optimizer_time += op.duration,
                OpKind::Collective { kind } => {
                    comm_time += op.duration;
                    let i = kind_idx(kind);
                    comm_totals[i] += op.duration;
                    comm_touched[i] = true;
                    scratch.comm_ops.push(CommOpRec {
                        stream_slot: op.stream.slot() as u32,
                        kind: i as u8,
                        span,
                    });
                }
            }
            if op.stream.is_compute() {
                push_span(compute_busy, device_slot(op.stream.stage()), span);
                if let StreamId::StageCompute(s) = op.stream {
                    // A stream never overlaps itself, so busy time is the
                    // plain sum of durations.
                    let s = s as usize;
                    if s >= scratch.stage_busy.len() {
                        scratch.stage_busy.resize(s + 1, Seconds::ZERO);
                    }
                    scratch.stage_busy[s] += op.duration;
                }
            } else {
                // Comm intervals are bucketed per stream: each stream runs
                // in order, so its list stays sorted by start.
                push_span(comm_busy, op.stream.slot(), span);
            }
        }

        // Stage `s` appeared iff its compute device slot (1 + s) is
        // non-empty; visit stages in ascending order, exactly like the
        // previous ordered-map fold.
        let mut stage_count = 0usize;
        let mut stage_total = 0.0f64;
        for (s, busy) in scratch.stage_busy.iter().enumerate() {
            if compute_busy.get(1 + s).is_some_and(|v| !v.is_empty()) {
                stage_count += 1;
                stage_total += busy.as_secs();
            }
        }
        let bubble_fraction = if stage_count == 0 || schedule.makespan.is_zero() {
            None
        } else {
            let mean_busy = stage_total / stage_count as f64;
            Some(f64::max(1.0 - mean_busy / schedule.makespan.as_secs(), 0.0))
        };

        // Merge each device's compute intervals once; both exposure
        // measures below read the merged lists.
        if scratch.merged_compute.len() < compute_busy.len() {
            scratch
                .merged_compute
                .resize_with(compute_busy.len(), Vec::new);
        }
        clear_buckets(&mut scratch.merged_compute);
        for (slot, busy) in compute_busy.iter().enumerate() {
            merged_into(busy, &mut scratch.merged_compute[slot]);
        }

        // Exposed communication per device, summed across devices in slot
        // (device) order. A flat trace has one device, so this is the
        // paper's metric unchanged; for pipelined traces the sum is
        // consistent with `comm_time` and `serialized_time` (also
        // all-device totals), keeping `exposed_fraction = exposed_comm /
        // comm_time` meaningful. A device's comm intervals are the merge
        // of its (already sorted) comm streams, so the difference measure
        // runs allocation- and sort-free against the pre-merged compute.
        let comm_devices = comm_busy
            .len()
            .checked_sub(1)
            .map_or(0, |last| comm_stream_device(last) + 1);
        let devices = compute_busy.len().max(comm_devices);
        let mut exposed = 0.0;
        let empty: &[(f64, f64)] = &[];
        for device in 0..devices {
            let (a, b) = if device == 0 {
                (1usize, 2usize)
            } else {
                (3 * (device - 1) + 4, 3 * (device - 1) + 5)
            };
            let slice = |slot: usize| comm_busy.get(slot).map_or(empty, |v| v.as_slice());
            let compute = compute_busy.get(device).map_or(empty, |v| v.as_slice());
            let (ca, cb) = (slice(a), slice(b));
            if ca.is_empty() && cb.is_empty() && compute.is_empty() {
                continue; // device never appeared
            }
            merge_sorted_into(ca, cb, &mut scratch.comm_scratch);
            let merged = scratch
                .merged_compute
                .get(device)
                .map_or(empty, |v| v.as_slice());
            exposed += difference_measure_presorted(&scratch.comm_scratch, merged);
        }

        // Per-collective exposure: each comm op's own window minus its own
        // device's compute-busy time (summed like `exposed_comm`, in trace
        // order). Each comm op advances its stream's monotone cursor into
        // the merged list (window starts never decrease within a stream)
        // instead of binary-searching from scratch.
        // Cursors are indexed by the comm op's *stream* slot, which can
        // exceed the comm-stream buckets when a hand-built trace places a
        // collective on a compute stream — size for the largest slot seen.
        let max_comm_slot = scratch
            .comm_ops
            .iter()
            .map(|rec| rec.stream_slot as usize + 1)
            .max()
            .unwrap_or(0);
        scratch.cursors.clear();
        scratch
            .cursors
            .resize(comm_busy.len().max(max_comm_slot), 0);
        let mut exposed_totals = [Seconds::ZERO; COLLECTIVES.len()];
        let mut exposed_touched = [false; COLLECTIVES.len()];
        for rec in &scratch.comm_ops {
            let slot = rec.stream_slot as usize;
            let compute = scratch
                .merged_compute
                .get(comm_stream_device(slot))
                .map_or(empty, |v| v.as_slice());
            let cursor = &mut scratch.cursors[slot];
            let (a_start, a_end) = rec.span;
            // Advance past intervals that end at or before this window;
            // they cannot intersect it or any later window of this stream.
            while *cursor < compute.len() && compute[*cursor].1 <= a_start {
                *cursor += 1;
            }
            let mut inter = 0.0;
            let mut j = *cursor;
            while j < compute.len() {
                let (b_start, b_end) = compute[j];
                let lo = a_start.max(b_start);
                let hi = a_end.min(b_end);
                if hi > lo {
                    inter += hi - lo;
                }
                if a_end < b_end {
                    break;
                }
                j += 1;
            }
            let i = rec.kind as usize;
            exposed_totals[i] += Seconds::new(a_end - a_start - inter);
            exposed_touched[i] = true;
        }

        Self {
            iteration_time: schedule.makespan,
            serialized_time,
            gemm_time,
            lookup_time,
            optimizer_time,
            comm_time,
            comm_by_collective: to_map(COLLECTIVES, comm_touched, comm_totals),
            gemm_by_class: to_map(LayerClass::ALL, gemm_touched, gemm_totals),
            exposed_comm: Seconds::new(exposed),
            exposed_by_collective: to_map(COLLECTIVES, exposed_touched, exposed_totals),
            bubble_fraction,
            memory,
            serve: None,
            global_batch: model.global_batch,
            tokens_per_iteration: model.tokens_per_iteration(),
            batch_unit: model.batch_unit,
        }
    }

    /// Total compute-stream time (GEMM + lookups + optimizer).
    pub fn compute_time(&self) -> Seconds {
        self.gemm_time + self.lookup_time + self.optimizer_time
    }

    /// Samples (or sequences) processed per second.
    pub fn samples_per_sec(&self) -> f64 {
        self.global_batch as f64 / self.iteration_time.as_secs()
    }

    /// Throughput in millions of queries per second (the paper's DLRM
    /// metric).
    pub fn mqps(&self) -> f64 {
        self.samples_per_sec() / 1e6
    }

    /// Tokens processed per second (the LLM metric).
    pub fn tokens_per_sec(&self) -> f64 {
        self.tokens_per_iteration / self.iteration_time.as_secs()
    }

    /// Output tokens generated per second, for serve runs with decode
    /// steps (`None` otherwise).
    pub fn serve_tokens_per_sec(&self) -> Option<f64> {
        self.serve
            .map(|s| s.output_tokens_per_iteration() / self.iteration_time.as_secs())
    }

    /// Fraction of communication time that is exposed (not hidden behind
    /// compute), in `[0, 1]`.
    pub fn exposed_fraction(&self) -> f64 {
        if self.comm_time.is_zero() {
            0.0
        } else {
            (self.exposed_comm / self.comm_time).min(1.0)
        }
    }

    /// Fraction of communication hidden behind compute (Fig. 4b's
    /// "overlapped" share).
    pub fn overlap_fraction(&self) -> f64 {
        1.0 - self.exposed_fraction()
    }

    /// Wall-clock speedup of this mapping over `baseline` (same workload).
    pub fn speedup_over(&self, baseline: &IterationReport) -> f64 {
        baseline.iteration_time / self.iteration_time
    }

    /// Serialized-time fraction spent in a collective.
    pub fn comm_share(&self, kind: CollectiveKind) -> f64 {
        let t = self
            .comm_by_collective
            .get(&kind)
            .copied()
            .unwrap_or(Seconds::ZERO);
        if self.comm_time.is_zero() {
            0.0
        } else {
            t / self.comm_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::schedule;
    use crate::trace::{OpId, Phase, TraceOp};

    fn toy_model() -> ModelArch {
        madmax_model::ModelId::DlrmB.build()
    }

    fn op(name: &str, stream: StreamId, kind: OpKind, ms: f64, deps: Vec<OpId>) -> TraceOp {
        TraceOp {
            name: name.to_owned().into(),
            stream,
            kind,
            phase: Phase::Forward,
            duration: Seconds::from_ms(ms),
            deps: deps.into(),
        }
    }

    #[test]
    fn collectives_on_compute_streams_are_handled() {
        // Hand-built traces may place a collective on a compute stream
        // (no comm stream exists at all here); the per-collective
        // exposure cursors must size to the op's stream slot, not the
        // comm-bucket count.
        let mut t = Trace::new();
        t.push(op(
            "fused_ar",
            StreamId::Compute,
            OpKind::Collective {
                kind: CollectiveKind::AllReduce,
            },
            5.0,
            vec![],
        ));
        t.push(op(
            "stage_fused",
            StreamId::StageCompute(2),
            OpKind::Collective {
                kind: CollectiveKind::PointToPoint,
            },
            3.0,
            vec![],
        ));
        let s = schedule(&t);
        let model = toy_model();
        let r = IterationReport::from_schedule(&t, &s, &model, MemoryBreakdown::default());
        assert!((r.comm_time.as_ms() - 8.0).abs() < 1e-9);
        // The ops sit on their own device's compute stream, so they are
        // "hidden" behind themselves: per-collective exposure is zero.
        assert_eq!(
            r.exposed_by_collective[&CollectiveKind::AllReduce],
            Seconds::ZERO
        );
        // No comm-stream intervals exist, so total exposed comm is zero.
        assert_eq!(r.exposed_comm, Seconds::ZERO);
    }

    #[test]
    fn report_accounts_all_categories() {
        let mut t = Trace::new();
        let a = t.push(op("lookup", StreamId::Compute, OpKind::Lookup, 4.0, vec![]));
        let b = t.push(op(
            "a2a",
            StreamId::Comm,
            OpKind::Collective {
                kind: CollectiveKind::AllToAll,
            },
            6.0,
            vec![a],
        ));
        t.push(op(
            "mlp",
            StreamId::Compute,
            OpKind::Gemm {
                class: LayerClass::Dense,
            },
            5.0,
            vec![b],
        ));
        let s = schedule(&t);
        let model = toy_model();
        let r = IterationReport::from_schedule(&t, &s, &model, MemoryBreakdown::default());

        assert!((r.serialized_time.as_ms() - 15.0).abs() < 1e-9);
        assert!(
            (r.iteration_time.as_ms() - 15.0).abs() < 1e-9,
            "fully serial chain"
        );
        assert!((r.lookup_time.as_ms() - 4.0).abs() < 1e-9);
        assert!((r.gemm_time.as_ms() - 5.0).abs() < 1e-9);
        assert!((r.comm_time.as_ms() - 6.0).abs() < 1e-9);
        // The A2A runs [4,10] with no concurrent compute: fully exposed.
        assert!((r.exposed_comm.as_ms() - 6.0).abs() < 1e-9);
        assert!((r.exposed_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(r.overlap_fraction(), 0.0);
        assert!((r.comm_share(CollectiveKind::AllToAll) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapped_comm_is_hidden() {
        let mut t = Trace::new();
        t.push(op(
            "mlp",
            StreamId::Compute,
            OpKind::Gemm {
                class: LayerClass::Dense,
            },
            10.0,
            vec![],
        ));
        t.push(op(
            "ar",
            StreamId::GradComm,
            OpKind::Collective {
                kind: CollectiveKind::AllReduce,
            },
            8.0,
            vec![],
        ));
        let s = schedule(&t);
        let model = toy_model();
        let r = IterationReport::from_schedule(&t, &s, &model, MemoryBreakdown::default());
        assert!((r.iteration_time.as_ms() - 10.0).abs() < 1e-9);
        assert_eq!(r.exposed_comm, Seconds::ZERO);
        assert!((r.overlap_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_units() {
        let mut t = Trace::new();
        t.push(op(
            "mlp",
            StreamId::Compute,
            OpKind::Gemm {
                class: LayerClass::Dense,
            },
            100.0,
            vec![],
        ));
        let s = schedule(&t);
        let model = toy_model(); // 256K global batch, sample-based
        let r = IterationReport::from_schedule(&t, &s, &model, MemoryBreakdown::default());
        assert!((r.samples_per_sec() - 262_144.0 / 0.1).abs() < 1.0);
        assert!((r.mqps() - 2.62144).abs() < 1e-3);
        assert_eq!(r.batch_unit, BatchUnit::Samples);
    }

    #[test]
    fn speedup_is_ratio_of_iteration_times() {
        let mut t1 = Trace::new();
        t1.push(op("a", StreamId::Compute, OpKind::Lookup, 10.0, vec![]));
        let mut t2 = Trace::new();
        t2.push(op("a", StreamId::Compute, OpKind::Lookup, 5.0, vec![]));
        let model = toy_model();
        let r1 =
            IterationReport::from_schedule(&t1, &schedule(&t1), &model, MemoryBreakdown::default());
        let r2 =
            IterationReport::from_schedule(&t2, &schedule(&t2), &model, MemoryBreakdown::default());
        assert!((r2.speedup_over(&r1) - 2.0).abs() < 1e-9);
    }
}
