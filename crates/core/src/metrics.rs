//! Iteration-level performance metrics and breakdowns: overall throughput,
//! serialized and overlapped execution, exposed communication, and the
//! per-collective / per-layer-class splits used across Figs. 4, 7, and 20.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use madmax_hw::units::Seconds;
use madmax_model::{BatchUnit, LayerClass, ModelArch};
use madmax_parallel::{CollectiveKind, MemoryBreakdown};

use crate::sim::{difference_measure, merged_into, single_difference_measure, Schedule};
use crate::trace::{OpKind, Phase, StreamId, Trace};

/// Serve-mode metrics of one iteration: the latency split between the
/// prompt's prefill and the autoregressive decode stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Prompt length (tokens per sequence).
    pub prompt_len: usize,
    /// Output tokens generated per sequence.
    pub decode_len: usize,
    /// Sequences decoded concurrently.
    pub decode_batch: usize,
    /// Time to first token: when the prefill of every in-flight sequence
    /// completes (the last non-decode op finishes).
    pub ttft: Seconds,
    /// Time per output token: the mean decode-step latency,
    /// `(iteration_time - ttft) / decode_len`.
    pub tpot: Seconds,
}

impl ServeStats {
    /// Output tokens produced per iteration (`decode_batch * decode_len`).
    pub fn output_tokens_per_iteration(&self) -> f64 {
        (self.decode_batch * self.decode_len) as f64
    }
}

/// Computes the serve metrics of a scheduled serve trace: TTFT is the
/// completion of the last non-decode op (prefill + once-per-iteration
/// parameter traffic), TPOT the mean decode-step time after it.
pub fn serve_stats_from(
    trace: &Trace,
    schedule: &Schedule,
    prompt_len: usize,
    decode_len: usize,
    decode_batch: usize,
) -> ServeStats {
    let ttft = trace
        .ops()
        .iter()
        .zip(&schedule.windows)
        .filter(|(op, _)| op.phase != Phase::Decode)
        .map(|(_, w)| w.finish)
        .fold(Seconds::ZERO, Seconds::max);
    let tpot = if decode_len == 0 {
        Seconds::ZERO
    } else {
        (schedule.makespan - ttft) / decode_len as f64
    };
    ServeStats {
        prompt_len,
        decode_len,
        decode_batch,
        ttft,
        tpot,
    }
}

/// Everything MAD-Max reports about one training/inference iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Overlapped (wall-clock) iteration time: the schedule makespan.
    pub iteration_time: Seconds,
    /// Serialized iteration time: the sum of every op's duration.
    pub serialized_time: Seconds,
    /// Total GEMM time on the compute stream.
    pub gemm_time: Seconds,
    /// Total embedding lookup/scatter time.
    pub lookup_time: Seconds,
    /// Optimizer-step time.
    pub optimizer_time: Seconds,
    /// Sum of all collective durations.
    pub comm_time: Seconds,
    /// Collective durations by primitive.
    pub comm_by_collective: BTreeMap<CollectiveKind, Seconds>,
    /// GEMM durations by layer class.
    pub gemm_by_class: BTreeMap<LayerClass, Seconds>,
    /// Wall-clock time when communication channels are busy but the
    /// compute stream is idle (the paper's *exposed communication*). For
    /// pipelined traces this is computed per stage device against that
    /// device's own compute stream and summed, matching `comm_time`'s
    /// all-device total.
    pub exposed_comm: Seconds,
    /// Per-collective exposure (each op's window minus compute-busy time;
    /// may sum to slightly more than `exposed_comm` when the two comm
    /// streams are simultaneously exposed).
    pub exposed_by_collective: BTreeMap<CollectiveKind, Seconds>,
    /// Pipeline-bubble fraction: the share of the iteration each stage's
    /// compute stream sits idle on average, `1 - mean(stage busy) /
    /// makespan`. `None` for flat (non-pipelined) traces; for uniform
    /// stages and a GPipe schedule it equals the analytic
    /// `(p - 1) / (m + p - 1)`.
    pub bubble_fraction: Option<f64>,
    /// Per-device memory footprint of this mapping.
    pub memory: MemoryBreakdown,
    /// Serve-mode metrics (TTFT / TPOT); `None` for training and
    /// prefill-only runs. Attached by the engines after scheduling.
    pub serve: Option<ServeStats>,
    /// Global batch (samples or sequences) per iteration.
    pub global_batch: usize,
    /// Tokens per iteration (== samples for sample-based models).
    pub tokens_per_iteration: f64,
    /// Throughput accounting unit.
    pub batch_unit: BatchUnit,
}

/// Reusable interval buffers for report construction: per-device busy
/// lists and their merged unions, dense by device slot (slot 0 is the flat
/// trace's representative device; slot `1 + s` is pipeline stage `s`).
/// Keeping one `ReportScratch` per evaluation worker removes the
/// per-candidate allocation of every interval list.
#[derive(Debug, Default)]
pub struct ReportScratch {
    compute_busy: Vec<Vec<(f64, f64)>>,
    comm_busy: Vec<Vec<(f64, f64)>>,
    merged_compute: Vec<Vec<(f64, f64)>>,
    comm_scratch: Vec<(f64, f64)>,
}

/// Dense buffer slot of a device: the flat representative device, or one
/// pipeline stage. Slot order equals the `Option<u16>` sort order, so
/// per-device folds visit devices exactly as the previous ordered-map
/// implementation did.
fn device_slot(device: Option<u16>) -> usize {
    match device {
        None => 0,
        Some(s) => 1 + s as usize,
    }
}

fn clear_buckets(buckets: &mut [Vec<(f64, f64)>]) {
    for b in buckets {
        b.clear();
    }
}

fn push_span(buckets: &mut Vec<Vec<(f64, f64)>>, slot: usize, span: (f64, f64)) {
    if slot >= buckets.len() {
        buckets.resize_with(slot + 1, Vec::new);
    }
    buckets[slot].push(span);
}

impl IterationReport {
    /// Builds the report by sweeping the scheduled trace.
    pub fn from_schedule(
        trace: &Trace,
        schedule: &Schedule,
        model: &ModelArch,
        memory: MemoryBreakdown,
    ) -> Self {
        Self::from_schedule_in(
            trace,
            schedule,
            model,
            memory,
            &mut ReportScratch::default(),
        )
    }

    /// [`IterationReport::from_schedule`] with caller-owned interval
    /// buffers — the evaluation hot path. The report is byte-identical to
    /// the buffer-free call.
    pub fn from_schedule_in(
        trace: &Trace,
        schedule: &Schedule,
        model: &ModelArch,
        memory: MemoryBreakdown,
        scratch: &mut ReportScratch,
    ) -> Self {
        let mut gemm_time = Seconds::ZERO;
        let mut lookup_time = Seconds::ZERO;
        let mut optimizer_time = Seconds::ZERO;
        let mut comm_time = Seconds::ZERO;
        let mut comm_by_collective = BTreeMap::new();
        let mut gemm_by_class = BTreeMap::new();

        // Busy intervals are kept per device: flat traces model one
        // representative device (slot 0); pipelined traces model one
        // device per stage (slot `1 + stage`). Exposure must compare a
        // comm interval against *its own device's* compute stream —
        // merging all stages' compute would let stage 0's GEMMs "hide"
        // stage 1's transfers, which run on different hardware.
        clear_buckets(&mut scratch.compute_busy);
        clear_buckets(&mut scratch.comm_busy);
        let compute_busy = &mut scratch.compute_busy;
        let comm_busy = &mut scratch.comm_busy;
        let mut stage_busy: BTreeMap<u16, Seconds> = BTreeMap::new();

        for (op, w) in trace.ops().iter().zip(&schedule.windows) {
            let span = (w.start.as_secs(), w.finish.as_secs());
            match op.kind {
                OpKind::Gemm { class } => {
                    gemm_time += op.duration;
                    *gemm_by_class.entry(class).or_insert(Seconds::ZERO) += op.duration;
                }
                OpKind::Lookup => lookup_time += op.duration,
                OpKind::Optimizer => optimizer_time += op.duration,
                OpKind::Collective { kind } => {
                    comm_time += op.duration;
                    *comm_by_collective.entry(kind).or_insert(Seconds::ZERO) += op.duration;
                }
            }
            let slot = device_slot(op.stream.stage());
            if op.stream.is_compute() {
                push_span(compute_busy, slot, span);
                if let StreamId::StageCompute(s) = op.stream {
                    // A stream never overlaps itself, so busy time is the
                    // plain sum of durations.
                    *stage_busy.entry(s).or_insert(Seconds::ZERO) += op.duration;
                }
            } else {
                push_span(comm_busy, slot, span);
            }
        }

        let bubble_fraction = if stage_busy.is_empty() || schedule.makespan.is_zero() {
            None
        } else {
            let mean_busy: f64 =
                stage_busy.values().map(|s| s.as_secs()).sum::<f64>() / stage_busy.len() as f64;
            Some(f64::max(1.0 - mean_busy / schedule.makespan.as_secs(), 0.0))
        };

        // Exposed communication per device, summed across devices in slot
        // (device) order. A flat trace has one device, so this is the
        // paper's metric unchanged; for pipelined traces the sum is
        // consistent with `comm_time` and `serialized_time` (also
        // all-device totals), keeping `exposed_fraction = exposed_comm /
        // comm_time` meaningful.
        let slots = compute_busy.len().max(comm_busy.len());
        let mut exposed = 0.0;
        for slot in 0..slots {
            let comm = comm_busy.get(slot).map_or(&[][..], |v| v.as_slice());
            let compute = compute_busy.get(slot).map_or(&[][..], |v| v.as_slice());
            if comm.is_empty() && compute.is_empty() {
                continue; // device never appeared
            }
            scratch.comm_scratch.clear();
            scratch.comm_scratch.extend_from_slice(comm);
            exposed += difference_measure(&mut scratch.comm_scratch, compute);
        }

        // Per-collective exposure: each comm op's own window minus its own
        // device's compute-busy time (summed like `exposed_comm`). The
        // compute intervals are merged once per device; each comm op then
        // costs one allocation-free sweep instead of a clone + sort.
        if scratch.merged_compute.len() < compute_busy.len() {
            scratch
                .merged_compute
                .resize_with(compute_busy.len(), Vec::new);
        }
        clear_buckets(&mut scratch.merged_compute);
        for (slot, busy) in compute_busy.iter().enumerate() {
            merged_into(busy, &mut scratch.merged_compute[slot]);
        }
        let mut exposed_by_collective: BTreeMap<CollectiveKind, Seconds> = BTreeMap::new();
        for (op, w) in trace.ops().iter().zip(&schedule.windows) {
            if let OpKind::Collective { kind } = op.kind {
                let compute = scratch
                    .merged_compute
                    .get(device_slot(op.stream.stage()))
                    .map_or(&[][..], |v| v.as_slice());
                let e = single_difference_measure((w.start.as_secs(), w.finish.as_secs()), compute);
                *exposed_by_collective.entry(kind).or_insert(Seconds::ZERO) += Seconds::new(e);
            }
        }

        Self {
            iteration_time: schedule.makespan,
            serialized_time: trace.serialized_time(),
            gemm_time,
            lookup_time,
            optimizer_time,
            comm_time,
            comm_by_collective,
            gemm_by_class,
            exposed_comm: Seconds::new(exposed),
            exposed_by_collective,
            bubble_fraction,
            memory,
            serve: None,
            global_batch: model.global_batch,
            tokens_per_iteration: model.tokens_per_iteration(),
            batch_unit: model.batch_unit,
        }
    }

    /// Total compute-stream time (GEMM + lookups + optimizer).
    pub fn compute_time(&self) -> Seconds {
        self.gemm_time + self.lookup_time + self.optimizer_time
    }

    /// Samples (or sequences) processed per second.
    pub fn samples_per_sec(&self) -> f64 {
        self.global_batch as f64 / self.iteration_time.as_secs()
    }

    /// Throughput in millions of queries per second (the paper's DLRM
    /// metric).
    pub fn mqps(&self) -> f64 {
        self.samples_per_sec() / 1e6
    }

    /// Tokens processed per second (the LLM metric).
    pub fn tokens_per_sec(&self) -> f64 {
        self.tokens_per_iteration / self.iteration_time.as_secs()
    }

    /// Output tokens generated per second, for serve runs with decode
    /// steps (`None` otherwise).
    pub fn serve_tokens_per_sec(&self) -> Option<f64> {
        self.serve
            .map(|s| s.output_tokens_per_iteration() / self.iteration_time.as_secs())
    }

    /// Fraction of communication time that is exposed (not hidden behind
    /// compute), in `[0, 1]`.
    pub fn exposed_fraction(&self) -> f64 {
        if self.comm_time.is_zero() {
            0.0
        } else {
            (self.exposed_comm / self.comm_time).min(1.0)
        }
    }

    /// Fraction of communication hidden behind compute (Fig. 4b's
    /// "overlapped" share).
    pub fn overlap_fraction(&self) -> f64 {
        1.0 - self.exposed_fraction()
    }

    /// Wall-clock speedup of this mapping over `baseline` (same workload).
    pub fn speedup_over(&self, baseline: &IterationReport) -> f64 {
        baseline.iteration_time / self.iteration_time
    }

    /// Serialized-time fraction spent in a collective.
    pub fn comm_share(&self, kind: CollectiveKind) -> f64 {
        let t = self
            .comm_by_collective
            .get(&kind)
            .copied()
            .unwrap_or(Seconds::ZERO);
        if self.comm_time.is_zero() {
            0.0
        } else {
            t / self.comm_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::schedule;
    use crate::trace::{OpId, Phase, TraceOp};

    fn toy_model() -> ModelArch {
        madmax_model::ModelId::DlrmB.build()
    }

    fn op(name: &str, stream: StreamId, kind: OpKind, ms: f64, deps: Vec<OpId>) -> TraceOp {
        TraceOp {
            name: name.to_owned().into(),
            stream,
            kind,
            phase: Phase::Forward,
            duration: Seconds::from_ms(ms),
            deps: deps.into(),
        }
    }

    #[test]
    fn report_accounts_all_categories() {
        let mut t = Trace::new();
        let a = t.push(op("lookup", StreamId::Compute, OpKind::Lookup, 4.0, vec![]));
        let b = t.push(op(
            "a2a",
            StreamId::Comm,
            OpKind::Collective {
                kind: CollectiveKind::AllToAll,
            },
            6.0,
            vec![a],
        ));
        t.push(op(
            "mlp",
            StreamId::Compute,
            OpKind::Gemm {
                class: LayerClass::Dense,
            },
            5.0,
            vec![b],
        ));
        let s = schedule(&t);
        let model = toy_model();
        let r = IterationReport::from_schedule(&t, &s, &model, MemoryBreakdown::default());

        assert!((r.serialized_time.as_ms() - 15.0).abs() < 1e-9);
        assert!(
            (r.iteration_time.as_ms() - 15.0).abs() < 1e-9,
            "fully serial chain"
        );
        assert!((r.lookup_time.as_ms() - 4.0).abs() < 1e-9);
        assert!((r.gemm_time.as_ms() - 5.0).abs() < 1e-9);
        assert!((r.comm_time.as_ms() - 6.0).abs() < 1e-9);
        // The A2A runs [4,10] with no concurrent compute: fully exposed.
        assert!((r.exposed_comm.as_ms() - 6.0).abs() < 1e-9);
        assert!((r.exposed_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(r.overlap_fraction(), 0.0);
        assert!((r.comm_share(CollectiveKind::AllToAll) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapped_comm_is_hidden() {
        let mut t = Trace::new();
        t.push(op(
            "mlp",
            StreamId::Compute,
            OpKind::Gemm {
                class: LayerClass::Dense,
            },
            10.0,
            vec![],
        ));
        t.push(op(
            "ar",
            StreamId::GradComm,
            OpKind::Collective {
                kind: CollectiveKind::AllReduce,
            },
            8.0,
            vec![],
        ));
        let s = schedule(&t);
        let model = toy_model();
        let r = IterationReport::from_schedule(&t, &s, &model, MemoryBreakdown::default());
        assert!((r.iteration_time.as_ms() - 10.0).abs() < 1e-9);
        assert_eq!(r.exposed_comm, Seconds::ZERO);
        assert!((r.overlap_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_units() {
        let mut t = Trace::new();
        t.push(op(
            "mlp",
            StreamId::Compute,
            OpKind::Gemm {
                class: LayerClass::Dense,
            },
            100.0,
            vec![],
        ));
        let s = schedule(&t);
        let model = toy_model(); // 256K global batch, sample-based
        let r = IterationReport::from_schedule(&t, &s, &model, MemoryBreakdown::default());
        assert!((r.samples_per_sec() - 262_144.0 / 0.1).abs() < 1.0);
        assert!((r.mqps() - 2.62144).abs() < 1e-3);
        assert_eq!(r.batch_unit, BatchUnit::Samples);
    }

    #[test]
    fn speedup_is_ratio_of_iteration_times() {
        let mut t1 = Trace::new();
        t1.push(op("a", StreamId::Compute, OpKind::Lookup, 10.0, vec![]));
        let mut t2 = Trace::new();
        t2.push(op("a", StreamId::Compute, OpKind::Lookup, 5.0, vec![]));
        let model = toy_model();
        let r1 =
            IterationReport::from_schedule(&t1, &schedule(&t1), &model, MemoryBreakdown::default());
        let r2 =
            IterationReport::from_schedule(&t2, &schedule(&t2), &model, MemoryBreakdown::default());
        assert!((r2.speedup_over(&r1) - 2.0).abs() < 1e-9);
    }
}
