//! Analytical cost models for communication collectives
//! (Section IV-C: "Estimating Communication Collective Execution").
//!
//! The default [`HierarchicalNccl`] model follows NCCL's behavior as the
//! paper describes it: ring-style AllReduce/AllGather/ReduceScatter whose
//! effective bandwidth mixes intra- and inter-node channels, and All2All
//! bound by the slowest interconnect level it spans. A deliberately cruder
//! [`FlatWorstLink`] model is provided as an ablation baseline.

use madmax_hw::units::{BytesPerSec, Seconds};
use madmax_hw::{ClusterSpec, CommLevel};
use madmax_parallel::{CollectiveKind, CommReq, CommScope};

/// A pluggable collective execution-time estimator.
pub trait CollectiveModel: std::fmt::Debug + Send + Sync {
    /// Estimated wall time of `req` on `cluster`.
    fn time(&self, req: &CommReq, cluster: &ClusterSpec) -> Seconds;

    /// Short identifier for reports.
    fn name(&self) -> &'static str;
}

/// Effective (utilization-scaled) link bandwidth at a level.
fn eff_bw(cluster: &ClusterSpec, level: CommLevel, util: f64) -> BytesPerSec {
    cluster.link_bw(level) * util
}

fn ring_factor(group: usize) -> f64 {
    debug_assert!(group >= 1);
    (group as f64 - 1.0) / group as f64
}

/// The default NCCL-style hierarchical model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchicalNccl;

impl HierarchicalNccl {
    /// Ring collective time for payload `s` over one channel.
    fn ring_one_level(
        s: f64,
        group: usize,
        bw: BytesPerSec,
        double: bool, // AllReduce moves 2x the payload of AllGather/RS
    ) -> Seconds {
        let factor = if double { 2.0 } else { 1.0 };
        Seconds::new(factor * s * ring_factor(group) / bw.value())
    }

    /// Hierarchical ring over both levels: an intra-node phase on the full
    /// payload and an inter-node phase on the 1/G shard
    /// (reduce-scatter -> inter all-reduce -> all-gather decomposition).
    fn ring_global(s: f64, cluster: &ClusterSpec, util: f64, double: bool) -> Seconds {
        let g = cluster.devices_per_node;
        let n = cluster.num_nodes;
        let factor = if double { 2.0 } else { 1.0 };
        let mut t = 0.0;
        if g > 1 {
            t += factor * s * ring_factor(g) / eff_bw(cluster, CommLevel::IntraNode, util).value();
        }
        if n > 1 {
            let shard = s / g as f64;
            t += factor * shard * ring_factor(n)
                / eff_bw(cluster, CommLevel::InterNode, util).value();
        }
        Seconds::new(t)
    }

    /// All2All: the NCCL implementation decomposes into point-to-point
    /// send/recv, so it is bound by the slowest interconnect level spanned.
    fn all_to_all(
        s: f64,
        group: usize,
        scope: CommScope,
        cluster: &ClusterSpec,
        util: f64,
    ) -> Seconds {
        let level = scope_level(scope, cluster);
        Seconds::new(s * ring_factor(group) / eff_bw(cluster, level, util).value())
    }

    /// Point-to-point send/recv (pipeline-stage boundaries): the full
    /// payload crosses one link of the spanned level.
    fn point_to_point(s: f64, scope: CommScope, cluster: &ClusterSpec, util: f64) -> Seconds {
        let level = scope_level(scope, cluster);
        Seconds::new(s / eff_bw(cluster, level, util).value())
    }
}

/// The interconnect level a scope's traffic is bound by.
fn scope_level(scope: CommScope, cluster: &ClusterSpec) -> CommLevel {
    match scope {
        CommScope::Level(l) => l,
        CommScope::Global => {
            if cluster.num_nodes > 1 {
                CommLevel::InterNode
            } else {
                CommLevel::IntraNode
            }
        }
    }
}

impl CollectiveModel for HierarchicalNccl {
    fn time(&self, req: &CommReq, cluster: &ClusterSpec) -> Seconds {
        let s = req.payload.value();
        if s == 0.0 || req.group_size <= 1 {
            return Seconds::ZERO;
        }
        let u = &cluster.utilization;
        match req.collective {
            CollectiveKind::AllToAll => {
                Self::all_to_all(s, req.group_size, req.scope, cluster, u.all_to_all)
            }
            CollectiveKind::PointToPoint => {
                Self::point_to_point(s, req.scope, cluster, u.all_to_all)
            }
            kind => {
                let double = kind == CollectiveKind::AllReduce;
                match req.scope {
                    CommScope::Global => Self::ring_global(s, cluster, u.ring_collective, double),
                    CommScope::Level(level) => Self::ring_one_level(
                        s,
                        req.group_size,
                        eff_bw(cluster, level, u.ring_collective),
                        double,
                    ),
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "hierarchical-nccl"
    }
}

/// Ablation model: every collective is bound by the slowest link spanned,
/// with no hierarchical decomposition. Overestimates ring collectives on
/// multi-node systems; useful for quantifying what the hierarchical model
/// buys (DESIGN.md section 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlatWorstLink;

impl CollectiveModel for FlatWorstLink {
    fn time(&self, req: &CommReq, cluster: &ClusterSpec) -> Seconds {
        let s = req.payload.value();
        if s == 0.0 || req.group_size <= 1 {
            return Seconds::ZERO;
        }
        let u = &cluster.utilization;
        let level = match req.scope {
            CommScope::Level(l) => l,
            CommScope::Global if cluster.num_nodes > 1 => CommLevel::InterNode,
            CommScope::Global => CommLevel::IntraNode,
        };
        let util = match req.collective {
            CollectiveKind::AllToAll | CollectiveKind::PointToPoint => u.all_to_all,
            _ => u.ring_collective,
        };
        if req.collective == CollectiveKind::PointToPoint {
            return Seconds::new(s / eff_bw(cluster, level, util).value());
        }
        let double = if req.collective == CollectiveKind::AllReduce {
            2.0
        } else {
            1.0
        };
        Seconds::new(
            double * s * ring_factor(req.group_size) / eff_bw(cluster, level, util).value(),
        )
    }

    fn name(&self) -> &'static str {
        "flat-worst-link"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_hw::units::ByteCount;
    use madmax_parallel::{comm::CommPosition, Urgency};

    fn req(kind: CollectiveKind, scope: CommScope, group: usize, mb: f64) -> CommReq {
        CommReq {
            collective: kind,
            scope,
            group_size: group,
            payload: ByteCount::new(mb * 1e6),
            urgency: Urgency::Blocking,
            position: CommPosition::AfterCompute,
            label: "test".to_owned(),
        }
    }

    #[test]
    fn allreduce_is_twice_allgather() {
        let sys = catalog::zionex_dlrm_system();
        let m = HierarchicalNccl;
        let ar = m.time(
            &req(CollectiveKind::AllReduce, CommScope::Global, 128, 100.0),
            &sys,
        );
        let ag = m.time(
            &req(CollectiveKind::AllGather, CommScope::Global, 128, 100.0),
            &sys,
        );
        let rs = m.time(
            &req(CollectiveKind::ReduceScatter, CommScope::Global, 128, 100.0),
            &sys,
        );
        assert!((ar.as_secs() / ag.as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(ag, rs);
    }

    #[test]
    fn a2a_bound_by_slowest_level() {
        // Global All2All on a multi-node system is bound by the NIC even
        // though NVLink is 12x faster.
        let sys = catalog::zionex_dlrm_system();
        let m = HierarchicalNccl;
        let global = m.time(
            &req(CollectiveKind::AllToAll, CommScope::Global, 128, 183.5),
            &sys,
        );
        let expected = 183.5e6 * (127.0 / 128.0) / (25e9 * sys.utilization.all_to_all);
        assert!((global.as_secs() - expected).abs() / expected < 1e-9);
        // Intra-node All2All uses NVLink and is much faster per byte.
        let intra = m.time(
            &req(
                CollectiveKind::AllToAll,
                CommScope::Level(CommLevel::IntraNode),
                8,
                183.5,
            ),
            &sys,
        );
        assert!(intra < global);
    }

    #[test]
    fn single_node_a2a_uses_nvlink() {
        let sys = catalog::zionex_dlrm_system().with_num_nodes(1);
        let m = HierarchicalNccl;
        let t = m.time(
            &req(CollectiveKind::AllToAll, CommScope::Global, 8, 100.0),
            &sys,
        );
        let expected = 100e6 * (7.0 / 8.0) / (300e9 * sys.utilization.all_to_all);
        assert!((t.as_secs() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn hierarchical_beats_flat_on_multinode_rings() {
        let sys = catalog::zionex_dlrm_system();
        let r = req(CollectiveKind::AllReduce, CommScope::Global, 128, 1256.0);
        let hier = HierarchicalNccl.time(&r, &sys);
        let flat = FlatWorstLink.time(&r, &sys);
        assert!(hier < flat, "hierarchical {hier} vs flat {flat}");
        // On one node they agree.
        let one = sys.with_num_nodes(1);
        let r1 = req(CollectiveKind::AllReduce, CommScope::Global, 8, 1256.0);
        let h1 = HierarchicalNccl.time(&r1, &one);
        let f1 = FlatWorstLink.time(&r1, &one);
        assert!((h1.as_secs() - f1.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn zero_payload_and_singleton_groups_are_free() {
        let sys = catalog::zionex_dlrm_system();
        let m = HierarchicalNccl;
        assert_eq!(
            m.time(
                &req(CollectiveKind::AllReduce, CommScope::Global, 128, 0.0),
                &sys
            ),
            Seconds::ZERO
        );
        assert_eq!(
            m.time(
                &req(CollectiveKind::AllReduce, CommScope::Global, 1, 10.0),
                &sys
            ),
            Seconds::ZERO
        );
    }

    #[test]
    fn time_scales_linearly_with_payload() {
        let sys = catalog::zionex_dlrm_system();
        let m = HierarchicalNccl;
        let t1 = m.time(
            &req(CollectiveKind::AllGather, CommScope::Global, 128, 100.0),
            &sys,
        );
        let t2 = m.time(
            &req(CollectiveKind::AllGather, CommScope::Global, 128, 200.0),
            &sys,
        );
        assert!((t2.as_secs() / t1.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_inter_node_speeds_up_global_collectives() {
        use madmax_hw::DeviceScaling;
        let sys = catalog::zionex_dlrm_system();
        let fast = sys.scaled(&DeviceScaling::inter_bw_only(10.0));
        let r = req(CollectiveKind::AllToAll, CommScope::Global, 128, 183.5);
        let m = HierarchicalNccl;
        assert!(m.time(&r, &fast) < m.time(&r, &sys));
        let speedup = m.time(&r, &sys) / m.time(&r, &fast);
        assert!((speedup - 10.0).abs() < 1e-6);
    }
}
