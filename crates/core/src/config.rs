//! JSON configuration interface (Section IV-A): "Users have to provide
//! JSON files for: 1) model architecture ..., 2) distributed system
//! specifications ..., and 3) task and parallelization strategy".
//!
//! Every spec type in the workspace derives serde, so configs round-trip
//! losslessly; this module adds the file-level glue. Experiment specs
//! written before the `Workload` redesign (a `"task"` field holding a
//! legacy `Task` variant) still parse: the legacy variant names are mapped
//! onto workloads here, even though the in-code `Task` shim itself has
//! been removed.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{Plan, Workload};

/// Workload + parallelization strategy, the third of the paper's three
/// JSON inputs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentSpec {
    /// The workload to simulate (pre-training / fine-tuning / serving).
    pub workload: Workload,
    /// The workload-to-system mapping.
    pub plan: Plan,
}

/// Maps a pre-`Workload` `"task"` value (`"Pretraining"`, `"Inference"`,
/// or `{"Finetuning": {"trainable": [...]}}`) onto a [`Workload`]. The
/// in-code `Task` enum is gone; this keeps the on-disk schema loading.
fn workload_from_legacy_task(v: &serde::Value) -> Result<Workload, serde::Error> {
    if let serde::Value::Str(s) = v {
        return match s.as_str() {
            "Pretraining" => Ok(Workload::pretrain()),
            "Inference" => Ok(Workload::inference()),
            other => Err(serde::Error::msg(format!("unknown legacy task {other}"))),
        };
    }
    let map = v
        .as_map()
        .ok_or_else(|| serde::Error::msg("expected string or map for legacy task"))?;
    let payload = map
        .iter()
        .find(|(key, _)| key == "Finetuning")
        .map(|(_, val)| val)
        .ok_or_else(|| serde::Error::msg("unknown legacy task variant"))?;
    let fields = payload
        .as_map()
        .ok_or_else(|| serde::Error::msg("expected map for Finetuning"))?;
    let trainable = serde::field(fields, "trainable")?;
    Ok(Workload::Finetune {
        trainable: Deserialize::from_value(trainable)?,
    })
}

impl Deserialize for ExperimentSpec {
    /// Accepts the current schema (`"workload"`) and the pre-`Workload`
    /// schema (`"task"` with a legacy `Task` variant).
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::msg("expected map for ExperimentSpec"))?;
        let field = |k: &str| map.iter().find(|(key, _)| key == k).map(|(_, val)| val);
        let workload = match (field("workload"), field("task")) {
            (Some(w), _) => Workload::from_value(w)?,
            (None, Some(t)) => workload_from_legacy_task(t)?,
            (None, None) => return Err(serde::Error::msg("missing field workload")),
        };
        let plan = field("plan")
            .ok_or_else(|| serde::Error::msg("missing field plan"))
            .and_then(Plan::from_value)?;
        Ok(Self { workload, plan })
    }
}

/// A fully-specified simulation loaded from configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Model architecture.
    pub model: ModelArch,
    /// Distributed system.
    pub system: ClusterSpec,
    /// Workload + plan.
    pub experiment: ExperimentSpec,
}

/// Errors loading or saving configuration files.
#[derive(Debug)]
pub enum ConfigError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Parse(serde_json::Error),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Io(e) => write!(f, "config I/O error: {e}"),
            ConfigError::Parse(e) => write!(f, "config parse error: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Io(e) => Some(e),
            ConfigError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ConfigError {
    fn from(e: std::io::Error) -> Self {
        ConfigError::Io(e)
    }
}

impl From<serde_json::Error> for ConfigError {
    fn from(e: serde_json::Error) -> Self {
        ConfigError::Parse(e)
    }
}

impl SimulationConfig {
    /// Loads the three JSON files the paper describes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for missing files or schema mismatches.
    pub fn from_json_files(
        model: impl AsRef<Path>,
        system: impl AsRef<Path>,
        experiment: impl AsRef<Path>,
    ) -> Result<Self, ConfigError> {
        Ok(Self {
            model: serde_json::from_str(&fs::read_to_string(model)?)?,
            system: serde_json::from_str(&fs::read_to_string(system)?)?,
            experiment: serde_json::from_str(&fs::read_to_string(experiment)?)?,
        })
    }

    /// Parses a single combined JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Parse`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, ConfigError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serializes to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Parse`] if serialization fails (it cannot for
    /// well-formed specs).
    pub fn to_json(&self) -> Result<String, ConfigError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Writes the three JSON files to a directory
    /// (`model.json`, `system.json`, `experiment.json`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on I/O failure.
    pub fn write_split(&self, dir: impl AsRef<Path>) -> Result<(), ConfigError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(
            dir.join("model.json"),
            serde_json::to_string_pretty(&self.model)?,
        )?;
        fs::write(
            dir.join("system.json"),
            serde_json::to_string_pretty(&self.system)?,
        )?;
        fs::write(
            dir.join("experiment.json"),
            serde_json::to_string_pretty(&self.experiment)?,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    fn sample() -> SimulationConfig {
        let model = ModelId::DlrmB.build();
        let plan = Plan::fsdp_baseline(&model);
        SimulationConfig {
            model,
            system: catalog::zionex_dlrm_system(),
            experiment: ExperimentSpec {
                workload: Workload::pretrain(),
                plan,
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let cfg = sample();
        let js = cfg.to_json().unwrap();
        let back = SimulationConfig::from_json(&js).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn split_files_round_trip() {
        let cfg = sample();
        let dir = std::env::temp_dir().join("madmax_config_test");
        cfg.write_split(&dir).unwrap();
        let back = SimulationConfig::from_json_files(
            dir.join("model.json"),
            dir.join("system.json"),
            dir.join("experiment.json"),
        )
        .unwrap();
        assert_eq!(cfg, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_optional_pipeline_field_parses_as_none() {
        // Hand-authored configs predating the pipeline dimension omit the
        // key entirely; `Option` fields must default to `None` (real-serde
        // behavior, preserved by the vendored stub).
        let cfg = sample();
        let js = cfg.to_json().unwrap();
        assert!(js.contains("\"pipeline\": null"), "{js}");
        let stripped = js.replace("\"pipeline\": null,", "");
        assert!(!stripped.contains("pipeline"));
        let back = SimulationConfig::from_json(&stripped).unwrap();
        assert_eq!(back.experiment.plan.pipeline, None);
        assert_eq!(back, cfg);
    }

    #[test]
    fn legacy_task_field_still_parses() {
        // Configs emitted before the Workload redesign carry
        // `"task": "Pretraining"` (or a Finetuning/Inference variant);
        // they must keep loading, mapped through the deprecated-Task
        // shim.
        let cfg = sample();
        let js = cfg.to_json().unwrap();
        let legacy = js.replace("\"workload\": \"Pretrain\"", "\"task\": \"Pretraining\"");
        assert_ne!(js, legacy, "substitution must have applied");
        let back = SimulationConfig::from_json(&legacy).unwrap();
        assert_eq!(back, cfg);
        // Legacy inference maps onto the prefill-only serve workload.
        let legacy_infer = js.replace("\"workload\": \"Pretrain\"", "\"task\": \"Inference\"");
        let back = SimulationConfig::from_json(&legacy_infer).unwrap();
        assert_eq!(back.experiment.workload, Workload::inference());
    }

    #[test]
    fn parse_error_is_reported() {
        let err = SimulationConfig::from_json("{not json").unwrap_err();
        assert!(matches!(err, ConfigError::Parse(_)));
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn loaded_config_is_runnable() {
        let cfg = sample();
        let js = cfg.to_json().unwrap();
        let cfg = SimulationConfig::from_json(&js).unwrap();
        let report = crate::perf::run_flat_default(
            &cfg.model,
            &cfg.system,
            &cfg.experiment.plan,
            &cfg.experiment.workload,
        )
        .unwrap();
        assert!(report.iteration_time.as_ms() > 0.0);
    }
}
