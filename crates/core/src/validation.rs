//! The paper's validation experiments (Table I, Figs. 7-9): measured
//! reference values from real large-scale training runs, and helpers that
//! compare MAD-Max's predictions against them.
//!
//! The measured side of every comparison is inherited from the paper
//! itself (the raw production traces are Meta-internal); this module
//! reproduces the *model* side and reports prediction accuracy the same
//! way the paper does: `accuracy = 1 - |measured - predicted| / measured`.

use madmax_hw::catalog;
use madmax_hw::units::Seconds;
use madmax_model::{ModelArch, ModelId};
use madmax_parallel::{Plan, PlanError, Workload};

use crate::metrics::IterationReport;
use crate::perf::run_flat_default;

/// Prediction accuracy as the paper reports it (in percent).
pub fn accuracy_pct(measured: f64, predicted: f64) -> f64 {
    (1.0 - (measured - predicted).abs() / measured) * 100.0
}

/// One validation comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationPoint {
    /// Workload / metric description.
    pub metric: String,
    /// Published measured value.
    pub measured: f64,
    /// Value the paper's own model predicted (where reported).
    pub paper_model: Option<f64>,
    /// Our reproduction's prediction.
    pub predicted: f64,
    /// Unit label for display.
    pub unit: &'static str,
}

impl ValidationPoint {
    /// Accuracy of our prediction vs the measurement, in percent.
    pub fn accuracy(&self) -> f64 {
        accuracy_pct(self.measured, self.predicted)
    }
}

/// Measured reference values from Table I.
pub mod reference {
    /// DLRM-A serialized iteration time on 128 A100s (ms).
    pub const DLRM_A_SERIALIZED_MS: f64 = 67.40;
    /// DLRM-A % communication exposed.
    pub const DLRM_A_EXPOSED_PCT: f64 = 82.37;
    /// DLRM-A training throughput (MQPS), from Mudigere et al.
    pub const DLRM_A_MQPS: f64 = 1.2;
    /// DLRM-B training throughput (MQPS).
    pub const DLRM_B_MQPS: f64 = 3.4;
    /// LLaMA-70B aggregate GPU hours for 306k steps on 2048 A100s.
    pub const LLAMA_70B_GPU_HOURS_306K: f64 = 1_022_361.0;
    /// LLaMA training steps used in the GPU-hours validation.
    pub const LLAMA_70B_STEPS: f64 = 306_000.0;
    /// Days to train 1.4T tokens (Touvron et al. report ~21 days).
    pub const LLAMA_DAYS_1_4T_TOKENS: f64 = 20.83;
    /// Total training tokens for the days-to-train validation.
    pub const LLAMA_TOTAL_TOKENS: f64 = 1.4e12;
    /// The paper's own model prediction: DLRM-A serialized time (ms).
    pub const PAPER_DLRM_A_SERIALIZED_MS: f64 = 65.30;
    /// Paper-model % exposed for DLRM-A.
    pub const PAPER_DLRM_A_EXPOSED_PCT: f64 = 75.46;
    /// Paper-model DLRM-A throughput.
    pub const PAPER_DLRM_A_MQPS: f64 = 1.21;
    /// Paper-model DLRM-B throughput.
    pub const PAPER_DLRM_B_MQPS: f64 = 3.06;
    /// Paper-model LLaMA GPU-hours.
    pub const PAPER_LLAMA_GPU_HOURS: f64 = 863_397.0;
    /// Paper-model LLaMA days.
    pub const PAPER_LLAMA_DAYS: f64 = 19.21;
    /// Fig. 9: observed communication overlap of the prefetch-optimized
    /// FSDP LLaMA run (%), vs the paper model's 93%.
    pub const FSDP_PREFETCH_OVERLAP_OBSERVED_PCT: f64 = 98.0;
    /// Fig. 9: the paper model's predicted overlap (%).
    pub const PAPER_FSDP_PREFETCH_OVERLAP_PCT: f64 = 93.0;
}

/// Simulates DLRM-A pre-training on the 128-GPU ZionEX system with the
/// production mapping (sharded embeddings + FSDP dense).
///
/// # Errors
///
/// Propagates [`PlanError`] if the baseline mapping were infeasible
/// (it is not).
pub fn dlrm_a_production_report() -> Result<IterationReport, PlanError> {
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let plan = Plan::fsdp_baseline(&model);
    run_flat_default(&model, &sys, &plan, &Workload::pretrain())
}

/// Simulates DLRM-B pre-training on the same platform.
///
/// # Errors
///
/// Propagates [`PlanError`] if the baseline mapping were infeasible.
pub fn dlrm_b_production_report() -> Result<IterationReport, PlanError> {
    let model = ModelId::DlrmB.build();
    let sys = catalog::zionex_dlrm_system();
    let plan = Plan::fsdp_baseline(&model);
    run_flat_default(&model, &sys, &plan, &Workload::pretrain())
}

/// Simulates LLaMA-70B pre-training on the 2048-GPU A100-80GB system.
///
/// # Errors
///
/// Propagates [`PlanError`] if the baseline mapping were infeasible.
pub fn llama_70b_report() -> Result<(ModelArch, IterationReport), PlanError> {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let plan = Plan::fsdp_baseline(&model);
    let r = run_flat_default(&model, &sys, &plan, &Workload::pretrain())?;
    Ok((model, r))
}

/// Aggregate GPU-hours to run `steps` iterations of `iter_time` on
/// `devices` accelerators.
pub fn gpu_hours(iter_time: Seconds, steps: f64, devices: usize) -> f64 {
    iter_time.as_hours() * steps * devices as f64
}

/// Produces the full Table I comparison.
///
/// # Errors
///
/// Propagates simulation errors (none expected for the baselines).
pub fn table_i() -> Result<Vec<ValidationPoint>, PlanError> {
    use reference as r;
    let a = dlrm_a_production_report()?;
    let b = dlrm_b_production_report()?;
    let (llama, l) = llama_70b_report()?;
    let llama_steps_1_4t = r::LLAMA_TOTAL_TOKENS / llama.tokens_per_iteration();

    Ok(vec![
        ValidationPoint {
            metric: "DLRM-A serialized iteration time".into(),
            measured: r::DLRM_A_SERIALIZED_MS,
            paper_model: Some(r::PAPER_DLRM_A_SERIALIZED_MS),
            predicted: a.serialized_time.as_ms(),
            unit: "ms",
        },
        ValidationPoint {
            metric: "DLRM-A % communication exposed".into(),
            measured: r::DLRM_A_EXPOSED_PCT,
            paper_model: Some(r::PAPER_DLRM_A_EXPOSED_PCT),
            predicted: a.exposed_fraction() * 100.0,
            unit: "%",
        },
        ValidationPoint {
            metric: "DLRM-A throughput".into(),
            measured: r::DLRM_A_MQPS,
            paper_model: Some(r::PAPER_DLRM_A_MQPS),
            predicted: a.mqps(),
            unit: "MQPS",
        },
        ValidationPoint {
            metric: "DLRM-B throughput".into(),
            measured: r::DLRM_B_MQPS,
            paper_model: Some(r::PAPER_DLRM_B_MQPS),
            predicted: b.mqps(),
            unit: "MQPS",
        },
        ValidationPoint {
            metric: "LLaMA-70B GPU hours (306k steps, 2048 A100s)".into(),
            measured: r::LLAMA_70B_GPU_HOURS_306K,
            paper_model: Some(r::PAPER_LLAMA_GPU_HOURS),
            predicted: gpu_hours(l.iteration_time, r::LLAMA_70B_STEPS, 2048),
            unit: "hrs",
        },
        ValidationPoint {
            metric: "LLaMA days to train 1.4T tokens".into(),
            measured: r::LLAMA_DAYS_1_4T_TOKENS,
            paper_model: Some(r::PAPER_LLAMA_DAYS),
            predicted: (l.iteration_time * llama_steps_1_4t).as_days(),
            unit: "days",
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_formula_matches_paper() {
        // 67.40 measured vs 65.30 predicted -> 96.89%.
        assert!((accuracy_pct(67.40, 65.30) - 96.88).abs() < 0.05);
    }

    #[test]
    fn table_i_rows_exist_and_are_accurate() {
        let rows = table_i().unwrap();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.accuracy() > 80.0,
                "{}: measured {} vs predicted {} ({:.1}%)",
                row.metric,
                row.measured,
                row.predicted,
                row.accuracy()
            );
        }
    }
}
