//! The pricing phase of the flat engine: a [`CostTable`] of per-group,
//! per-strategy compute and collective costs, computed once and composed
//! into traces by the assembly phase ([`CostTable::assemble_into`]).
//!
//! Pricing is what makes candidate evaluation expensive — every GEMM
//! duration and every collective's hierarchical cost-model invocation —
//! yet across a design-space search almost all of it is shared: candidates
//! differ only in which [`HierStrategy`] each layer class uses. The table
//! therefore caches, per layer group:
//!
//! - strategy-independent compute durations (forward GEMM/lookup time,
//!   backward time with the recompute factor applied), and
//! - per-strategy priced collectives ([`PricedComm`]) with pre-rendered
//!   shared labels.
//!
//! `madmax-dse` computes one table per search and shares it read-only
//! across all worker threads (the table is `Sync`); each candidate's
//! evaluation then assembles a trace from cached costs without touching
//! the collective model or allocating op names.
//!
//! # Sharing contract
//!
//! A table is priced for one `(model, cluster, task)` combination and one
//! set of [`PlanOptions`] (checkpointing and wire precision scale the
//! priced costs; prefetch, optimizer, and memory knobs scale the cached
//! memory contributions). Every plan assembled from the table must carry
//! identical options, modulo `ignore_memory_limits` which only gates the
//! feasibility check — [`CostTable::ensure_plan`],
//! [`CostTable::assemble_into`], and [`CostTable::memory_for`] assert
//! this — and must only use strategies previously priced with
//! `ensure_plan`. Memory feasibility is part of the table too:
//! [`CostTable::memory_for`] folds cached per-(group, strategy) footprint
//! contributions into exactly `madmax_parallel::memory_per_device`'s
//! breakdown.

use std::sync::Arc;

use madmax_hw::units::{ByteCount, Seconds};
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, LayerKind, ModelArch};
use madmax_parallel::comm::CommPosition;
use madmax_parallel::{
    derive_layer_comm, CollectiveKind, CommReq, HierStrategy, MemoryBreakdown, Plan, PlanError,
    PlanOptions, Task, Urgency,
};

use crate::collective::CollectiveModel;
use crate::compute::{
    backward_flops_factor, compute_time, device_flops_fwd, device_lookup_bytes, lookup_time,
    optimizer_time, UtilizationModel,
};
use crate::trace::{Deps, OpId, OpKind, OpName, PassDir, Phase, StreamId, Trace, TraceOp};

/// One collective, priced and labeled: everything assembly needs to emit
/// the op without consulting the cost model again.
#[derive(Debug, Clone)]
pub struct PricedComm {
    /// Collective primitive.
    pub kind: CollectiveKind,
    /// Stream semantics (blocking / prefetchable / deferred).
    pub urgency: Urgency,
    /// Placement relative to the layer's compute op.
    pub position: CommPosition,
    /// Modeled execution time on the table's cluster.
    pub duration: Seconds,
    /// Shared display label, e.g. `"embedding_tables.a2a"`.
    pub label: Arc<str>,
}

/// Priced collectives of one layer group under one strategy, split by
/// pass exactly like `madmax_parallel::LayerCommPlan`, plus the group's
/// memory-footprint contributions under that strategy. Zero-payload
/// requirements are dropped at pricing time (the trace builder always
/// skipped them).
#[derive(Debug, Clone, Default)]
pub struct StrategyCosts {
    /// Forward-pass collectives (per layer instance).
    pub forward: Vec<PricedComm>,
    /// Backward-pass collectives on the gradient-flow critical path.
    pub backward: Vec<PricedComm>,
    /// Deferred weight-gradient collectives.
    pub grad: Vec<PricedComm>,
    /// Sharded/replicated parameter bytes of the whole group.
    pub mem_params: ByteCount,
    /// Gradient-buffer bytes when the group trains (zero for sparse
    /// embedding gradients).
    pub mem_grads: ByteCount,
    /// Optimizer-state bytes when the group trains.
    pub mem_optimizer: ByteCount,
    /// Transient FSDP gather buffer (zero when the strategy has no FSDP
    /// level; folded with `max` across groups).
    pub mem_fsdp_transient: ByteCount,
    /// Whether the strategy may be applied to this group's class at all
    /// (`HierStrategy::allowed_for`); checked during the memory fold so
    /// invalid candidates error exactly like `validate_strategies`.
    pub allowed: bool,
}

/// Cached costs and metadata of one layer group.
#[derive(Debug, Clone)]
struct GroupCosts {
    class: LayerClass,
    repeat: usize,
    /// HBM-bound embedding group (lookup compute, All2All side chain).
    is_embedding: bool,
    /// MLP group: a side-branch input that does not consume the pending
    /// embedding outputs (the feature-combination join happens later).
    is_mlp: bool,
    /// Whether the table's task trains this group's class.
    trains: bool,
    name: Arc<str>,
    lookup_label: Arc<str>,
    scatter_label: Arc<str>,
    /// Per-instance forward compute (GEMM time, or lookup time for
    /// embedding groups; the backward gradient scatter reuses it).
    fwd_compute: Seconds,
    /// Per-instance backward compute with the recompute factor applied
    /// (unused for embedding groups).
    bwd_compute: Seconds,
    /// Retained/working-set activation bytes of one instance
    /// (strategy-independent).
    mem_activations: ByteCount,
    by_strategy: Vec<(HierStrategy, StrategyCosts)>,
}

impl GroupCosts {
    fn costs_for(&self, strategy: HierStrategy) -> &StrategyCosts {
        self.by_strategy
            .iter()
            .find(|(s, _)| *s == strategy)
            .map(|(_, c)| c)
            .unwrap_or_else(|| {
                panic!(
                    "cost table has no entry for {}/{strategy}; \
                     call CostTable::ensure_plan for every plan first",
                    self.name
                )
            })
    }
}

/// Shared, read-only cost cache for the flat engine (see the module docs
/// for the sharing contract).
#[derive(Debug)]
pub struct CostTable<'a> {
    model: &'a ModelArch,
    cluster: &'a ClusterSpec,
    task: Task,
    options: PlanOptions,
    collectives: &'a dyn CollectiveModel,
    local_batch: f64,
    groups: Vec<GroupCosts>,
    /// Layer classes present in the model, each with the indices of its
    /// groups (first-appearance order).
    class_groups: Vec<(LayerClass, Vec<usize>)>,
}

/// Every option except `ignore_memory_limits` (which only gates the
/// feasibility check, read per plan) must match between the table and
/// every plan priced or assembled through it.
fn pricing_options_match(a: &PlanOptions, b: &PlanOptions) -> bool {
    let neutral = |o: &PlanOptions| {
        let mut o = *o;
        o.ignore_memory_limits = false;
        o
    };
    neutral(a) == neutral(b)
}

impl<'a> CostTable<'a> {
    /// Prices the strategy-independent costs of every layer group; call
    /// [`CostTable::ensure_plan`] to add per-strategy collective costs.
    pub fn new(
        model: &'a ModelArch,
        cluster: &'a ClusterSpec,
        task: Task,
        options: PlanOptions,
        collectives: &'a dyn CollectiveModel,
        utilization: UtilizationModel,
    ) -> Self {
        let local_batch = model.global_batch as f64 / cluster.total_devices() as f64;
        let groups = model
            .groups
            .iter()
            .map(|group| {
                let is_embedding = group.kind.is_memory_bound();
                let (fwd_compute, bwd_compute) = if is_embedding {
                    let t = lookup_time(device_lookup_bytes(group, model, cluster), cluster);
                    (t, t)
                } else {
                    // `device_flops_fwd` is strategy-independent (balanced
                    // work); price with the baseline strategy handle.
                    let strategy = HierStrategy::flat(madmax_parallel::Strategy::Fsdp);
                    let flops = device_flops_fwd(group, model, cluster, &strategy, local_batch);
                    let recompute = options.activation_checkpointing
                        && matches!(
                            group.kind,
                            LayerKind::TransformerBlock(_) | LayerKind::Moe(_)
                        );
                    (
                        compute_time(flops, model, cluster, &utilization),
                        compute_time(
                            flops * backward_flops_factor(recompute),
                            model,
                            cluster,
                            &utilization,
                        ),
                    )
                };
                let mem_activations = group.kind.activation_bytes_per_sample(
                    model.context_length,
                    model.compute_dtype,
                    options.activation_checkpointing,
                ) * local_batch;
                GroupCosts {
                    class: group.class,
                    repeat: group.repeat,
                    is_embedding,
                    is_mlp: matches!(group.kind, LayerKind::Mlp(_)),
                    trains: task.trains(group.class),
                    name: Arc::from(group.name.as_str()),
                    lookup_label: Arc::from(format!("{}.lookup", group.name).as_str()),
                    scatter_label: Arc::from(format!("{}.grad_scatter", group.name).as_str()),
                    fwd_compute,
                    bwd_compute,
                    mem_activations,
                    by_strategy: Vec::new(),
                }
            })
            .collect();
        let mut class_groups: Vec<(LayerClass, Vec<usize>)> = Vec::new();
        for (gi, group) in model.groups.iter().enumerate() {
            match class_groups.iter_mut().find(|(c, _)| *c == group.class) {
                Some((_, v)) => v.push(gi),
                None => class_groups.push((group.class, vec![gi])),
            }
        }
        Self {
            model,
            cluster,
            task,
            options,
            collectives,
            local_batch,
            groups,
            class_groups,
        }
    }

    /// The model this table was priced for.
    pub fn model(&self) -> &'a ModelArch {
        self.model
    }

    /// The cluster this table was priced for.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.cluster
    }

    /// The task this table was priced for.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// Prices (once) the collective costs for each layer group under the
    /// strategies `plan` assigns. Safe to call with every candidate of a
    /// search; already-priced strategies are skipped.
    ///
    /// # Panics
    ///
    /// Panics when `plan`'s pricing-relevant options diverge from the
    /// table's (see the module docs).
    pub fn ensure_plan(&mut self, plan: &Plan) {
        assert!(
            pricing_options_match(&self.options, &plan.options),
            "plan options diverge from the cost table's pricing context"
        );
        for ci in 0..self.class_groups.len() {
            let class = self.class_groups[ci].0;
            let strategy = plan.strategy_for(class);
            // Groups of one class are always priced together, so checking
            // the class's first group suffices.
            let first = self.class_groups[ci].1[0];
            if self.groups[first]
                .by_strategy
                .iter()
                .any(|(s, _)| *s == strategy)
            {
                continue;
            }
            for i in 0..self.class_groups[ci].1.len() {
                let gi = self.class_groups[ci].1[i];
                let costs = self.price_group(gi, strategy, plan);
                self.groups[gi].by_strategy.push((strategy, costs));
            }
        }
    }

    /// Prices one layer group under one strategy (collectives + memory
    /// contributions), mirroring `TraceBuilder` and
    /// `madmax_parallel::memory_per_device` exactly.
    fn price_group(&self, gi: usize, strategy: HierStrategy, plan: &Plan) -> StrategyCosts {
        let group = &self.model.groups[gi];
        let comm = derive_layer_comm(
            group,
            plan,
            self.model,
            self.cluster,
            &self.task,
            self.local_batch,
        );
        let price = |reqs: &[CommReq]| -> Vec<PricedComm> {
            reqs.iter()
                .filter(|r| !r.payload.is_zero())
                .map(|r| PricedComm {
                    kind: r.collective,
                    urgency: r.urgency,
                    position: r.position,
                    duration: self.collectives.time(r, self.cluster),
                    label: Arc::from(r.label.as_str()),
                })
                .collect()
        };

        // Memory contributions, mirroring
        // `madmax_parallel::memory_per_device`'s per-group terms.
        let shard = strategy.param_shard_factor(self.cluster);
        let p_inst = madmax_parallel::comm::instance_param_bytes(group, self.model);
        let p_group = p_inst * group.repeat as f64;
        let sparse = matches!(group.kind, LayerKind::EmbeddingBag(_));
        let opt = self.options.optimizer_for(group.class);
        let mem_optimizer = ByteCount::new(opt.state_bytes(group.kind.params(), &group.kind))
            * group.repeat as f64
            / shard;
        let has_fsdp = strategy
            .levels(self.cluster)
            .iter()
            .any(|l| l.strategy == madmax_parallel::Strategy::Fsdp);
        let mem_fsdp_transient = if has_fsdp {
            let tp_part = strategy.compute_shard_factor(self.cluster);
            // FSDP's gather unit is the largest parameter tensor it
            // materializes at once: a whole dense layer, but only one
            // expert for MoE layers.
            let unit = match &group.kind {
                LayerKind::Moe(m) => p_inst / m.num_experts as f64,
                _ => p_inst,
            };
            let buffers = if self.options.fsdp_prefetch { 2.0 } else { 1.0 };
            unit / tp_part * buffers
        } else {
            ByteCount::ZERO
        };

        StrategyCosts {
            forward: price(&comm.forward),
            backward: price(&comm.backward),
            grad: price(&comm.grad),
            mem_params: p_group / shard,
            mem_grads: if sparse {
                ByteCount::ZERO
            } else {
                p_group / shard
            },
            mem_optimizer,
            mem_fsdp_transient,
            allowed: strategy.allowed_for(group.class),
        }
    }

    /// Validates `plan`'s memory feasibility from cached per-(group,
    /// strategy) footprint contributions, reproducing
    /// `madmax_parallel::check_memory`'s breakdown and error values
    /// exactly without re-deriving any footprint.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidStrategy`] for class/strategy mismatches (same
    /// first-offender as `Plan::validate_strategies`);
    /// [`PlanError::OutOfMemory`] when the footprint exceeds usable HBM
    /// and the plan does not ignore memory limits.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CostTable::assemble_into`].
    pub fn memory_for(&self, plan: &Plan) -> Result<MemoryBreakdown, PlanError> {
        debug_assert!(
            pricing_options_match(&self.options, &plan.options),
            "plan options diverge from the cost table's pricing context"
        );
        let training = self.task.has_backward();
        let mut out = MemoryBreakdown::default();
        for g in &self.groups {
            let sc = g.costs_for(plan.strategy_for(g.class));
            if !sc.allowed {
                // Groups are visited in model order, so the first
                // offender matches `Plan::validate_strategies` exactly.
                return Err(PlanError::InvalidStrategy {
                    class: g.class,
                    strategy: plan.strategy_for(g.class),
                });
            }
            out.params += sc.mem_params;
            if training && g.trains {
                out.grads += sc.mem_grads;
                out.optimizer += sc.mem_optimizer;
                out.activations += g.mem_activations * g.repeat as f64;
            } else {
                out.activations = out.activations.max(g.mem_activations);
            }
            out.fsdp_transient = out.fsdp_transient.max(sc.mem_fsdp_transient);
        }
        if plan.options.ignore_memory_limits {
            return Ok(out);
        }
        let usable = plan.options.memory.usable(self.cluster.device.hbm_capacity);
        if out.total() > usable {
            return Err(PlanError::OutOfMemory {
                required: out.total(),
                usable,
            });
        }
        Ok(out)
    }

    /// The assembly phase: builds the full per-iteration trace for `plan`
    /// into `trace` (cleared first), composing cached costs.
    ///
    /// This reproduces `TraceBuilder`'s op stream exactly — same ops, same
    /// order, same durations, same dependencies — without invoking the
    /// compute or collective cost models and without allocating op names
    /// or (≤ 2-entry) dependency lists.
    ///
    /// # Panics
    ///
    /// Panics when a strategy of `plan` was not priced via
    /// [`CostTable::ensure_plan`]; debug builds also assert that `plan`'s
    /// options match the table's pricing context.
    pub fn assemble_into(&self, plan: &Plan, trace: &mut Trace) {
        debug_assert!(
            pricing_options_match(&self.options, &plan.options),
            "plan options diverge from the cost table's pricing context"
        );
        trace.clear();
        let prefetch = plan.options.fsdp_prefetch;

        // ---------------- Forward pass ----------------
        let mut last_out: Option<OpId> = None; // dense-chain tail
        let mut pending_join = Deps::none(); // embedding-side outputs
        let mut last_compute: Option<OpId> = None; // for just-in-time gathers

        for g in &self.groups {
            let sc = g.costs_for(plan.strategy_for(g.class));
            for inst in 0..g.repeat {
                let inst_tag = (g.repeat > 1).then_some(inst as u32);

                // Input dependencies of this layer's compute.
                let mut base_deps = Deps::none();
                if !g.is_embedding {
                    if let Some(l) = last_out {
                        base_deps.push(l);
                    }
                    if !g.is_mlp && !pending_join.is_empty() {
                        // Feature-combination stage: consume embedding
                        // outputs.
                        base_deps.extend_from(&pending_join);
                        pending_join.clear();
                    }
                }

                // Pre-compute collectives (FSDP gathers, MoE dispatch).
                let mut gate_deps = Deps::none();
                for pc in sc
                    .forward
                    .iter()
                    .filter(|r| r.position == CommPosition::BeforeCompute)
                {
                    let deps = match pc.urgency {
                        Urgency::Prefetchable if prefetch => Deps::none(),
                        Urgency::Prefetchable => last_compute.into_iter().collect(),
                        _ => base_deps.clone(),
                    };
                    let id = trace.push(TraceOp {
                        name: OpName::flat(PassDir::Fwd, inst_tag, &pc.label),
                        stream: StreamId::Comm,
                        kind: OpKind::Collective { kind: pc.kind },
                        phase: Phase::Forward,
                        duration: pc.duration,
                        deps,
                    });
                    if pc.urgency == Urgency::Blocking {
                        // e.g. MoE dispatch carries the layer input.
                        base_deps = Deps::one(id);
                    } else {
                        gate_deps.push(id);
                    }
                }

                // The layer's compute (or HBM lookup) op.
                let mut deps = base_deps;
                deps.extend_from(&gate_deps);
                deps.sort_dedup();
                let compute_id = if g.is_embedding {
                    trace.push(TraceOp {
                        name: OpName::flat(PassDir::Fwd, inst_tag, &g.lookup_label),
                        stream: StreamId::Compute,
                        kind: OpKind::Lookup,
                        phase: Phase::Forward,
                        duration: g.fwd_compute,
                        deps,
                    })
                } else {
                    trace.push(TraceOp {
                        name: OpName::flat(PassDir::Fwd, inst_tag, &g.name),
                        stream: StreamId::Compute,
                        kind: OpKind::Gemm { class: g.class },
                        phase: Phase::Forward,
                        duration: g.fwd_compute,
                        deps,
                    })
                };
                last_compute = Some(compute_id);

                // Post-compute blocking collectives (TP AllReduce,
                // embedding All2All, MoE combine).
                let mut out = compute_id;
                for pc in sc
                    .forward
                    .iter()
                    .filter(|r| r.position == CommPosition::AfterCompute)
                {
                    out = trace.push(TraceOp {
                        name: OpName::flat(PassDir::Fwd, inst_tag, &pc.label),
                        stream: StreamId::Comm,
                        kind: OpKind::Collective { kind: pc.kind },
                        phase: Phase::Forward,
                        duration: pc.duration,
                        deps: Deps::one(out),
                    });
                }

                if g.is_embedding {
                    pending_join.push(out);
                } else {
                    last_out = Some(out);
                }
            }
        }

        let final_fwd = last_out
            .or_else(|| pending_join.as_slice().last().copied())
            .unwrap_or(OpId(0));

        // ---------------- Backward pass ----------------
        if self.task.has_backward() && !trace.is_empty() {
            let mut last_bwd = final_fwd;
            let mut grad_ops = Deps::none();

            for g in self.groups.iter().rev() {
                if !g.trains {
                    continue; // frozen layers' gradient work is omitted
                }
                let sc = g.costs_for(plan.strategy_for(g.class));

                for inst in (0..g.repeat).rev() {
                    let inst_tag = (g.repeat > 1).then_some(inst as u32);

                    if g.is_embedding {
                        // Gradients are routed back to shard owners, then
                        // scattered into HBM; both off the dense critical
                        // path.
                        let mut dep = Deps::one(last_bwd);
                        for pc in &sc.grad {
                            let id = trace.push(TraceOp {
                                name: OpName::flat(PassDir::Bwd, inst_tag, &pc.label),
                                stream: StreamId::GradComm,
                                kind: OpKind::Collective { kind: pc.kind },
                                phase: Phase::Backward,
                                duration: pc.duration,
                                deps: dep.clone(),
                            });
                            dep = Deps::one(id);
                        }
                        let scatter = trace.push(TraceOp {
                            name: OpName::flat(PassDir::Bwd, inst_tag, &g.scatter_label),
                            stream: StreamId::Compute,
                            kind: OpKind::Lookup,
                            phase: Phase::Backward,
                            duration: g.fwd_compute,
                            deps: dep,
                        });
                        grad_ops.push(scatter);
                        continue;
                    }

                    // Pre-compute backward collectives (FSDP re-gather,
                    // MoE combine_bwd).
                    let mut base_deps = Deps::one(last_bwd);
                    let mut gate_deps = Deps::none();
                    for pc in sc
                        .backward
                        .iter()
                        .filter(|r| r.position == CommPosition::BeforeCompute)
                    {
                        let deps = match pc.urgency {
                            Urgency::Prefetchable if prefetch => Deps::none(),
                            Urgency::Prefetchable => Deps::one(last_bwd),
                            _ => base_deps.clone(),
                        };
                        let id = trace.push(TraceOp {
                            name: OpName::flat(PassDir::Bwd, inst_tag, &pc.label),
                            stream: StreamId::Comm,
                            kind: OpKind::Collective { kind: pc.kind },
                            phase: Phase::Backward,
                            duration: pc.duration,
                            deps,
                        });
                        if pc.urgency == Urgency::Blocking {
                            base_deps = Deps::one(id);
                        } else {
                            gate_deps.push(id);
                        }
                    }

                    // Backward compute: weight + input gradients, plus a
                    // forward recompute for checkpointed blocks (already
                    // folded into the cached duration).
                    let mut deps = base_deps;
                    deps.extend_from(&gate_deps);
                    deps.sort_dedup();
                    let bwd_compute = trace.push(TraceOp {
                        name: OpName::flat(PassDir::Bwd, inst_tag, &g.name),
                        stream: StreamId::Compute,
                        kind: OpKind::Gemm { class: g.class },
                        phase: Phase::Backward,
                        duration: g.bwd_compute,
                        deps,
                    });
                    last_bwd = bwd_compute;

                    // Post-compute blocking backward collectives.
                    for pc in sc
                        .backward
                        .iter()
                        .filter(|r| r.position == CommPosition::AfterCompute)
                    {
                        last_bwd = trace.push(TraceOp {
                            name: OpName::flat(PassDir::Bwd, inst_tag, &pc.label),
                            stream: StreamId::Comm,
                            kind: OpKind::Collective { kind: pc.kind },
                            phase: Phase::Backward,
                            duration: pc.duration,
                            deps: Deps::one(last_bwd),
                        });
                    }

                    // Weight-gradient collectives: deferred, off the
                    // critical path until the optimizer.
                    for pc in &sc.grad {
                        let id = trace.push(TraceOp {
                            name: OpName::flat(PassDir::Bwd, inst_tag, &pc.label),
                            stream: StreamId::GradComm,
                            kind: OpKind::Collective { kind: pc.kind },
                            phase: Phase::Backward,
                            duration: pc.duration,
                            deps: Deps::one(bwd_compute),
                        });
                        grad_ops.push(id);
                    }
                }
            }

            // Optimizer step waits on every gradient.
            let mut deps = grad_ops;
            deps.push(last_bwd);
            deps.sort_dedup();
            let opt_dur = optimizer_time(self.model, self.cluster, plan, &self.task);
            if opt_dur > Seconds::ZERO {
                trace.push(TraceOp {
                    name: OpName::UpdateOptimizer,
                    stream: StreamId::Compute,
                    kind: OpKind::Optimizer,
                    phase: Phase::Update,
                    duration: opt_dur,
                    deps,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::HierarchicalNccl;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::{memory_per_device, Strategy};

    #[test]
    fn ensure_plan_is_idempotent() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let mut table = CostTable::new(
            &model,
            &sys,
            Task::Pretraining,
            plan.options,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        );
        table.ensure_plan(&plan);
        let sizes: Vec<usize> = table.groups.iter().map(|g| g.by_strategy.len()).collect();
        table.ensure_plan(&plan);
        let again: Vec<usize> = table.groups.iter().map(|g| g.by_strategy.len()).collect();
        assert_eq!(sizes, again);
        assert!(sizes.iter().all(|&n| n == 1));
    }

    #[test]
    fn cached_memory_fold_matches_memory_per_device() {
        // Byte-for-byte: the cached per-(group, strategy) fold must equal
        // the reference footprint for every strategy combination.
        for id in [ModelId::DlrmA, ModelId::Gpt3] {
            let model = id.build();
            let sys = if id.is_dlrm() {
                catalog::zionex_dlrm_system()
            } else {
                catalog::llama_llm_system()
            };
            let base = Plan::fsdp_baseline(&model);
            let mut table = CostTable::new(
                &model,
                &sys,
                Task::Pretraining,
                base.options,
                &HierarchicalNccl,
                UtilizationModel::Constant,
            );
            let classes: Vec<_> = model.groups.iter().map(|g| g.class).collect();
            for class in classes {
                for strategy in HierStrategy::enumerate_for(class) {
                    let plan = base.clone().with_strategy(class, strategy);
                    table.ensure_plan(&plan);
                    let reference = memory_per_device(&model, &sys, &plan, &Task::Pretraining);
                    let cached = match table.memory_for(&plan) {
                        Ok(m) => m,
                        Err(PlanError::OutOfMemory { required, usable }) => {
                            let u = plan.options.memory.usable(sys.device.hbm_capacity);
                            assert_eq!(usable, u);
                            assert_eq!(required, reference.total());
                            continue;
                        }
                        Err(e) => panic!("unexpected error {e}"),
                    };
                    assert_eq!(cached, reference, "{id} {class} {strategy}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn assembling_an_unpriced_strategy_panics() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let base = Plan::fsdp_baseline(&model);
        let mut table = CostTable::new(
            &model,
            &sys,
            Task::Pretraining,
            base.options,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        );
        table.ensure_plan(&base);
        let other = base.with_strategy(
            madmax_model::LayerClass::Dense,
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        );
        let mut trace = Trace::new();
        table.assemble_into(&other, &mut trace);
    }

    #[test]
    #[should_panic(expected = "options diverge")]
    fn mismatched_pricing_options_rejected() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let mut table = CostTable::new(
            &model,
            &sys,
            Task::Pretraining,
            base.options,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        );
        let mut other = base;
        other.options.activation_checkpointing = !other.options.activation_checkpointing;
        table.ensure_plan(&other);
    }
}
