//! The pricing phase of the flat engine: a [`CostTable`] of per-group,
//! per-strategy, per-phase compute and collective costs, computed once and
//! composed into traces by the assembly phase
//! ([`CostTable::assemble_into`]).
//!
//! Pricing is what makes candidate evaluation expensive — every GEMM
//! duration and every collective's hierarchical cost-model invocation —
//! yet across a design-space search almost all of it is shared: candidates
//! differ only in which [`HierStrategy`] each layer class uses. The table
//! therefore caches, per layer group and per
//! [`madmax_parallel::WorkloadPhase`]:
//!
//! - strategy-independent compute durations (forward GEMM/lookup time,
//!   backward time with the recompute factor applied, single-token decode
//!   time), and
//! - per-strategy priced collectives ([`PricedComm`]) with pre-rendered
//!   interned labels, memory-footprint terms, and — for decode — the
//!   per-token KV-cache read coefficient.
//!
//! Training and prefill-only workloads have one phase; serve workloads
//! with decode steps carry a second phase context (the model at a
//! single-token context and the serving batch) whose assembly appends
//! `decode_len` autoregressive steps after the prefill, each step's
//! compute stretched by the KV-cache read at its token position.
//!
//! `madmax-dse` computes one table per search and shares it read-only
//! across all worker threads (the table is `Sync`); each candidate's
//! evaluation then assembles a trace from cached costs without touching
//! the collective model or allocating op names.
//!
//! # Sharing contract
//!
//! A table is priced for one `(model, cluster, workload)` combination and
//! one set of [`PlanOptions`] (checkpointing and wire precision scale the
//! priced costs; prefetch, optimizer, and memory knobs scale the cached
//! memory contributions). Every plan assembled from the table must carry
//! identical options, modulo `ignore_memory_limits` which only gates the
//! feasibility check — [`CostTable::ensure_plan`],
//! [`CostTable::assemble_into`], and [`CostTable::memory_for`] assert
//! this — and must only use strategies previously priced with
//! `ensure_plan`. Memory feasibility is part of the table too:
//! [`CostTable::memory_for`] folds cached per-(group, strategy) footprint
//! contributions into exactly `madmax_parallel::memory_per_device`'s
//! breakdown (KV-cache term included).

use madmax_hw::units::{ByteCount, Seconds};
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, LayerKind, ModelArch};
use madmax_parallel::comm::CommPosition;
use madmax_parallel::{
    derive_layer_comm, CollectiveKind, CommReq, HierStrategy, MemoryBreakdown, Plan, PlanError,
    PlanOptions, Urgency, Workload,
};

use crate::collective::CollectiveModel;
use crate::compute::{
    backward_flops_factor, compute_time, device_flops_fwd, device_lookup_bytes, lookup_time,
    optimizer_time, UtilizationModel,
};
use crate::counters::{CacheCounters, CacheStats};
use crate::metrics::ServeStats;
use crate::sim::Schedule;
use crate::trace::{
    intern_label, Deps, OpId, OpKind, OpName, PassDir, Phase, StreamId, Trace, TraceOp,
};

/// One collective, priced and labeled: everything assembly needs to emit
/// the op without consulting the cost model again.
#[derive(Debug, Clone)]
pub struct PricedComm {
    /// Collective primitive.
    pub kind: CollectiveKind,
    /// Stream semantics (blocking / prefetchable / deferred).
    pub urgency: Urgency,
    /// Placement relative to the layer's compute op.
    pub position: CommPosition,
    /// Modeled execution time on the table's cluster.
    pub duration: Seconds,
    /// Interned display label, e.g. `"embedding_tables.a2a"`.
    pub label: &'static str,
}

/// Priced collectives of one layer group under one strategy, split by
/// pass exactly like `madmax_parallel::LayerCommPlan`, plus the group's
/// memory-footprint contributions under that strategy. Zero-payload
/// requirements are dropped at pricing time (the trace builder always
/// skipped them).
#[derive(Debug, Clone, Default)]
pub struct StrategyCosts {
    /// Forward-pass collectives (per layer instance).
    pub forward: Vec<PricedComm>,
    /// Backward-pass collectives on the gradient-flow critical path.
    pub backward: Vec<PricedComm>,
    /// Deferred weight-gradient collectives.
    pub grad: Vec<PricedComm>,
    /// Sharded/replicated parameter bytes of the whole group.
    pub mem_params: ByteCount,
    /// Gradient-buffer bytes when the group trains (zero for sparse
    /// embedding gradients).
    pub mem_grads: ByteCount,
    /// Optimizer-state bytes when the group trains.
    pub mem_optimizer: ByteCount,
    /// Transient FSDP gather buffer (zero when the strategy has no FSDP
    /// level; folded with `max` across groups).
    pub mem_fsdp_transient: ByteCount,
    /// KV-cache bytes at maximum length for the group's attention layers
    /// (serve workloads with `kv_cache` modeling; zero otherwise).
    pub mem_kv_cache: ByteCount,
    /// Per-token KV-cache read time of one layer instance (decode-phase
    /// entries only): a decode step at cache length `L` spends
    /// `kv_read_per_token * L` reading keys/values from HBM.
    pub kv_read_per_token: Seconds,
    /// Whether the strategy may be applied to this group's class at all
    /// (`HierStrategy::allowed_for`); checked during the memory fold so
    /// invalid candidates error exactly like `validate_strategies`.
    pub allowed: bool,
}

/// Cached costs and metadata of one layer group in one workload phase.
#[derive(Debug, Clone)]
struct GroupCosts {
    class: LayerClass,
    repeat: usize,
    /// HBM-bound embedding group (lookup compute, All2All side chain).
    is_embedding: bool,
    /// MLP group: a side-branch input that does not consume the pending
    /// embedding outputs (the feature-combination join happens later).
    is_mlp: bool,
    /// Whether the table's workload trains this group's class.
    trains: bool,
    name: &'static str,
    lookup_label: &'static str,
    scatter_label: &'static str,
    /// Per-instance forward compute (GEMM time, or lookup time for
    /// embedding groups; the backward gradient scatter reuses it).
    fwd_compute: Seconds,
    /// Per-instance backward compute with the recompute factor applied
    /// (unused for embedding groups).
    bwd_compute: Seconds,
    /// Retained/working-set activation bytes of one instance
    /// (strategy-independent).
    mem_activations: ByteCount,
    by_strategy: Vec<(HierStrategy, StrategyCosts)>,
}

impl GroupCosts {
    fn costs_for(&self, strategy: HierStrategy) -> &StrategyCosts {
        self.by_strategy
            .iter()
            .find(|(s, _)| *s == strategy)
            .map_or_else(
                || {
                    panic!(
                        "cost table has no entry for {}/{strategy}; \
                         call CostTable::ensure_plan for every plan first",
                        self.name
                    )
                },
                |(_, c)| c,
            )
    }
}

/// The decode-phase context of a serve workload: the model at a
/// single-token context and the serving batch, its priced groups, and the
/// decode-stream dimensions.
#[derive(Debug)]
struct DecodePhase {
    /// Effective single-token model (`context_length = 1`, serving batch).
    model: ModelArch,
    local_batch: f64,
    decode_len: usize,
    /// Tokens already in the KV-cache when decode step 0 runs (the
    /// resolved prompt length).
    prompt_len: usize,
    groups: Vec<GroupCosts>,
}

/// Shared, read-only cost cache for the flat engine (see the module docs
/// for the sharing contract).
#[derive(Debug)]
pub struct CostTable<'a> {
    /// The caller's model, as passed in (identity handle).
    model: &'a ModelArch,
    /// The primary-phase effective model, when the workload overrides the
    /// context length (serve prompt) or global batch (serving batch).
    eff: Option<Box<ModelArch>>,
    cluster: &'a ClusterSpec,
    workload: Workload,
    options: PlanOptions,
    collectives: &'a dyn CollectiveModel,
    local_batch: f64,
    groups: Vec<GroupCosts>,
    /// Layer classes present in the model, each with the indices of its
    /// groups (first-appearance order).
    class_groups: Vec<(LayerClass, Vec<usize>)>,
    decode: Option<Box<DecodePhase>>,
    /// Whether cached serve evaluations may take the closed-form
    /// steady-state path (see [`crate::steady`]); on by default, an
    /// opt-out knob for A/B validation.
    analytic_serve: bool,
    /// Price-vs-reuse telemetry: one hit per `ensure_plan` (class,
    /// strategy) already priced, one miss per fresh pricing.
    counters: CacheCounters,
    /// Closed-form-vs-fallback telemetry for cached serve evaluations
    /// (one hit per steady-state report, one miss per full simulation).
    analytic_counters: CacheCounters,
}

/// Every option except `ignore_memory_limits` (which only gates the
/// feasibility check, read per plan) must match between the table and
/// every plan priced or assembled through it.
fn pricing_options_match(a: &PlanOptions, b: &PlanOptions) -> bool {
    let neutral = |o: &PlanOptions| {
        let mut o = *o;
        o.ignore_memory_limits = false;
        o
    };
    neutral(a) == neutral(b)
}

/// Prices the strategy-independent costs of every layer group of one
/// phase's effective model.
fn price_phase_groups(
    model: &ModelArch,
    cluster: &ClusterSpec,
    workload: &Workload,
    options: &PlanOptions,
    utilization: UtilizationModel,
    local_batch: f64,
) -> Vec<GroupCosts> {
    model
        .groups
        .iter()
        .map(|group| {
            let is_embedding = group.kind.is_memory_bound();
            let (fwd_compute, bwd_compute) = if is_embedding {
                let t = lookup_time(device_lookup_bytes(group, model, cluster), cluster);
                (t, t)
            } else {
                // `device_flops_fwd` is strategy-independent (balanced
                // work); price with the baseline strategy handle.
                let strategy = HierStrategy::flat(madmax_parallel::Strategy::Fsdp);
                let flops = device_flops_fwd(group, model, cluster, &strategy, local_batch);
                let recompute = options.activation_checkpointing
                    && matches!(
                        group.kind,
                        LayerKind::TransformerBlock(_) | LayerKind::Moe(_)
                    );
                (
                    compute_time(flops, model, cluster, &utilization),
                    compute_time(
                        flops * backward_flops_factor(recompute),
                        model,
                        cluster,
                        &utilization,
                    ),
                )
            };
            let mem_activations = group.kind.activation_bytes_per_sample(
                model.context_length,
                model.compute_dtype,
                options.activation_checkpointing,
            ) * local_batch;
            GroupCosts {
                class: group.class,
                repeat: group.repeat,
                is_embedding,
                is_mlp: matches!(group.kind, LayerKind::Mlp(_)),
                trains: workload.trains(group.class),
                name: intern_label(&group.name),
                lookup_label: intern_label(&format!("{}.lookup", group.name)),
                scatter_label: intern_label(&format!("{}.grad_scatter", group.name)),
                fwd_compute,
                bwd_compute,
                mem_activations,
                by_strategy: Vec::new(),
            }
        })
        .collect()
}

impl<'a> CostTable<'a> {
    /// Prices the strategy-independent costs of every layer group (for a
    /// serve workload with decode steps: of both phases); call
    /// [`CostTable::ensure_plan`] to add per-strategy collective costs.
    pub fn new(
        model: &'a ModelArch,
        cluster: &'a ClusterSpec,
        workload: Workload,
        options: PlanOptions,
        collectives: &'a dyn CollectiveModel,
        utilization: UtilizationModel,
    ) -> Self {
        let eff = match workload.effective_model(model) {
            std::borrow::Cow::Borrowed(_) => None,
            std::borrow::Cow::Owned(m) => Some(Box::new(m)),
        };
        let primary: &ModelArch = eff.as_deref().unwrap_or(model);
        let devices = cluster.total_devices() as f64;
        let local_batch = primary.global_batch as f64 / devices;
        let groups = price_phase_groups(
            primary,
            cluster,
            &workload,
            &options,
            utilization,
            local_batch,
        );
        let decode = workload.decode_model(primary).map(|dm| {
            let d_local = dm.global_batch as f64 / devices;
            let groups =
                price_phase_groups(&dm, cluster, &workload, &options, utilization, d_local);
            let cfg = workload
                .serve_config()
                .expect("decode model implies a serve workload");
            Box::new(DecodePhase {
                local_batch: d_local,
                decode_len: cfg.decode_len,
                prompt_len: primary.context_length,
                groups,
                model: dm,
            })
        });
        let mut class_groups: Vec<(LayerClass, Vec<usize>)> = Vec::new();
        for (gi, group) in primary.groups.iter().enumerate() {
            match class_groups.iter_mut().find(|(c, _)| *c == group.class) {
                Some((_, v)) => v.push(gi),
                None => class_groups.push((group.class, vec![gi])),
            }
        }
        Self {
            model,
            eff,
            cluster,
            workload,
            options,
            collectives,
            local_batch,
            groups,
            class_groups,
            decode,
            analytic_serve: true,
            counters: CacheCounters::new(),
            analytic_counters: CacheCounters::new(),
        }
    }

    /// Whether cached serve evaluations may use the closed-form
    /// steady-state decode path.
    pub fn analytic_serve(&self) -> bool {
        self.analytic_serve
    }

    /// Enables or disables the closed-form serve path for cached
    /// evaluations through this table. One-shot runs ([`crate::run_flat`])
    /// always simulate in full regardless.
    pub fn set_analytic_serve(&mut self, on: bool) {
        self.analytic_serve = on;
    }

    /// The serve-stream dimensions of the workload's decode phase, or
    /// `None` without decode steps.
    pub fn serve_dims(&self) -> Option<crate::steady::ServeDims> {
        let dec = self.decode.as_ref()?;
        Some(crate::steady::ServeDims {
            prompt_len: dec.prompt_len,
            decode_len: dec.decode_len,
            decode_batch: dec.model.global_batch,
        })
    }

    /// Snapshot of the price-vs-reuse counters: [`CostTable::ensure_plan`]
    /// records one hit per (class, strategy) pair it found already priced
    /// and one miss per pair it priced fresh, so
    /// `hits + misses == candidates × classes` across a search.
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Snapshot of the closed-form-vs-fallback counters:
    /// [`crate::run_flat_cached`] records one hit per serve report
    /// synthesized by the steady-state evaluator ([`crate::steady`]) and
    /// one miss per serve candidate simulated in full (fallback, opt-out,
    /// or short decode).
    pub fn analytic_stats(&self) -> CacheStats {
        self.analytic_counters.snapshot()
    }

    /// The closed-form-vs-fallback counter pair (crate-internal:
    /// `run_flat_cached` bumps it from `&self`).
    pub(crate) fn analytic_counters(&self) -> &CacheCounters {
        &self.analytic_counters
    }

    /// The model this table was priced for (the caller's handle, used for
    /// identity checks).
    pub fn model(&self) -> &'a ModelArch {
        self.model
    }

    /// The primary-phase effective model: identical to [`CostTable::model`]
    /// unless the workload overrides the context length or batch (serve
    /// prompt/batch). Reports are built against this model.
    pub fn report_model(&self) -> &ModelArch {
        self.eff.as_deref().unwrap_or(self.model)
    }

    /// The cluster this table was priced for.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.cluster
    }

    /// The workload this table was priced for.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Prices (once) the collective costs for each layer group under the
    /// strategies `plan` assigns — for every phase of the workload. Safe
    /// to call with every candidate of a search; already-priced strategies
    /// are skipped.
    ///
    /// # Panics
    ///
    /// Panics when `plan`'s pricing-relevant options diverge from the
    /// table's (see the module docs).
    pub fn ensure_plan(&mut self, plan: &Plan) {
        assert!(
            pricing_options_match(&self.options, &plan.options),
            "plan options diverge from the cost table's pricing context"
        );
        for ci in 0..self.class_groups.len() {
            let class = self.class_groups[ci].0;
            let strategy = plan.strategy_for(class);
            // Groups of one class are always priced together, so checking
            // the class's first group suffices.
            let first = self.class_groups[ci].1[0];
            if self.groups[first]
                .by_strategy
                .iter()
                .any(|(s, _)| *s == strategy)
            {
                self.counters.hit();
                continue;
            }
            self.counters.miss();
            for i in 0..self.class_groups[ci].1.len() {
                let gi = self.class_groups[ci].1[i];
                let costs = self.price_group(gi, strategy, plan, false);
                self.groups[gi].by_strategy.push((strategy, costs));
                let decode_costs = self
                    .decode
                    .is_some()
                    .then(|| self.price_group(gi, strategy, plan, true));
                if let (Some(costs), Some(dec)) = (decode_costs, self.decode.as_mut()) {
                    dec.groups[gi].by_strategy.push((strategy, costs));
                }
            }
        }
    }

    /// Prices one layer group under one strategy (collectives + memory
    /// contributions), mirroring `madmax_parallel::memory_per_device`
    /// exactly. With `decode` the group is priced in the decode-phase
    /// context (single-token payloads, KV-read coefficient).
    fn price_group(
        &self,
        gi: usize,
        strategy: HierStrategy,
        plan: &Plan,
        decode: bool,
    ) -> StrategyCosts {
        let (phase_model, local_batch) = if decode {
            let dec = self.decode.as_ref().expect("decode pricing context");
            (&dec.model, dec.local_batch)
        } else {
            (self.report_model(), self.local_batch)
        };
        let group = &phase_model.groups[gi];
        let comm = derive_layer_comm(
            group,
            plan,
            phase_model,
            self.cluster,
            &self.workload,
            local_batch,
        );
        let price = |reqs: &[CommReq]| -> Vec<PricedComm> {
            reqs.iter()
                .filter(|r| !r.payload.is_zero())
                .map(|r| PricedComm {
                    kind: r.collective,
                    urgency: r.urgency,
                    position: r.position,
                    duration: self.collectives.time(r, self.cluster),
                    label: intern_label(&r.label),
                })
                .collect()
        };

        // Memory contributions, mirroring
        // `madmax_parallel::memory_per_device`'s per-group terms.
        let shard = strategy.param_shard_factor(self.cluster);
        let p_inst = madmax_parallel::comm::instance_param_bytes(group, phase_model);
        let p_group = p_inst * group.repeat as f64;
        let sparse = matches!(group.kind, LayerKind::EmbeddingBag(_));
        let opt = self.options.optimizer_for(group.class);
        let mem_optimizer = ByteCount::new(opt.state_bytes(group.kind.params(), &group.kind))
            * group.repeat as f64
            / shard;
        let tp_part = strategy.compute_shard_factor(self.cluster);
        let has_fsdp = strategy
            .levels(self.cluster)
            .iter()
            .any(|l| l.strategy == madmax_parallel::Strategy::Fsdp);
        let mem_fsdp_transient = if has_fsdp {
            // FSDP's gather unit is the largest parameter tensor it
            // materializes at once: a whole dense layer, but only one
            // expert for MoE layers.
            let unit = match &group.kind {
                LayerKind::Moe(m) => p_inst / m.num_experts as f64,
                _ => p_inst,
            };
            let buffers = if self.options.fsdp_prefetch { 2.0 } else { 1.0 };
            unit / tp_part * buffers
        } else {
            ByteCount::ZERO
        };

        // KV-cache terms (serve workloads with cache modeling only): the
        // maximum-length footprint charged to the primary phase's memory
        // fold, and the per-token read coefficient driving decode steps.
        let kv_cfg = self.workload.serve_config().filter(|c| c.kv_cache);
        let per_token = group
            .kind
            .kv_cache_bytes_per_token(phase_model.compute_dtype);
        let mem_kv_cache = match kv_cfg {
            Some(cfg) if !decode && !per_token.is_zero() => {
                let kv_len = cfg.max_kv_len(phase_model.context_length) as f64;
                per_token * kv_len * local_batch * group.repeat as f64 / tp_part
            }
            _ => ByteCount::ZERO,
        };
        let kv_read_per_token = match kv_cfg {
            Some(_) if decode && !per_token.is_zero() => {
                lookup_time(per_token * local_batch / tp_part, self.cluster)
            }
            _ => Seconds::ZERO,
        };

        StrategyCosts {
            forward: price(&comm.forward),
            backward: price(&comm.backward),
            grad: price(&comm.grad),
            mem_params: p_group / shard,
            mem_grads: if sparse {
                ByteCount::ZERO
            } else {
                p_group / shard
            },
            mem_optimizer,
            mem_fsdp_transient,
            mem_kv_cache,
            kv_read_per_token,
            allowed: strategy.allowed_for(group.class),
        }
    }

    /// Validates `plan`'s memory feasibility from cached per-(group,
    /// strategy) footprint contributions, reproducing
    /// `madmax_parallel::check_memory`'s breakdown and error values
    /// exactly without re-deriving any footprint.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidStrategy`] for class/strategy mismatches (same
    /// first-offender as `Plan::validate_strategies`);
    /// [`PlanError::OutOfMemory`] when the footprint exceeds usable HBM
    /// and the plan does not ignore memory limits.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CostTable::assemble_into`].
    pub fn memory_for(&self, plan: &Plan) -> Result<MemoryBreakdown, PlanError> {
        debug_assert!(
            pricing_options_match(&self.options, &plan.options),
            "plan options diverge from the cost table's pricing context"
        );
        let training = self.workload.has_backward();
        let mut out = MemoryBreakdown::default();
        for g in &self.groups {
            let sc = g.costs_for(plan.strategy_for(g.class));
            if !sc.allowed {
                // Groups are visited in model order, so the first
                // offender matches `Plan::validate_strategies` exactly.
                return Err(PlanError::InvalidStrategy {
                    class: g.class,
                    strategy: plan.strategy_for(g.class),
                });
            }
            out.params += sc.mem_params;
            if training && g.trains {
                out.grads += sc.mem_grads;
                out.optimizer += sc.mem_optimizer;
                out.activations += g.mem_activations * g.repeat as f64;
            } else {
                out.activations = out.activations.max(g.mem_activations);
            }
            out.kv_cache += sc.mem_kv_cache;
            out.fsdp_transient = out.fsdp_transient.max(sc.mem_fsdp_transient);
        }
        if plan.options.ignore_memory_limits {
            return Ok(out);
        }
        let usable = plan.options.memory.usable(self.cluster.device.hbm_capacity);
        if out.total() > usable {
            return Err(PlanError::OutOfMemory {
                required: out.total(),
                usable,
            });
        }
        Ok(out)
    }

    /// The serve metrics of a scheduled trace assembled from this table,
    /// or `None` when the workload has no decode phase.
    pub fn serve_stats(&self, trace: &Trace, sched: &Schedule) -> Option<ServeStats> {
        let dec = self.decode.as_ref()?;
        Some(crate::metrics::serve_stats_from(
            trace,
            sched,
            dec.prompt_len,
            dec.decode_len,
            dec.model.global_batch,
        ))
    }

    /// The assembly phase: builds the full per-iteration trace for `plan`
    /// into `trace` (cleared first), composing cached costs.
    ///
    /// Training and prefill-only workloads reproduce `TraceBuilder`'s op
    /// stream exactly — same ops, same order, same durations, same
    /// dependencies. Serve workloads with decode steps append
    /// `decode_len` autoregressive single-token passes after the prefill,
    /// each chained on the previous step's output and stretched by the
    /// KV-cache read at its token position.
    ///
    /// # Panics
    ///
    /// Panics when a strategy of `plan` was not priced via
    /// [`CostTable::ensure_plan`]; debug builds also assert that `plan`'s
    /// options match the table's pricing context.
    pub fn assemble_into(&self, plan: &Plan, trace: &mut Trace) {
        self.assemble_capped_into(plan, trace, usize::MAX);
    }

    /// [`CostTable::assemble_into`] with the decode loop capped at
    /// `max_decode_tokens`: the explicit-prefix assembly behind the
    /// closed-form serve path (see [`crate::steady`]). With a cap at or
    /// above `decode_len` this is exactly the full assembly.
    pub fn assemble_serve_prefix_into(
        &self,
        plan: &Plan,
        trace: &mut Trace,
        max_decode_tokens: usize,
    ) {
        self.assemble_capped_into(plan, trace, max_decode_tokens);
    }

    fn assemble_capped_into(&self, plan: &Plan, trace: &mut Trace, max_decode_tokens: usize) {
        debug_assert!(
            pricing_options_match(&self.options, &plan.options),
            "plan options diverge from the cost table's pricing context"
        );
        trace.clear();

        // ---------------- Forward pass (training fwd / prefill) --------
        let final_fwd = self.assemble_forward(plan, trace, None);
        let final_fwd_id = final_fwd.unwrap_or(OpId(0));

        // ---------------- Backward pass ----------------
        if self.workload.has_backward() && !trace.is_empty() {
            self.assemble_backward(plan, trace, final_fwd_id);
        }

        // ---------------- Decode steps ----------------
        if let Some(dec) = &self.decode {
            let mut tail = final_fwd;
            for step in 0..dec.decode_len.min(max_decode_tokens) {
                let ctx = DecodeCtx {
                    step: step as u32,
                    kv_len: (dec.prompt_len + step) as f64,
                    seed: tail,
                };
                tail = self.assemble_forward(plan, trace, Some(ctx));
            }
            // Serve traces live on the analytic duration grid (decode
            // compute is emitted on-grid above; this rounds the prefill
            // and the comm durations too), keeping every scheduled time
            // exact so the closed-form path can reproduce the full
            // simulation bit for bit. Training and prefill-only
            // assembly is untouched.
            trace.map_durations_from(0, crate::steady::quantize);
        }
    }

    /// One forward sweep over a phase's layer groups: the training/prefill
    /// forward pass (`decode = None`), or one autoregressive decode step.
    /// Returns the chain's final output op.
    fn assemble_forward(
        &self,
        plan: &Plan,
        trace: &mut Trace,
        decode: Option<DecodeCtx>,
    ) -> Option<OpId> {
        let prefetch = plan.options.fsdp_prefetch;
        let groups = match &decode {
            Some(_) => &self.decode.as_ref().expect("decode phase priced").groups,
            None => &self.groups,
        };
        let phase = match &decode {
            Some(_) => Phase::Decode,
            None => Phase::Forward,
        };
        let name_for =
            |ctx: &Option<DecodeCtx>, inst_tag: Option<u32>, label: &'static str| match ctx {
                Some(c) => OpName::decode(c.step, inst_tag, label),
                None => OpName::flat(PassDir::Fwd, inst_tag, label),
            };

        let seed = decode.as_ref().and_then(|c| c.seed);
        let mut last_out: Option<OpId> = seed; // dense-chain tail
        let mut pending_join = Deps::none(); // embedding-side outputs
        let mut last_compute: Option<OpId> = seed; // for just-in-time gathers

        for g in groups {
            let sc = g.costs_for(plan.strategy_for(g.class));
            for inst in 0..g.repeat {
                let inst_tag = (g.repeat > 1).then_some(inst as u32);

                // Input dependencies of this layer's compute. In a decode
                // step the embedding chain also hangs off the previous
                // token (autoregression feeds the generated token back).
                let mut base_deps = Deps::none();
                if !g.is_embedding {
                    if let Some(l) = last_out {
                        base_deps.push(l);
                    }
                    if !g.is_mlp && !pending_join.is_empty() {
                        // Feature-combination stage: consume embedding
                        // outputs.
                        base_deps.extend_from(&pending_join);
                        pending_join.clear();
                    }
                } else if decode.is_some() {
                    if let Some(s) = seed {
                        base_deps.push(s);
                    }
                }

                // Pre-compute collectives (FSDP gathers, MoE dispatch).
                let mut gate_deps = Deps::none();
                for pc in sc
                    .forward
                    .iter()
                    .filter(|r| r.position == CommPosition::BeforeCompute)
                {
                    let deps = match pc.urgency {
                        Urgency::Prefetchable if prefetch => Deps::none(),
                        Urgency::Prefetchable => last_compute.into_iter().collect(),
                        _ => base_deps.clone(),
                    };
                    let id = trace.push(TraceOp {
                        name: name_for(&decode, inst_tag, pc.label),
                        stream: StreamId::Comm,
                        kind: OpKind::Collective { kind: pc.kind },
                        phase,
                        duration: pc.duration,
                        deps,
                    });
                    if pc.urgency == Urgency::Blocking {
                        // e.g. MoE dispatch carries the layer input.
                        base_deps = Deps::one(id);
                    } else {
                        gate_deps.push(id);
                    }
                }

                // The layer's compute (or HBM lookup) op. Decode-step
                // attention additionally reads the KV-cache at the step's
                // token position.
                let duration = match &decode {
                    Some(c) => crate::steady::decode_compute_duration(
                        g.fwd_compute,
                        sc.kv_read_per_token,
                        c.kv_len - c.step as f64,
                        c.step,
                    ),
                    None => g.fwd_compute,
                };
                let mut deps = base_deps;
                deps.extend_from(&gate_deps);
                deps.sort_dedup();
                let compute_id = if g.is_embedding {
                    trace.push(TraceOp {
                        name: name_for(&decode, inst_tag, g.lookup_label),
                        stream: StreamId::Compute,
                        kind: OpKind::Lookup,
                        phase,
                        duration,
                        deps,
                    })
                } else {
                    trace.push(TraceOp {
                        name: name_for(&decode, inst_tag, g.name),
                        stream: StreamId::Compute,
                        kind: OpKind::Gemm { class: g.class },
                        phase,
                        duration,
                        deps,
                    })
                };
                last_compute = Some(compute_id);

                // Post-compute blocking collectives (TP AllReduce,
                // embedding All2All, MoE combine).
                let mut out = compute_id;
                for pc in sc
                    .forward
                    .iter()
                    .filter(|r| r.position == CommPosition::AfterCompute)
                {
                    out = trace.push(TraceOp {
                        name: name_for(&decode, inst_tag, pc.label),
                        stream: StreamId::Comm,
                        kind: OpKind::Collective { kind: pc.kind },
                        phase,
                        duration: pc.duration,
                        deps: Deps::one(out),
                    });
                }

                if g.is_embedding {
                    pending_join.push(out);
                } else {
                    last_out = Some(out);
                }
            }
        }

        last_out.or_else(|| pending_join.as_slice().last().copied())
    }

    /// The backward pass + optimizer step of a training iteration.
    fn assemble_backward(&self, plan: &Plan, trace: &mut Trace, final_fwd: OpId) {
        let prefetch = plan.options.fsdp_prefetch;
        let mut last_bwd = final_fwd;
        let mut grad_ops = Deps::none();

        for g in self.groups.iter().rev() {
            if !g.trains {
                continue; // frozen layers' gradient work is omitted
            }
            let sc = g.costs_for(plan.strategy_for(g.class));

            for inst in (0..g.repeat).rev() {
                let inst_tag = (g.repeat > 1).then_some(inst as u32);

                if g.is_embedding {
                    // Gradients are routed back to shard owners, then
                    // scattered into HBM; both off the dense critical
                    // path.
                    let mut dep = Deps::one(last_bwd);
                    for pc in &sc.grad {
                        let id = trace.push(TraceOp {
                            name: OpName::flat(PassDir::Bwd, inst_tag, pc.label),
                            stream: StreamId::GradComm,
                            kind: OpKind::Collective { kind: pc.kind },
                            phase: Phase::Backward,
                            duration: pc.duration,
                            deps: dep.clone(),
                        });
                        dep = Deps::one(id);
                    }
                    let scatter = trace.push(TraceOp {
                        name: OpName::flat(PassDir::Bwd, inst_tag, g.scatter_label),
                        stream: StreamId::Compute,
                        kind: OpKind::Lookup,
                        phase: Phase::Backward,
                        duration: g.fwd_compute,
                        deps: dep,
                    });
                    grad_ops.push(scatter);
                    continue;
                }

                // Pre-compute backward collectives (FSDP re-gather,
                // MoE combine_bwd).
                let mut base_deps = Deps::one(last_bwd);
                let mut gate_deps = Deps::none();
                for pc in sc
                    .backward
                    .iter()
                    .filter(|r| r.position == CommPosition::BeforeCompute)
                {
                    let deps = match pc.urgency {
                        Urgency::Prefetchable if prefetch => Deps::none(),
                        Urgency::Prefetchable => Deps::one(last_bwd),
                        _ => base_deps.clone(),
                    };
                    let id = trace.push(TraceOp {
                        name: OpName::flat(PassDir::Bwd, inst_tag, pc.label),
                        stream: StreamId::Comm,
                        kind: OpKind::Collective { kind: pc.kind },
                        phase: Phase::Backward,
                        duration: pc.duration,
                        deps,
                    });
                    if pc.urgency == Urgency::Blocking {
                        base_deps = Deps::one(id);
                    } else {
                        gate_deps.push(id);
                    }
                }

                // Backward compute: weight + input gradients, plus a
                // forward recompute for checkpointed blocks (already
                // folded into the cached duration).
                let mut deps = base_deps;
                deps.extend_from(&gate_deps);
                deps.sort_dedup();
                let bwd_compute = trace.push(TraceOp {
                    name: OpName::flat(PassDir::Bwd, inst_tag, g.name),
                    stream: StreamId::Compute,
                    kind: OpKind::Gemm { class: g.class },
                    phase: Phase::Backward,
                    duration: g.bwd_compute,
                    deps,
                });
                last_bwd = bwd_compute;

                // Post-compute blocking backward collectives.
                for pc in sc
                    .backward
                    .iter()
                    .filter(|r| r.position == CommPosition::AfterCompute)
                {
                    last_bwd = trace.push(TraceOp {
                        name: OpName::flat(PassDir::Bwd, inst_tag, pc.label),
                        stream: StreamId::Comm,
                        kind: OpKind::Collective { kind: pc.kind },
                        phase: Phase::Backward,
                        duration: pc.duration,
                        deps: Deps::one(last_bwd),
                    });
                }

                // Weight-gradient collectives: deferred, off the
                // critical path until the optimizer.
                for pc in &sc.grad {
                    let id = trace.push(TraceOp {
                        name: OpName::flat(PassDir::Bwd, inst_tag, pc.label),
                        stream: StreamId::GradComm,
                        kind: OpKind::Collective { kind: pc.kind },
                        phase: Phase::Backward,
                        duration: pc.duration,
                        deps: Deps::one(bwd_compute),
                    });
                    grad_ops.push(id);
                }
            }
        }

        // Optimizer step waits on every gradient.
        let mut deps = grad_ops;
        deps.push(last_bwd);
        deps.sort_dedup();
        let opt_dur = optimizer_time(self.report_model(), self.cluster, plan, &self.workload);
        if opt_dur > Seconds::ZERO {
            trace.push(TraceOp {
                name: OpName::UpdateOptimizer,
                stream: StreamId::Compute,
                kind: OpKind::Optimizer,
                phase: Phase::Update,
                duration: opt_dur,
                deps,
            });
        }
    }
}

/// Coordinates of one decode step during assembly.
#[derive(Debug, Clone, Copy)]
struct DecodeCtx {
    /// Decode step index.
    step: u32,
    /// KV-cache length (tokens) this step's attention reads.
    kv_len: f64,
    /// The previous step's (or the prefill's) final output op.
    seed: Option<OpId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::HierarchicalNccl;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::{memory_per_device, ServeConfig, Strategy};

    #[test]
    fn ensure_plan_is_idempotent() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model);
        let mut table = CostTable::new(
            &model,
            &sys,
            Workload::pretrain(),
            plan.options,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        );
        table.ensure_plan(&plan);
        let sizes: Vec<usize> = table.groups.iter().map(|g| g.by_strategy.len()).collect();
        table.ensure_plan(&plan);
        let again: Vec<usize> = table.groups.iter().map(|g| g.by_strategy.len()).collect();
        assert_eq!(sizes, again);
        assert!(sizes.iter().all(|&n| n == 1));
    }

    #[test]
    fn cached_memory_fold_matches_memory_per_device() {
        // Byte-for-byte: the cached per-(group, strategy) fold must equal
        // the reference footprint for every strategy combination — for
        // training and for a KV-cache-carrying serve workload.
        let serve = Workload::serve(ServeConfig::new(1024, 128));
        for workload in [Workload::pretrain(), serve] {
            for id in [ModelId::DlrmA, ModelId::Gpt3] {
                let model = id.build();
                let sys = if id.is_dlrm() {
                    catalog::zionex_dlrm_system()
                } else {
                    catalog::llama_llm_system()
                };
                let base = Plan::fsdp_baseline(&model);
                let mut table = CostTable::new(
                    &model,
                    &sys,
                    workload.clone(),
                    base.options,
                    &HierarchicalNccl,
                    UtilizationModel::Constant,
                );
                let classes: Vec<_> = model.groups.iter().map(|g| g.class).collect();
                for class in classes {
                    for strategy in HierStrategy::enumerate_for(class) {
                        let plan = base.clone().with_strategy(class, strategy);
                        table.ensure_plan(&plan);
                        let reference = memory_per_device(&model, &sys, &plan, &workload);
                        let cached = match table.memory_for(&plan) {
                            Ok(m) => m,
                            Err(PlanError::OutOfMemory { required, usable }) => {
                                let u = plan.options.memory.usable(sys.device.hbm_capacity);
                                assert_eq!(usable, u);
                                assert_eq!(required, reference.total());
                                continue;
                            }
                            Err(e) => panic!("unexpected error {e}"),
                        };
                        assert_eq!(cached, reference, "{id} {class} {strategy} {workload}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn assembling_an_unpriced_strategy_panics() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let base = Plan::fsdp_baseline(&model);
        let mut table = CostTable::new(
            &model,
            &sys,
            Workload::pretrain(),
            base.options,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        );
        table.ensure_plan(&base);
        let other = base.with_strategy(
            madmax_model::LayerClass::Dense,
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        );
        let mut trace = Trace::new();
        table.assemble_into(&other, &mut trace);
    }

    #[test]
    #[should_panic(expected = "options diverge")]
    fn mismatched_pricing_options_rejected() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let base = Plan::fsdp_baseline(&model);
        let mut table = CostTable::new(
            &model,
            &sys,
            Workload::pretrain(),
            base.options,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        );
        let mut other = base;
        other.options.activation_checkpointing = !other.options.activation_checkpointing;
        table.ensure_plan(&other);
    }

    #[test]
    fn serve_assembly_appends_decode_steps() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let workload = Workload::serve(ServeConfig::new(512, 4));
        let mut table = CostTable::new(
            &model,
            &sys,
            workload,
            plan.options,
            &HierarchicalNccl,
            UtilizationModel::Constant,
        );
        table.ensure_plan(&plan);
        let mut trace = Trace::new();
        table.assemble_into(&plan, &mut trace);
        let decode_ops = trace.ops().iter().filter(|o| o.phase == Phase::Decode);
        assert!(decode_ops.clone().count() > 0);
        // No backward/update ops anywhere in a serve trace.
        assert!(trace
            .ops()
            .iter()
            .all(|o| matches!(o.phase, Phase::Forward | Phase::Decode)));
        // Decode compute grows with the KV position: step 3's block time
        // exceeds step 0's.
        let step_compute = |step: u32| -> Seconds {
            trace
                .ops()
                .iter()
                .filter(|o| {
                    matches!(&o.name, OpName::DecodeFlat { step: s, .. } if *s == step)
                        && o.stream == StreamId::Compute
                })
                .map(|o| o.duration)
                .sum()
        };
        assert!(step_compute(3) > step_compute(0));
    }
}
