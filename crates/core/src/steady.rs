//! Closed-form steady-state decode evaluation: collapses the token axis
//! of serve schedules.
//!
//! # The problem
//!
//! A serve trace is a prefill followed by `decode_len` autoregressive
//! token passes. Once the pipeline is full, the decode schedule is
//! *periodic*: every token issues the same ops on the same streams with
//! the same dependency shape, so event-scheduling tens of thousands of
//! decode ops per candidate re-derives the same steady state over and
//! over. This module simulates only the prefill and a short transient
//! prefix of explicit tokens, extracts the per-token *template* (op
//! durations, streams, and intra/inter-token dependencies), and then
//! advances the remaining tokens directly on the template in exact
//! integer arithmetic — a few dozen adds and maxes per token, with no
//! ops materialized, no scheduler heap, and no end-of-run report sweep —
//! synthesizing the full [`IterationReport`] at the end. Once the
//! pipeline is full, the recurrence settles into the analytic steady
//! period
//!
//! ```text
//! period(t) = max( Σ_s (d_s(t) + comm_s(t) + send_s(t)),  max_s m·d_s(t) )
//! ```
//!
//! over stages `s` with `m` microbatch groups in flight — chain latency
//! vs. bottleneck-stage throughput — which is the same period the
//! verifier's `steady-period` rule re-derives from fully simulated
//! traces to cross-check both paths.
//!
//! Stepping the template is already orders of magnitude cheaper than
//! event scheduling, but its cost still grows with `decode_len`. The
//! evaluator therefore *jumps* the steady region in closed form: because
//! the KV-cache read makes every duration affine in the token index,
//! once the recurrence's binding stabilizes every finish time, queue
//! timestamp, and per-token exposure is **exactly quadratic** in the
//! token index with integer Newton coefficients. Three consecutive
//! stepped states fit those quadratics; one *symbolic* token step then
//! certifies them — every max, min, and branch the concrete step would
//! take is shown to resolve identically across the whole remaining range
//! via integer quadratic inequalities in `i128` (endpoints plus the
//! convex vertex) — and must map the fitted state exactly onto its own
//! one-token shift. Induction from the live state then licenses the
//! jump: totals advance by closed-form arithmetic-series sums, the final
//! state is reconstructed by polynomial evaluation, and the drain-edge
//! flush (the last token's communication has no later compute to hide
//! behind) runs on that reconstructed state exactly as it would after
//! stepping. A failed certificate — e.g. while the pipeline-fill
//! transient is still settling — just moves the attempt point and keeps
//! stepping, which is exact regardless. When the binding genuinely
//! changes partway through the range (two timestamp quadratics with
//! slightly different KV-stretch rates crossing), the failing comparison
//! localizes its breakpoint by binary search and the evaluator takes a
//! *partial* jump to just short of it, re-fits, and jumps the next
//! regime — so piecewise-quadratic schedules with many crossings still
//! collapse into a handful of jumps, and per-search wall clock becomes
//! (near-)independent of `decode_len` whenever certificates land.
//!
//! # The duration grid
//!
//! Byte-identical reports require *exact* arithmetic: the full simulator
//! accumulates `f64` start/finish times op by op, so any closed form must
//! reproduce its floating-point results bit for bit. To make that
//! tractable, serve traces (and only serve traces — training and
//! prefill-only assembly is untouched) are built on a duration grid of
//! `2^-38` seconds (~3.6 picoseconds, ~8 significant decimal digits of
//! headroom at millisecond scale): every op duration is rounded to the
//! nearest grid multiple at assembly time, by both the flat and the
//! pipelined builder. Grid multiples below `2^52` units (~16384 s — wide
//! enough for every in-tree serve span, including the multi-thousand-
//! second flat decode streams of the serve searches) are
//! exactly representable in `f64`, and sums, differences, `min`/`max`
//! of such multiples are again exact grid multiples, so *every* quantity
//! the scheduler and the report sweep compute — start/finish times,
//! busy-interval intersections, exposure measures, per-kind totals — is
//! exact and independent of accumulation order. The evaluator here runs
//! the same recurrence in `i64` grid units and converts back to `f64`
//! once, producing bit-identical values by construction.
//!
//! The KV-cache read makes decode durations *affine* in the step index:
//! [`decode_compute_duration`] computes
//! `quantize(base + rate * kv_start) + quantize(rate) * step`, which is
//! an exact arithmetic series on the grid, so per-token durations stay
//! exactly representable at every step (the per-token arithmetic-series
//! correction of the aperiodic KV-stretch case).
//!
//! # Exactness conditions and fallback
//!
//! [`evaluate_serve_prefix`] returns `None` — and the engines fall back
//! to full assembly + simulation — when any of these fail:
//!
//! - every duration of the prefix trace is a non-negative grid multiple
//!   below `2^52` units (assembly guarantees this for engine-built serve
//!   traces; hand-built traces may not qualify);
//! - decode ops form the trace suffix, split into `explicit_tokens`
//!   equal-length runs with identical stream/kind structure and
//!   dependencies reaching at most one token back;
//! - per-op durations across tokens follow an exact arithmetic series
//!   (constant per-token increment);
//! - no op runs on a gradient-communication stream and no collective
//!   runs on a compute stream (serve traces have one compute and at most
//!   one active comm stream per device, which makes exposed-communication
//!   accounting per-op additive);
//! - all finish times and duration sums stay below `2^52` grid units.
//!
//! Structural fallback is about *safety*, not speed — and it is layered:
//! when the *jump* certificate fails (binding not yet stable, crossing
//! quadratics, a queue shape that does not repeat), the evaluator falls
//! back to explicit per-token stepping, which is still exact and still
//! orders of magnitude cheaper than materializing and sweeping the full
//! trace; only the structural conditions above force full simulation.

use std::collections::VecDeque;

use madmax_hw::units::Seconds;
use madmax_model::{LayerClass, ModelArch};
use madmax_parallel::MemoryBreakdown;

use crate::metrics::{
    class_idx, comm_stream_device, device_slot, kind_idx, to_map, IterationReport, ServeStats,
    COLLECTIVES,
};
use crate::trace::{OpKind, Phase, StreamId, Trace};

/// Grid resolution: durations are multiples of `2^-GRID_BITS` seconds.
/// 38 bits (~3.6 ps) keeps per-op rounding far below modeling accuracy
/// while the exact range `2^(52-38)` s covers every in-tree serve span.
pub const GRID_BITS: u32 = 38;

/// Largest exactly-safe magnitude in grid units: below `2^52` units every
/// value (and every pairwise sum) stays exactly representable in `f64`.
const MAX_UNITS: i64 = 1 << 52;

/// Decode length below which the engines skip the closed-form path: the
/// explicit transient prefix would cover most of the stream anyway, so
/// full simulation is just as fast.
pub const MIN_ANALYTIC_DECODE: usize = 32;

/// Explicit transient decode tokens simulated before template
/// extraction: the minimum that confirms the per-token arithmetic
/// series (reference token, two confirmation tokens, plus the token the
/// templates are anchored on). Pipeline-fill transients longer than
/// this are handled by the stepping loop — the jump certificate simply
/// fails until the binding settles.
pub const EXPLICIT_TOKENS: usize = 4;

/// Grid units per second, as the exact `f64` `2^GRID_BITS`.
fn unit_scale() -> f64 {
    (1u64 << GRID_BITS) as f64
}

/// Rounds a duration to the nearest grid multiple. Idempotent on grid
/// multiples; negative and non-finite inputs pass through unchanged (the
/// debug checker and the fallback path reject them downstream).
pub fn quantize(d: Seconds) -> Seconds {
    let s = d.as_secs();
    if !s.is_finite() {
        return d;
    }
    Seconds::new((s * unit_scale()).round() / unit_scale())
}

/// The decode-step compute duration at token `step`, exactly affine on
/// the grid: `quantize(base + rate * kv_start) + quantize(rate) * step`.
///
/// Both serve builders route decode compute through this helper so the
/// per-token KV-cache stretch forms an exact arithmetic series — the
/// property the steady-state evaluator's extrapolation relies on.
pub fn decode_compute_duration(
    base: Seconds,
    rate_per_token: Seconds,
    kv_start: f64,
    step: u32,
) -> Seconds {
    quantize(base + rate_per_token * kv_start) + quantize(rate_per_token) * step as f64
}

/// The exact grid-unit count of a duration, or `None` when it is not a
/// safe grid multiple (negative, non-finite, fractional, or too large).
fn units_of(d: Seconds) -> Option<i64> {
    let s = d.as_secs();
    if !s.is_finite() || s < 0.0 {
        return None;
    }
    let u = s * unit_scale();
    if u.fract() != 0.0 || u >= MAX_UNITS as f64 {
        return None;
    }
    Some(u as i64)
}

/// Converts grid units back to seconds; exact for `|u| < 2^52`.
fn secs_of(u: i64) -> Seconds {
    Seconds::new(u as f64 / unit_scale())
}

/// Whether a time span fits the exact grid range (`< 2^52` grid units,
/// about 16384 s at the current resolution). The closed form only engages
/// when every scheduled finish time *and* the serialized total stay in
/// range — beyond it, grid sums are no longer exact in `f64` and the
/// evaluator falls back to full simulation. Callers can apply this to a
/// fully simulated report's `iteration_time` and `serialized_time` to
/// predict whether the analytic path covers a scenario.
pub fn fits_grid_range(t: Seconds) -> bool {
    let u = t.as_secs() * unit_scale();
    u.is_finite() && u >= 0.0 && u < MAX_UNITS as f64
}

// --- Event-layer re-entry API -------------------------------------------
//
// The continuous-batching load simulator (`madmax-serve`) layers an
// event-driven clock on top of this module's duration grid: between
// arrival/completion/eviction events the in-flight set is stable, every
// decode step costs the same affine `c + r*k` grid units the certified
// jump already extrapolates, and the event layer advances whole runs of
// steps as closed-form series sums. These helpers expose exactly the
// integer arithmetic that jump uses — unit conversion, checked series
// totals, and the binary search that localizes the first step crossing a
// deadline — so the layer above re-enters the same exactness argument
// instead of re-deriving it.

/// The exact grid-unit count of a duration, or `None` when it is not a
/// safe grid multiple (negative, non-finite, fractional, or `>= 2^52`
/// units). Public face of the closed form's unit conversion for the
/// event-driven serve layer.
pub fn grid_units(d: Seconds) -> Option<i64> {
    units_of(d)
}

/// Converts grid units back to seconds; exact for `|u| < 2^52`.
pub fn grid_seconds(u: i64) -> Seconds {
    secs_of(u)
}

/// Rounds an arbitrary non-negative duration to the nearest on-grid unit
/// count, clamping into the exact range. The trace/Poisson arrival clocks
/// of the load simulator snap to the grid through this, so every event
/// timestamp shares the closed form's exactness domain.
pub fn grid_units_round(d: Seconds) -> Option<i64> {
    let s = d.as_secs();
    if !s.is_finite() || s < 0.0 {
        return None;
    }
    let u = (s * unit_scale()).round();
    if u >= MAX_UNITS as f64 {
        return None;
    }
    #[allow(clippy::cast_possible_truncation)]
    Some(u as i64)
}

/// Total duration of `n` consecutive affine steps where step `k`
/// (`0 <= k < n`) costs `c + r * (start + k)` grid units: the series sum
/// `n*c + r*(n*start + n*(n-1)/2)`, computed in `i128` and rejected
/// (`None`) when any intermediate step cost is negative or the total
/// leaves the exact grid range. This is the same arithmetic-series total
/// the certified jump advances its accumulators by.
pub fn affine_series_units(c: i64, r: i64, start: i64, n: i64) -> Option<i64> {
    if n < 0 || start < 0 {
        return None;
    }
    if n == 0 {
        return Some(0);
    }
    // Affine step costs are monotone in k, so the extremes bound the run.
    let first = i128::from(c) + i128::from(r) * i128::from(start);
    let last = i128::from(c) + i128::from(r) * (i128::from(start) + i128::from(n) - 1);
    if first.min(last) < 0 {
        return None;
    }
    let n128 = i128::from(n);
    let total =
        n128 * i128::from(c) + i128::from(r) * (n128 * i128::from(start) + n128 * (n128 - 1) / 2);
    if total >= i128::from(MAX_UNITS) {
        return None;
    }
    i64::try_from(total).ok()
}

/// The smallest `n` in `1..=max_n` whose cumulative series total
/// [`affine_series_units`]`(c, r, start, n)` reaches `target`, or `None`
/// when even `max_n` steps stay short (or the series leaves the exact
/// range first). Requires non-negative step costs over the whole range so
/// the cumulative total is monotone — the binary search that localizes
/// arrival/horizon crossings for the event layer, mirroring how partial
/// jumps chain across regime changes inside the closed form.
pub fn first_series_crossing(c: i64, r: i64, start: i64, max_n: i64, target: i64) -> Option<i64> {
    if max_n < 1 {
        return None;
    }
    let total = affine_series_units(c, r, start, max_n)?;
    if total < target {
        return None;
    }
    let (mut lo, mut hi) = (1i64, max_n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        // In range: the `max_n` total was, and totals are monotone.
        let t = affine_series_units(c, r, start, mid).expect("prefix of an in-range series");
        if t >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Serve-stream dimensions of the candidate under evaluation, used to
/// attach [`ServeStats`] to the synthesized report.
#[derive(Debug, Clone, Copy)]
pub struct ServeDims {
    /// Resolved prompt length.
    pub prompt_len: usize,
    /// Output tokens per sequence.
    pub decode_len: usize,
    /// Sequences decoded concurrently.
    pub decode_batch: usize,
}

/// Scalar accounting bucket of one template op (dense indices match the
/// report sweep's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Acc {
    /// GEMM time, by dense layer-class index.
    Gemm(u8),
    /// Embedding lookup time.
    Lookup,
    /// Optimizer time (never in a decode token, but kept total).
    Optimizer,
    /// Collective time, by dense collective index.
    Coll(u8),
}

/// A dependency of a template op, relative to the token structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TplDep {
    /// Op `j` of the same token.
    Same(u32),
    /// Op `j` of the previous token.
    Prev(u32),
}

/// One op of the per-token template: everything the evaluator needs to
/// advance the schedule and the report accumulators by one token.
#[derive(Debug, Clone)]
struct TplOp {
    /// Dense stream slot ([`StreamId::slot`]).
    slot: u32,
    /// Device of the stream ([`device_slot`] for compute,
    /// [`comm_stream_device`] for comm).
    device: u32,
    /// Whether the stream occupies compute resources.
    compute: bool,
    /// Pipeline stage of a `StageCompute` stream, for busy accounting.
    stage: Option<u16>,
    /// Scalar accounting bucket.
    acc: Acc,
    /// Duration at token `t` is `base + rate * t` grid units.
    base: i64,
    /// Per-token duration increment (the quantized KV read rate).
    rate: i64,
    /// Dependencies, relative to the token structure.
    deps: Vec<TplDep>,
}

/// Per-device exposure bookkeeping: retained compute windows and comm
/// ops awaiting finalization, in grid units.
#[derive(Debug, Default)]
struct DevState {
    /// Stream slot of this device's compute stream.
    compute_slot: u32,
    /// Unpruned compute windows `(start, finish)`, in start order.
    cw: VecDeque<(i64, i64)>,
    /// Comm ops `(start, finish, kind_idx)` whose exposure is not final
    /// yet (a future compute window could still overlap them).
    pending: VecDeque<(i64, i64, u8)>,
    /// Whether the token template has any comm op on this device; if not
    /// (and nothing is pending), compute windows need not be retained.
    token_comm: bool,
}

/// Reusable buffers for [`evaluate_serve_prefix`]; keep one per worker
/// thread alongside the engine scratch.
#[derive(Debug, Default)]
pub struct SteadyScratch {
    /// Per-op finish times of the explicit prefix, by op index.
    fin: Vec<i64>,
    /// Per-stream-slot availability, in grid units.
    avail: Vec<i64>,
    /// Template-op finish times of the current / previous token.
    cur: Vec<i64>,
    prev: Vec<i64>,
    /// Per-device exposure state.
    devs: Vec<DevState>,
    /// The extracted per-token template.
    tpl: Vec<TplOp>,
    /// Per-stage compute busy time, dense by stage index.
    stage_busy: Vec<i64>,
    /// Whether device slot `d` ever ran a compute op.
    device_seen: Vec<bool>,
}

/// Scalar report accumulators, all in exact grid units.
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    serialized: i64,
    gemm: i64,
    lookup: i64,
    optimizer: i64,
    comm: i64,
    comm_by: [i64; 5],
    comm_touched: [bool; 5],
    gemm_by: [i64; 4],
    gemm_touched: [bool; 4],
    exposed: i64,
    exposed_by: [i64; 5],
    exposed_touched: [bool; 5],
}

impl Totals {
    /// Records one op's duration in its scalar bucket.
    fn add(&mut self, acc: Acc, dur: i64) {
        self.serialized += dur;
        match acc {
            Acc::Gemm(c) => {
                self.gemm += dur;
                self.gemm_by[c as usize] += dur;
                self.gemm_touched[c as usize] = true;
            }
            Acc::Lookup => self.lookup += dur,
            Acc::Optimizer => self.optimizer += dur,
            Acc::Coll(k) => {
                self.comm += dur;
                self.comm_by[k as usize] += dur;
                self.comm_touched[k as usize] = true;
            }
        }
    }
}

/// Classifies one trace op into its accounting bucket, rejecting the
/// structures the additive exposure argument cannot cover: collectives on
/// compute streams and any use of a gradient-communication stream.
fn classify(stream: StreamId, kind: OpKind) -> Option<Acc> {
    if matches!(stream, StreamId::GradComm | StreamId::StageGradComm(_)) {
        return None;
    }
    match kind {
        OpKind::Gemm { class } => stream
            .is_compute()
            .then(|| Acc::Gemm(class_idx(class) as u8)),
        OpKind::Lookup => stream.is_compute().then_some(Acc::Lookup),
        OpKind::Optimizer => stream.is_compute().then_some(Acc::Optimizer),
        OpKind::Collective { kind } => stream.is_comm().then(|| Acc::Coll(kind_idx(kind) as u8)),
    }
}

/// The device a stream belongs to (compute and comm mapped consistently
/// with the report sweep's bucketing).
fn device_of(stream: StreamId) -> usize {
    if stream.is_compute() {
        device_slot(stream.stage())
    } else {
        comm_stream_device(stream.slot())
    }
}

/// Stream slot of a device's compute stream (`Compute` for the flat
/// representative device, `StageCompute(d - 1)` for stage devices).
fn compute_slot_of(device: usize) -> u32 {
    if device == 0 {
        0
    } else {
        3 * device as u32
    }
}

/// Extracts the per-token template from the explicit prefix: token 1
/// provides the structure, token 2 the per-token duration increment, and
/// every further explicit token must confirm both. Returns the ops per
/// token, or `None` when the prefix is not token-periodic.
fn extract_template(
    trace: &Trace,
    prefill_ops: usize,
    explicit_tokens: usize,
    decode_len: usize,
    out: &mut Vec<TplOp>,
) -> Option<usize> {
    out.clear();
    let tok_ops = trace.len().checked_sub(prefill_ops)?;
    if explicit_tokens < 4 || tok_ops == 0 || tok_ops % explicit_tokens != 0 {
        return None;
    }
    let k = tok_ops / explicit_tokens;
    let base1 = prefill_ops + k;
    let ops = trace.ops();
    for j in 0..k {
        let op1 = &ops[base1 + j];
        let op2 = &ops[base1 + k + j];
        if op2.stream != op1.stream || op2.kind != op1.kind {
            return None;
        }
        let acc = classify(op1.stream, op1.kind)?;
        let d1 = units_of(op1.duration)?;
        let d2 = units_of(op2.duration)?;
        let rate = d2 - d1;
        let base = d1 - rate;
        if rate < 0 || base < 0 {
            return None;
        }
        // The duration at the final token must stay in the exact range.
        if base as i128 + rate as i128 * (decode_len as i128 - 1) >= MAX_UNITS as i128 {
            return None;
        }
        let mut deps = Vec::with_capacity(op1.deps.len());
        for &d in &op1.deps {
            let dep = if d.0 >= base1 {
                TplDep::Same((d.0 - base1) as u32)
            } else if d.0 >= prefill_ops {
                TplDep::Prev((d.0 - prefill_ops) as u32)
            } else {
                return None; // reaches past the previous token
            };
            deps.push(dep);
        }
        // Token 2's dependencies must be token 1's shifted by one token.
        if op2.deps.len() != op1.deps.len()
            || !op1
                .deps
                .iter()
                .zip(op2.deps.iter())
                .all(|(a, b)| b.0 == a.0 + k)
        {
            return None;
        }
        out.push(TplOp {
            slot: op1.stream.slot() as u32,
            device: device_of(op1.stream) as u32,
            compute: op1.stream.is_compute(),
            stage: match op1.stream {
                StreamId::StageCompute(s) => Some(s),
                _ => None,
            },
            acc,
            base,
            rate,
            deps,
        });
    }
    // Confirm the template against every further explicit token.
    for tok in 2..explicit_tokens {
        let at = prefill_ops + tok * k;
        for (j, tpl) in out.iter().enumerate() {
            let op = &ops[at + j];
            let ref_op = &ops[base1 + j];
            if op.stream != ref_op.stream
                || op.kind != ref_op.kind
                || op.phase != Phase::Decode
                || units_of(op.duration)? != tpl.base + tpl.rate * tok as i64
                || op.deps.len() != ref_op.deps.len()
                || !ref_op
                    .deps
                    .iter()
                    .zip(op.deps.iter())
                    .all(|(a, b)| b.0 == a.0 + (tok - 1) * k)
            {
                return None;
            }
        }
    }
    Some(k)
}

/// Finalizes the exposure of one comm op `(cs, cf, kind)` against the
/// device's retained compute windows, mirroring the report sweep's
/// per-collective walk (prune windows ending at or before the comm
/// start, then accumulate intersections until one outlasts the op).
fn expose(dev: &mut DevState, cs: i64, cf: i64, kind: u8, totals: &mut Totals) {
    while let Some(&(_, wf)) = dev.cw.front() {
        if wf <= cs {
            dev.cw.pop_front();
        } else {
            break;
        }
    }
    let mut inter = 0i64;
    for &(ws, wf) in &dev.cw {
        let lo = cs.max(ws);
        let hi = cf.min(wf);
        if hi > lo {
            inter += hi - lo;
        }
        if cf < wf {
            break;
        }
    }
    let e = cf - cs - inter;
    totals.exposed += e;
    totals.exposed_by[kind as usize] += e;
    totals.exposed_touched[kind as usize] = true;
}

/// Pops every pending comm op whose exposure can no longer change: once
/// the device's compute stream is available at or past the op's finish,
/// no future compute window can start before it.
fn finalize_ready(dev: &mut DevState, avail: &[i64], totals: &mut Totals) {
    let ca = avail.get(dev.compute_slot as usize).copied().unwrap_or(0);
    while let Some(&(cs, cf, kind)) = dev.pending.front() {
        if ca < cf {
            break;
        }
        dev.pending.pop_front();
        expose(dev, cs, cf, kind, totals);
    }
}

/// Grows `devs` so `device` is addressable, wiring each new slot's
/// compute stream.
fn ensure_device(devs: &mut Vec<DevState>, device: usize) {
    while devs.len() <= device {
        let d = devs.len();
        devs.push(DevState {
            compute_slot: compute_slot_of(d),
            ..DevState::default()
        });
    }
}

/// A quadratic sequence in Newton form, `q(u) = a + b·u + c·u(u−1)/2`,
/// with exact `i128` coefficients.
///
/// Once the pipeline is full and the max-plus recurrence's binding
/// (which dependency determines each start) stabilizes, every finish
/// time is a sum of affine durations along a fixed path — exactly
/// quadratic in the token index with integer Newton coefficients. The
/// jump fits these quadratics from three consecutive states and
/// certifies them symbolically (see [`certify_and_jump`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Quad {
    a: i128,
    b: i128,
    c: i128,
}

impl Quad {
    const ZERO: Quad = Quad { a: 0, b: 0, c: 0 };

    /// The unique quadratic through three consecutive values
    /// `q(0), q(1), q(2)`.
    fn fit(v0: i64, v1: i64, v2: i64) -> Quad {
        let b = i128::from(v1) - i128::from(v0);
        Quad {
            a: i128::from(v0),
            b,
            c: (i128::from(v2) - i128::from(v1)) - b,
        }
    }

    fn eval(self, u: i128) -> i128 {
        self.a + self.b * u + self.c * (u * (u - 1) / 2)
    }

    /// The same sequence re-anchored one step later: `q'(u) = q(u+1)`.
    fn shift(self) -> Quad {
        Quad {
            a: self.a + self.b,
            b: self.b + self.c,
            c: self.c,
        }
    }

    fn add(self, o: Quad) -> Quad {
        Quad {
            a: self.a + o.a,
            b: self.b + o.b,
            c: self.c + o.c,
        }
    }

    fn sub(self, o: Quad) -> Quad {
        Quad {
            a: self.a - o.a,
            b: self.b - o.b,
            c: self.c - o.c,
        }
    }

    /// Adds the affine duration `d0 + r·u`.
    fn add_affine(self, d0: i64, r: i64) -> Quad {
        Quad {
            a: self.a + i128::from(d0),
            b: self.b + i128::from(r),
            c: self.c,
        }
    }

    /// `Σ_{u=0}^{n−1} q(u) = a·n + b·n(n−1)/2 + c·C(n,3)`, exact.
    fn sum(self, n: i128) -> i128 {
        self.a * n + self.b * (n * (n - 1) / 2) + self.c * (n * (n - 1) * (n - 2) / 6)
    }

    /// Whether `q(u) ≥ 0` for every integer `u ∈ [0, hi]`. Endpoints
    /// always bind; a convex quadratic (`c > 0`) additionally needs the
    /// integer points flanking its real vertex.
    fn ge0_over(self, hi: i128) -> bool {
        if self.a < 0 || self.eval(hi) < 0 {
            return false;
        }
        if self.c > 0 {
            // In monomial form q = a + (b − c/2)·u + (c/2)·u², so the
            // minimum sits at u* = (c − 2b) / (2c).
            let v = (self.c - 2 * self.b).div_euclid(2 * self.c);
            for u in [v, v + 1] {
                if u > 0 && u < hi && self.eval(u) < 0 {
                    return false;
                }
            }
        }
        true
    }
}

/// `Some(true)` when `x(u) ≥ y(u)` for every integer `u ∈ [0, hi]`,
/// `Some(false)` when `x(u) < y(u)` throughout, `None` when the order
/// flips inside the range (the certificate fails).
fn cmp_ge(x: Quad, y: Quad, hi: i128) -> Option<bool> {
    let d = x.sub(y);
    if d.ge0_over(hi) {
        Some(true)
    } else if (Quad {
        a: -d.a - 1,
        b: -d.b,
        c: -d.c,
    })
    .ge0_over(hi)
    {
        Some(false)
    } else {
        None
    }
}

/// The pointwise max of two quadratics over `[0, hi]`, when one
/// dominates throughout; `None` when they cross.
fn dominant_max(x: Quad, y: Quad, hi: i128) -> Option<Quad> {
    if x.sub(y).ge0_over(hi) {
        Some(x)
    } else if y.sub(x).ge0_over(hi) {
        Some(y)
    } else {
        None
    }
}

/// The pointwise min of two quadratics over `[0, hi]`, when one is
/// dominated throughout; `None` when they cross.
fn dominant_min(x: Quad, y: Quad, hi: i128) -> Option<Quad> {
    if x.sub(y).ge0_over(hi) {
        Some(y)
    } else if y.sub(x).ge0_over(hi) {
        Some(x)
    } else {
        None
    }
}

/// Smallest horizon still worth certifying: below this many tokens the
/// fit/certify overhead exceeds just stepping them.
const MIN_JUMP: i128 = 4;

/// Shrinks the certification horizon to the longest prefix `[0, p]` on
/// which `ok` still holds; fails the certificate (`None`) when that
/// prefix is shorter than [`MIN_JUMP`] tokens.
///
/// Called when a comparison that must stay constant across the jump
/// range flips inside it. `ok` is prefix-closed (a comparison constant
/// over `[0, p]` is constant over every shorter prefix) and `ok(0)`
/// always holds (any order is constant on a single point), so a binary
/// search pins the exact breakpoint. Restricting the horizon to stop
/// just short of it lets the *same* certification pass continue — every
/// comparison already certified holds a fortiori on the sub-range — so
/// one attempt lands the maximal partial jump over the current
/// constant-binding regime instead of discarding its work.
fn shrink(hi: &mut i128, ok: impl Fn(i128) -> bool) -> Option<()> {
    let (mut good, mut bad) = (0i128, *hi);
    while bad - good > 1 {
        let mid = good + (bad - good) / 2;
        if ok(mid) {
            good = mid;
        } else {
            bad = mid;
        }
    }
    if good + 1 < MIN_JUMP {
        return None;
    }
    *hi = good;
    Some(())
}

/// [`cmp_ge`] over a shrinkable horizon: a flip inside the range
/// restricts `hi` to just short of the breakpoint instead of failing.
fn cmp_ge_over(x: Quad, y: Quad, hi: &mut i128) -> Option<bool> {
    match cmp_ge(x, y, *hi) {
        Some(v) => Some(v),
        None => {
            shrink(hi, |p| cmp_ge(x, y, p).is_some())?;
            cmp_ge(x, y, *hi)
        }
    }
}

/// [`dominant_max`] over a shrinkable horizon.
fn dominant_max_over(x: Quad, y: Quad, hi: &mut i128) -> Option<Quad> {
    match dominant_max(x, y, *hi) {
        Some(q) => Some(q),
        None => {
            shrink(hi, |p| dominant_max(x, y, p).is_some())?;
            dominant_max(x, y, *hi)
        }
    }
}

/// [`dominant_min`] over a shrinkable horizon.
fn dominant_min_over(x: Quad, y: Quad, hi: &mut i128) -> Option<Quad> {
    match dominant_min(x, y, *hi) {
        Some(q) => Some(q),
        None => {
            shrink(hi, |p| dominant_min(x, y, p).is_some())?;
            dominant_min(x, y, *hi)
        }
    }
}

/// One full recurrence state — previous-token finishes, per-slot
/// availability, and the per-device exposure queues — captured after a
/// token step. Three consecutive snapshots fit the jump quadratics.
#[derive(Debug, Clone)]
struct Snap {
    prev: Vec<i64>,
    avail: Vec<i64>,
    cw: Vec<Vec<(i64, i64)>>,
    pending: Vec<Vec<(i64, i64, u8)>>,
}

impl Snap {
    fn capture(prev: &[i64], avail: &[i64], devs: &[DevState]) -> Snap {
        Snap {
            prev: prev.to_vec(),
            avail: avail.to_vec(),
            cw: devs
                .iter()
                .map(|d| d.cw.iter().copied().collect())
                .collect(),
            pending: devs
                .iter()
                .map(|d| d.pending.iter().copied().collect())
                .collect(),
        }
    }
}

/// Symbolic mirror of [`DevState`] with quadratic timestamps.
struct SymDev {
    compute_slot: u32,
    token_comm: bool,
    cw: VecDeque<(Quad, Quad)>,
    pending: VecDeque<(Quad, Quad, u8)>,
}

/// Symbolic mirror of [`expose`]: every prune, overlap, and break
/// decision must hold uniformly over the certification range.
fn sym_expose(
    cw: &mut VecDeque<(Quad, Quad)>,
    cs: Quad,
    cf: Quad,
    kind: u8,
    hi: &mut i128,
    exposed: &mut [Quad; 5],
    touched: &mut [bool; 5],
) -> Option<()> {
    while let Some(&(_, wf)) = cw.front() {
        if cmp_ge_over(cs, wf, hi)? {
            cw.pop_front();
        } else {
            break;
        }
    }
    let one = Quad { a: 1, b: 0, c: 0 };
    let mut inter = Quad::ZERO;
    for &(ws, wf) in cw.iter() {
        let lo = dominant_max_over(cs, ws, hi)?;
        let top = dominant_min_over(cf, wf, hi)?;
        if cmp_ge_over(top, lo.add(one), hi)? {
            inter = inter.add(top.sub(lo));
        }
        if cmp_ge_over(wf, cf.add(one), hi)? {
            break;
        }
    }
    let e = cf.sub(cs).sub(inter);
    exposed[kind as usize] = exposed[kind as usize].add(e);
    touched[kind as usize] = true;
    Some(())
}

/// Symbolic mirror of [`finalize_ready`].
fn sym_finalize_ready(
    dev: &mut SymDev,
    savail: &[Quad],
    hi: &mut i128,
    exposed: &mut [Quad; 5],
    touched: &mut [bool; 5],
) -> Option<()> {
    let ca = savail
        .get(dev.compute_slot as usize)
        .copied()
        .unwrap_or(Quad::ZERO);
    while let Some(&(cs, cf, kind)) = dev.pending.front() {
        if cmp_ge_over(ca, cf, hi)? {
            dev.pending.pop_front();
            sym_expose(&mut dev.cw, cs, cf, kind, hi, exposed, touched)?;
        } else {
            break;
        }
    }
    Some(())
}

/// Outcome of a jump attempt at a token boundary.
enum JumpOutcome {
    /// State and totals were fast-forwarded by this many tokens — the
    /// whole range asked for, or the longest certifiable prefix of it
    /// when a binding change sits inside (a *partial* jump).
    Jumped(i64),
    /// The certificate failed with no certifiable prefix worth jumping;
    /// explicit stepping continues (still exact).
    NotCertified,
    /// The certified horizon leaves the exact grid range, exactly as the
    /// explicit loop's per-token guard would: fall back to full
    /// simulation.
    OutOfRange,
}

/// Attempts to fast-forward up to `n` tokens from `tok0` in closed
/// form, returning how many tokens were actually jumped.
///
/// `snaps` holds the states after tokens `tok0 − 3`, `tok0 − 2`, and
/// `tok0 − 1` (the live state). Each state component is fitted to the
/// unique Newton-form [`Quad`] through the three snapshots, then one
/// token step is executed *symbolically*: every max, min, and branch the
/// concrete step would take — dependency maxima, window pruning, overlap
/// accumulation, finalization order — is certified to resolve the same
/// way for every token in the jump range via integer quadratic
/// inequalities ([`Quad::ge0_over`]). If the symbolic step maps the
/// fitted state exactly onto its own one-token shift, induction from the
/// live state makes the quadratics exact for the whole range: totals
/// advance by closed-form series sums and the final state (including the
/// exposure queues the drain-edge flush needs) is reconstructed by
/// evaluation at the certified horizon. A comparison that flips inside
/// the range does not fail the attempt: the horizon shrinks to just
/// short of the breakpoint ([`shrink`]) and certification continues, so
/// one attempt lands the maximal partial jump over the current
/// constant-binding regime.
#[allow(clippy::too_many_arguments)]
fn certify_and_jump(
    tpl: &[TplOp],
    snaps: &[Snap],
    n: i64,
    tok0: usize,
    prev: &mut [i64],
    avail: &mut [i64],
    devs: &mut [DevState],
    stage_busy: &mut [i64],
    totals: &mut Totals,
) -> JumpOutcome {
    let [s0, s1, s2] = snaps else {
        return JumpOutcome::NotCertified;
    };
    // Queue shapes must agree across the snapshots (and with the live
    // state, which s2 captured) for positional fitting to make sense.
    for d in 0..devs.len() {
        if s0.cw[d].len() != s2.cw[d].len()
            || s1.cw[d].len() != s2.cw[d].len()
            || s0.pending[d].len() != s2.pending[d].len()
            || s1.pending[d].len() != s2.pending[d].len()
            || !s0.pending[d]
                .iter()
                .zip(&s1.pending[d])
                .zip(&s2.pending[d])
                .all(|((a, b), c)| a.2 == b.2 && b.2 == c.2)
        {
            return JumpOutcome::NotCertified;
        }
    }
    // Fit each component through the snapshots, re-anchored at the live
    // state: u = 0 is the state after token tok0 − 1.
    let fit2 = |v0, v1, v2| Quad::fit(v0, v1, v2).shift().shift();
    let k = prev.len();
    let sprev: Vec<Quad> = (0..k)
        .map(|j| fit2(s0.prev[j], s1.prev[j], s2.prev[j]))
        .collect();
    let savail0: Vec<Quad> = (0..avail.len())
        .map(|i| fit2(s0.avail[i], s1.avail[i], s2.avail[i]))
        .collect();
    let mut orig_cw: Vec<Vec<(Quad, Quad)>> = Vec::with_capacity(devs.len());
    let mut orig_pending: Vec<Vec<(Quad, Quad, u8)>> = Vec::with_capacity(devs.len());
    let mut sdevs: Vec<SymDev> = Vec::with_capacity(devs.len());
    for (d, dev) in devs.iter().enumerate() {
        let cw: Vec<(Quad, Quad)> = (0..s2.cw[d].len())
            .map(|i| {
                (
                    fit2(s0.cw[d][i].0, s1.cw[d][i].0, s2.cw[d][i].0),
                    fit2(s0.cw[d][i].1, s1.cw[d][i].1, s2.cw[d][i].1),
                )
            })
            .collect();
        let pending: Vec<(Quad, Quad, u8)> = (0..s2.pending[d].len())
            .map(|i| {
                (
                    fit2(s0.pending[d][i].0, s1.pending[d][i].0, s2.pending[d][i].0),
                    fit2(s0.pending[d][i].1, s1.pending[d][i].1, s2.pending[d][i].1),
                    s2.pending[d][i].2,
                )
            })
            .collect();
        sdevs.push(SymDev {
            compute_slot: dev.compute_slot,
            token_comm: dev.token_comm,
            cw: cw.iter().copied().collect(),
            pending: pending.iter().copied().collect(),
        });
        orig_cw.push(cw);
        orig_pending.push(pending);
    }

    // ---- One symbolic token step over u ∈ [0, n − 1] ----
    let mut hi = i128::from(n) - 1;
    let mut savail = savail0.clone();
    let mut scur = vec![Quad::ZERO; k];
    let mut exposed = [Quad::ZERO; 5];
    let mut etouched = [false; 5];
    for (j, op) in tpl.iter().enumerate() {
        let d0 = op.base + op.rate * tok0 as i64;
        let mut start = savail[op.slot as usize];
        for &d in &op.deps {
            let f = match d {
                TplDep::Same(s) => scur[s as usize],
                TplDep::Prev(p) => sprev[p as usize],
            };
            let Some(m) = dominant_max_over(start, f, &mut hi) else {
                return JumpOutcome::NotCertified;
            };
            start = m;
        }
        let f = start.add_affine(d0, op.rate);
        scur[j] = f;
        savail[op.slot as usize] = f;
        let dev = &mut sdevs[op.device as usize];
        if op.compute {
            if dev.token_comm || !dev.pending.is_empty() {
                dev.cw.push_back((start, f));
            }
        } else {
            let Acc::Coll(kind) = op.acc else {
                return JumpOutcome::NotCertified;
            };
            dev.pending.push_back((start, f, kind));
        }
    }
    for dev in &mut sdevs {
        if sym_finalize_ready(dev, &savail, &mut hi, &mut exposed, &mut etouched).is_none() {
            return JumpOutcome::NotCertified;
        }
    }
    // The symbolic step must map the fitted state exactly onto its own
    // one-token shift; induction from the live state then makes the
    // quadratics exact over the whole range.
    if (0..k).any(|j| scur[j] != sprev[j].shift())
        || (0..savail.len()).any(|i| savail[i] != savail0[i].shift())
    {
        return JumpOutcome::NotCertified;
    }
    for (d, dev) in sdevs.iter().enumerate() {
        if dev.cw.len() != orig_cw[d].len()
            || dev
                .cw
                .iter()
                .zip(&orig_cw[d])
                .any(|(&(s, f), &(os, of))| s != os.shift() || f != of.shift())
            || dev.pending.len() != orig_pending[d].len()
            || dev
                .pending
                .iter()
                .zip(&orig_pending[d])
                .any(|(&(s, f, kd), &(os, of, okd))| {
                    s != os.shift() || f != of.shift() || kd != okd
                })
        {
            return JumpOutcome::NotCertified;
        }
    }

    // ---- Range checks before committing anything ----
    let ni = hi + 1;
    let mut dur_sums = Vec::with_capacity(tpl.len());
    let mut added: i128 = 0;
    for op in tpl {
        let d0 = i128::from(op.base) + i128::from(op.rate) * tok0 as i128;
        let s = d0 * ni + i128::from(op.rate) * (ni * (ni - 1) / 2);
        added += s;
        dur_sums.push(s);
    }
    if i128::from(totals.serialized) + added >= i128::from(MAX_UNITS) {
        return JumpOutcome::OutOfRange;
    }
    let final_val = |q: Quad| -> Result<i64, JumpOutcome> {
        let v = q.eval(ni);
        if v >= i128::from(MAX_UNITS) {
            Err(JumpOutcome::OutOfRange)
        } else if v < 0 {
            Err(JumpOutcome::NotCertified)
        } else {
            Ok(v as i64)
        }
    };
    let mut fprev = Vec::with_capacity(k);
    for &q in &sprev {
        match final_val(q) {
            Ok(v) => fprev.push(v),
            Err(o) => return o,
        }
    }
    let mut favail = Vec::with_capacity(savail0.len());
    for &q in &savail0 {
        match final_val(q) {
            Ok(v) => favail.push(v),
            Err(o) => return o,
        }
    }
    let mut fcw: Vec<Vec<(i64, i64)>> = Vec::with_capacity(devs.len());
    let mut fpending: Vec<Vec<(i64, i64, u8)>> = Vec::with_capacity(devs.len());
    for d in 0..devs.len() {
        let mut cw = Vec::with_capacity(orig_cw[d].len());
        for &(s, f) in &orig_cw[d] {
            match (final_val(s), final_val(f)) {
                (Ok(s), Ok(f)) => cw.push((s, f)),
                (Err(o), _) | (_, Err(o)) => return o,
            }
        }
        let mut pending = Vec::with_capacity(orig_pending[d].len());
        for &(s, f, kd) in &orig_pending[d] {
            match (final_val(s), final_val(f)) {
                (Ok(s), Ok(f)) => pending.push((s, f, kd)),
                (Err(o), _) | (_, Err(o)) => return o,
            }
        }
        fcw.push(cw);
        fpending.push(pending);
    }
    let mut expo_sums = [0i64; 5];
    for kd in 0..5 {
        if etouched[kd] {
            let s = exposed[kd].sum(ni);
            if !(0..i128::from(MAX_UNITS)).contains(&s) {
                return JumpOutcome::NotCertified;
            }
            expo_sums[kd] = s as i64;
        }
    }

    // ---- Commit: series sums into the totals, final state in place ----
    for (op, &s) in tpl.iter().zip(&dur_sums) {
        totals.add(op.acc, s as i64);
        if let Some(st) = op.stage {
            stage_busy[st as usize] += s as i64;
        }
    }
    for kd in 0..5 {
        if etouched[kd] {
            totals.exposed += expo_sums[kd];
            totals.exposed_by[kd] += expo_sums[kd];
            totals.exposed_touched[kd] = true;
        }
    }
    prev.copy_from_slice(&fprev);
    avail.copy_from_slice(&favail);
    for (d, dev) in devs.iter_mut().enumerate() {
        dev.cw.clear();
        dev.cw.extend(fcw[d].iter().copied());
        dev.pending.clear();
        dev.pending.extend(fpending[d].iter().copied());
    }
    JumpOutcome::Jumped(ni as i64)
}

/// Evaluates a serve candidate from its explicit prefix trace (prefill +
/// `explicit_tokens` decode tokens, built by the regular assembly with a
/// capped decode loop), synthesizing the [`IterationReport`] the full
/// simulation of all `dims.decode_len` tokens would produce — bit for
/// bit. Returns `None` when any exactness condition fails (see the
/// module docs); callers then fall back to full assembly.
pub fn evaluate_serve_prefix(
    trace: &Trace,
    explicit_tokens: usize,
    dims: &ServeDims,
    model: &ModelArch,
    memory: MemoryBreakdown,
    scratch: &mut SteadyScratch,
) -> Option<IterationReport> {
    if explicit_tokens > dims.decode_len {
        return None;
    }
    let ops = trace.ops();
    let prefill_ops = ops.partition_point(|op| op.phase != Phase::Decode);

    let SteadyScratch {
        fin,
        avail,
        cur,
        prev,
        devs,
        tpl,
        stage_busy,
        device_seen,
    } = scratch;
    fin.clear();
    fin.reserve(ops.len());
    avail.clear();
    devs.clear();
    stage_busy.clear();
    device_seen.clear();
    let mut totals = Totals::default();
    let mut ttft = 0i64;

    // ---- Replay the explicit prefix (prefill + transient tokens) ----
    for (i, op) in ops.iter().enumerate() {
        if (i < prefill_ops) == (op.phase == Phase::Decode) {
            return None; // decode ops must form the trace suffix
        }
        let dur = units_of(op.duration)?;
        let acc = classify(op.stream, op.kind)?;
        let slot = op.stream.slot();
        if slot >= avail.len() {
            avail.resize(slot + 1, 0);
        }
        let mut start = avail[slot];
        for &d in &op.deps {
            start = start.max(*fin.get(d.0)?);
        }
        let f = start + dur;
        if f >= MAX_UNITS {
            return None;
        }
        fin.push(f);
        avail[slot] = f;
        totals.add(acc, dur);
        let device = device_of(op.stream);
        ensure_device(devs, device);
        if op.stream.is_compute() {
            if device >= device_seen.len() {
                device_seen.resize(device + 1, false);
            }
            device_seen[device] = true;
            devs[device].cw.push_back((start, f));
            if let StreamId::StageCompute(s) = op.stream {
                let s = s as usize;
                if s >= stage_busy.len() {
                    stage_busy.resize(s + 1, 0);
                }
                stage_busy[s] += dur;
            }
        } else {
            let Acc::Coll(kind) = acc else { return None };
            devs[device].pending.push_back((start, f, kind));
        }
        if op.phase != Phase::Decode {
            ttft = ttft.max(f);
        }
    }

    // ---- Extract the per-token template ----
    let k = extract_template(trace, prefill_ops, explicit_tokens, dims.decode_len, tpl)?;
    let max_slot = tpl.iter().map(|o| o.slot as usize).max()?;
    if max_slot >= avail.len() {
        avail.resize(max_slot + 1, 0);
    }
    for op in &*tpl {
        ensure_device(devs, op.device as usize);
        if !op.compute {
            devs[op.device as usize].token_comm = true;
        }
        if let Some(s) = op.stage {
            if s as usize >= stage_busy.len() {
                stage_busy.resize(s as usize + 1, 0);
            }
        }
    }
    for dev in devs.iter_mut() {
        finalize_ready(dev, avail, &mut totals);
    }
    cur.clear();
    cur.resize(k, 0);
    prev.clear();
    prev.extend_from_slice(&fin[prefill_ops + (explicit_tokens - 1) * k..]);

    // ---- Advance the remaining tokens without materializing ops ----
    // Step the recurrence explicitly while rolling snapshots of the last
    // three states; at each attempt point, try to certify a closed-form
    // jump over every remaining token (see [`certify_and_jump`]). A
    // failed certificate just moves the attempt point and keeps
    // stepping — exactness never depends on the jump.
    let mut snaps: Vec<Snap> = Vec::new();
    let mut attempt_at = explicit_tokens + 3;
    let mut fails = 0u32;
    let mut t = explicit_tokens;
    while t < dims.decode_len {
        if t == attempt_at && snaps.len() == 3 {
            // One attempt certifies the longest jumpable prefix of the
            // remaining range: a binding change inside it shrinks the
            // certificate's own horizon to just short of the crossing,
            // landing a partial jump over the current constant-binding
            // regime; after three re-fit steps the next attempt covers
            // the next regime.
            let n = (dims.decode_len - t) as i64;
            let mut jumped = 0i64;
            if n >= 4 {
                match certify_and_jump(
                    tpl,
                    &snaps,
                    n,
                    t,
                    prev,
                    avail,
                    devs,
                    stage_busy,
                    &mut totals,
                ) {
                    JumpOutcome::Jumped(m) => {
                        jumped = m;
                    }
                    JumpOutcome::NotCertified => {}
                    JumpOutcome::OutOfRange => return None,
                }
            }
            snaps.clear();
            if jumped > 0 {
                // A real jump proves the schedule is still piecewise
                // quadratic; forgive earlier failures so a long tail of
                // regimes keeps jumping. Tiny hops don't vouch for the
                // shape, so they leave the backoff where it is.
                if jumped >= 16 {
                    fails = 0;
                }
                t += jumped as usize;
                attempt_at = t + 3;
                continue;
            }
            // Exponential backoff instead of giving up: a pipeline-fill
            // transient certifies after a few more steps, while a
            // genuinely aperiodic shape costs only O(log decode_len)
            // failed attempts before the steps between attempts dwarf
            // the attempts themselves.
            fails = (fails + 1).min(16);
            attempt_at = t + (8usize << fails.min(12));
        }
        let mut peak = 0i64;
        for (j, op) in tpl.iter().enumerate() {
            let dur = op.base + op.rate * t as i64;
            let mut start = avail[op.slot as usize];
            for &d in &op.deps {
                let f = match d {
                    TplDep::Same(s) => cur[s as usize],
                    TplDep::Prev(p) => prev[p as usize],
                };
                start = start.max(f);
            }
            let f = start + dur;
            cur[j] = f;
            peak = peak.max(f);
            avail[op.slot as usize] = f;
            totals.add(op.acc, dur);
            let dev = &mut devs[op.device as usize];
            if op.compute {
                if dev.token_comm || !dev.pending.is_empty() {
                    dev.cw.push_back((start, f));
                }
                if let Some(s) = op.stage {
                    stage_busy[s as usize] += dur;
                }
            } else {
                let Acc::Coll(kind) = op.acc else { return None };
                dev.pending.push_back((start, f, kind));
            }
        }
        if peak >= MAX_UNITS || totals.serialized >= MAX_UNITS {
            return None;
        }
        for dev in devs.iter_mut() {
            finalize_ready(dev, avail, &mut totals);
        }
        std::mem::swap(prev, cur);
        if t + 3 >= attempt_at {
            if snaps.len() == 3 {
                snaps.remove(0);
            }
            snaps.push(Snap::capture(prev, avail, devs));
        }
        t += 1;
    }

    // ---- Flush: no future compute windows exist ----
    for dev in devs.iter_mut() {
        while let Some((cs, cf, kind)) = dev.pending.pop_front() {
            expose(dev, cs, cf, kind, &mut totals);
        }
    }

    // ---- Synthesize the report ----
    let makespan = avail.iter().copied().max().unwrap_or(0);
    let makespan_s = secs_of(makespan);
    let ttft_s = secs_of(ttft);
    let tpot = if dims.decode_len == 0 {
        Seconds::ZERO
    } else {
        (makespan_s - ttft_s) / dims.decode_len as f64
    };
    let mut stage_count = 0usize;
    let mut stage_total = 0.0f64;
    for (s, &busy) in stage_busy.iter().enumerate() {
        if device_seen.get(1 + s).copied().unwrap_or(false) {
            stage_count += 1;
            stage_total += secs_of(busy).as_secs();
        }
    }
    let bubble_fraction = if stage_count == 0 || makespan_s.is_zero() {
        None
    } else {
        let mean_busy = stage_total / stage_count as f64;
        Some(f64::max(1.0 - mean_busy / makespan_s.as_secs(), 0.0))
    };
    Some(IterationReport {
        iteration_time: makespan_s,
        serialized_time: secs_of(totals.serialized),
        gemm_time: secs_of(totals.gemm),
        lookup_time: secs_of(totals.lookup),
        optimizer_time: secs_of(totals.optimizer),
        comm_time: secs_of(totals.comm),
        comm_by_collective: to_map(
            COLLECTIVES,
            totals.comm_touched,
            totals.comm_by.map(secs_of),
        ),
        gemm_by_class: to_map(
            LayerClass::ALL,
            totals.gemm_touched,
            totals.gemm_by.map(secs_of),
        ),
        exposed_comm: secs_of(totals.exposed),
        exposed_by_collective: to_map(
            COLLECTIVES,
            totals.exposed_touched,
            totals.exposed_by.map(secs_of),
        ),
        bubble_fraction,
        memory,
        serve: Some(ServeStats {
            prompt_len: dims.prompt_len,
            decode_len: dims.decode_len,
            decode_batch: dims.decode_batch,
            ttft: ttft_s,
            tpot,
        }),
        global_batch: model.global_batch,
        tokens_per_iteration: model.tokens_per_iteration(),
        batch_unit: model.batch_unit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Deps, OpName, PassDir, TraceOp};
    use madmax_model::ModelId;

    const EXPLICIT: usize = 4;
    const DECODE_LEN: usize = 64;

    /// One grid unit, in seconds.
    fn grid(units: i64) -> Seconds {
        secs_of(units)
    }

    /// A minimal hand-built serve trace on the grid: one prefill GEMM
    /// (8 units) followed by `EXPLICIT` single-op decode tokens whose
    /// durations follow the arithmetic series `base + rate * t`, each
    /// token depending on the previous one (autoregressive chain).
    fn chain_trace(base: i64, rate: i64) -> Trace {
        let mut trace = Trace::new();
        let prefill = trace.push(TraceOp {
            name: OpName::flat(PassDir::Fwd, None, "prefill"),
            stream: StreamId::Compute,
            kind: OpKind::Gemm {
                class: LayerClass::Transformer,
            },
            phase: Phase::Forward,
            duration: grid(8),
            deps: Deps::none(),
        });
        let mut last = prefill;
        for t in 0..EXPLICIT {
            last = trace.push(TraceOp {
                name: OpName::decode(t as u32, None, "tok"),
                stream: StreamId::Compute,
                kind: OpKind::Gemm {
                    class: LayerClass::Transformer,
                },
                phase: Phase::Decode,
                duration: grid(base + rate * t as i64),
                deps: Deps::one(last),
            });
        }
        trace
    }

    fn dims() -> ServeDims {
        ServeDims {
            prompt_len: 128,
            decode_len: DECODE_LEN,
            decode_batch: 256,
        }
    }

    fn eval(trace: &Trace) -> Option<IterationReport> {
        let model = ModelId::Llama2.build();
        evaluate_serve_prefix(
            trace,
            EXPLICIT,
            &dims(),
            &model,
            MemoryBreakdown::default(),
            &mut SteadyScratch::default(),
        )
    }

    #[test]
    fn synthesizes_the_serial_chain_exactly() {
        // Constant decode durations: the chain's makespan is the prefill
        // plus decode_len equal steps, all exact grid arithmetic.
        let report = eval(&chain_trace(4, 0)).expect("closed form applies");
        let makespan = 8 + DECODE_LEN as i64 * 4;
        assert_eq!(report.iteration_time, grid(makespan));
        assert_eq!(report.serialized_time, grid(makespan));
        assert_eq!(report.gemm_time, grid(makespan));
        let serve = report.serve.expect("serve stats attached");
        assert_eq!(serve.ttft, grid(8));
        assert_eq!(serve.decode_len, DECODE_LEN);
        assert_eq!(serve.tpot, (grid(makespan) - grid(8)) / DECODE_LEN as f64);
        assert_eq!(report.comm_time, Seconds::ZERO);
        assert_eq!(report.exposed_comm, Seconds::ZERO);
        assert_eq!(report.bubble_fraction, None, "no stage devices");
    }

    #[test]
    fn kv_stretch_follows_the_arithmetic_series() {
        // Affine decode durations (KV growth): token t costs 4 + 2t
        // units, so the total is an exact arithmetic series.
        let report = eval(&chain_trace(4, 2)).expect("closed form applies");
        let n = DECODE_LEN as i64;
        let makespan = 8 + 4 * n + 2 * (n * (n - 1) / 2);
        assert_eq!(report.iteration_time, grid(makespan));
        assert_eq!(report.serialized_time, grid(makespan));
    }

    #[test]
    fn non_grid_duration_falls_back() {
        // A duration off the 2^-38 s grid defeats exact replay: the
        // evaluator must decline rather than approximate.
        let mut trace = chain_trace(4, 0);
        trace.map_durations_from(2, |_| Seconds::new(0.3));
        assert!(eval(&trace).is_none());
    }

    #[test]
    fn gradient_stream_falls_back() {
        // Serve traces never carry gradient-communication work; any op
        // on such a stream voids the additive exposure argument.
        let mut trace = chain_trace(4, 0);
        trace.push(TraceOp {
            name: OpName::custom("stray.grad"),
            stream: StreamId::GradComm,
            kind: OpKind::Collective {
                kind: madmax_parallel::CollectiveKind::ReduceScatter,
            },
            phase: Phase::Decode,
            duration: grid(1),
            deps: Deps::none(),
        });
        assert!(eval(&trace).is_none());
    }

    #[test]
    fn shorter_streams_than_the_prefix_fall_back() {
        // The explicit prefix cannot exceed the decode stream it stands
        // in for.
        let trace = chain_trace(4, 0);
        let model = ModelId::Llama2.build();
        let short = ServeDims {
            decode_len: EXPLICIT - 1,
            ..dims()
        };
        assert!(evaluate_serve_prefix(
            &trace,
            EXPLICIT,
            &short,
            &model,
            MemoryBreakdown::default(),
            &mut SteadyScratch::default(),
        )
        .is_none());
    }

    #[test]
    fn grid_range_predicate_matches_the_unit_guard() {
        assert!(fits_grid_range(grid(MAX_UNITS - 1)));
        assert!(!fits_grid_range(grid(MAX_UNITS)));
        assert!(!fits_grid_range(Seconds::new(-1.0)));
        assert!(!fits_grid_range(Seconds::new(f64::INFINITY)));
        // Off-grid values in range still fit: the predicate bounds the
        // *span*, the per-op grid check is separate.
        assert!(fits_grid_range(Seconds::new(0.3)));
    }

    #[test]
    fn series_total_matches_iterated_addition() {
        let (c, r, start) = (17i64, 3i64, 5i64);
        let mut total = 0i64;
        for n in 0..200i64 {
            assert_eq!(affine_series_units(c, r, start, n), Some(total));
            total += c + r * (start + n);
        }
        // Degenerate and rejected shapes.
        assert_eq!(affine_series_units(c, r, start, 0), Some(0));
        assert_eq!(affine_series_units(c, r, -1, 4), None, "negative start");
        assert_eq!(affine_series_units(-5, 0, 0, 3), None, "negative step");
        assert_eq!(affine_series_units(1 << 51, 0, 0, 4), None, "overflow");
    }

    #[test]
    fn first_crossing_is_the_least_n_reaching_the_target() {
        let (c, r, start) = (10i64, 2i64, 0i64);
        for target in 1..500i64 {
            let n = first_series_crossing(c, r, start, 1_000, target).unwrap();
            assert!(affine_series_units(c, r, start, n).unwrap() >= target);
            assert!(affine_series_units(c, r, start, n - 1).unwrap() < target);
        }
        // Unreachable within max_n.
        assert_eq!(first_series_crossing(1, 0, 0, 4, 100), None);
        assert_eq!(first_series_crossing(1, 0, 0, 0, 1), None);
    }

    #[test]
    fn grid_unit_conversions_round_trip() {
        for u in [0i64, 1, 7, 1 << 30, (1 << 52) - 1] {
            assert_eq!(grid_units(grid_seconds(u)), Some(u));
        }
        assert_eq!(grid_units(Seconds::new(-1.0)), None);
        // Rounding snaps off-grid durations to the nearest unit.
        let third = Seconds::new(1.0 / 3.0);
        let snapped = grid_units_round(third).unwrap();
        assert_eq!(grid_units(quantize(third)), Some(snapped));
        assert_eq!(grid_units_round(Seconds::new(f64::NAN)), None);
    }
}
