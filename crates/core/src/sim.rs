//! Two-stream overlap simulator: executes a [`Trace`] with in-order streams
//! and data-dependency stalls, assuming kernels launch as soon as their
//! dependencies resolve (Section IV-C: "Computation-Communication
//! Overlap").

use serde::{Deserialize, Serialize};

use madmax_hw::units::Seconds;

use crate::trace::{StreamId, Trace};

/// Start/finish times of one op after scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpWindow {
    /// Time the op begins executing.
    pub start: Seconds,
    /// Time the op completes.
    pub finish: Seconds,
}

/// The scheduled timeline of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-op windows, parallel to `trace.ops()`.
    pub windows: Vec<OpWindow>,
    /// Completion time of the last op (the overlapped iteration time).
    pub makespan: Seconds,
}

/// Executes `trace` with list scheduling: each stream runs its ops in issue
/// order, and an op starts at `max(stream available, deps finished)`.
///
/// The trace's issue order is a topological order (enforced by
/// [`Trace::push`]), so one forward sweep suffices and the result is
/// deterministic.
pub fn schedule(trace: &Trace) -> Schedule {
    let mut stream_avail: std::collections::BTreeMap<StreamId, Seconds> =
        std::collections::BTreeMap::new();
    let mut windows = Vec::with_capacity(trace.len());
    let mut makespan = Seconds::ZERO;

    for op in trace.ops() {
        let avail = stream_avail
            .get(&op.stream)
            .copied()
            .unwrap_or(Seconds::ZERO);
        let deps_done = op
            .deps
            .iter()
            .map(|d| windows[d.0] as OpWindow)
            .map(|w| w.finish)
            .fold(Seconds::ZERO, Seconds::max);
        let start = avail.max(deps_done);
        let finish = start + op.duration;
        stream_avail.insert(op.stream, finish);
        makespan = makespan.max(finish);
        windows.push(OpWindow { start, finish });
    }
    Schedule { windows, makespan }
}

/// Measures the total time in `intervals` (a possibly-overlapping set)
/// covered by their union.
pub fn union_measure(intervals: &mut [(f64, f64)]) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite interval bounds"));
    let mut total = 0.0;
    let (mut cur_s, mut cur_e) = intervals[0];
    for &(s, e) in intervals.iter().skip(1) {
        if s > cur_e {
            total += cur_e - cur_s;
            (cur_s, cur_e) = (s, e);
        } else {
            cur_e = cur_e.max(e);
        }
    }
    total + (cur_e - cur_s)
}

/// Measures `|a \ b|`: time covered by union(`a`) but not union(`b`).
pub fn difference_measure(a: &mut [(f64, f64)], b: &mut [(f64, f64)]) -> f64 {
    let a_measure = union_measure(a);
    if b.is_empty() {
        return a_measure;
    }
    // |a \ b| = |a| - |a ∩ b|; compute the intersection by sweeping the two
    // (now sorted, disjoint) unions.
    let a_merged = merged(a);
    let b_merged = merged(b);
    let mut inter = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a_merged.len() && j < b_merged.len() {
        let (as_, ae) = a_merged[i];
        let (bs, be) = b_merged[j];
        let lo = as_.max(bs);
        let hi = ae.min(be);
        if hi > lo {
            inter += hi - lo;
        }
        if ae < be {
            i += 1;
        } else {
            j += 1;
        }
    }
    a_measure - inter
}

fn merged(sorted: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(sorted.len());
    for &(s, e) in sorted {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpId, OpKind, Phase, TraceOp};
    use madmax_model::LayerClass;

    fn op(name: &str, stream: StreamId, ms: f64, deps: Vec<OpId>) -> TraceOp {
        TraceOp {
            name: name.to_owned(),
            stream,
            kind: OpKind::Gemm {
                class: LayerClass::Dense,
            },
            phase: Phase::Forward,
            duration: Seconds::from_ms(ms),
            deps,
        }
    }

    #[test]
    fn independent_streams_overlap() {
        let mut t = Trace::new();
        t.push(op("c", StreamId::Compute, 10.0, vec![]));
        t.push(op("k", StreamId::Comm, 10.0, vec![]));
        let s = schedule(&t);
        assert!((s.makespan.as_ms() - 10.0).abs() < 1e-9, "full overlap");
        assert!((t.serialized_time().as_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_stall() {
        let mut t = Trace::new();
        let a = t.push(op("a", StreamId::Compute, 10.0, vec![]));
        t.push(op("b", StreamId::Comm, 5.0, vec![a]));
        let s = schedule(&t);
        assert!((s.windows[1].start.as_ms() - 10.0).abs() < 1e-9);
        assert!((s.makespan.as_ms() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn streams_are_in_order() {
        let mut t = Trace::new();
        let a = t.push(op("blocker", StreamId::Compute, 10.0, vec![]));
        t.push(op("k1", StreamId::Comm, 5.0, vec![a])); // waits for a
        t.push(op("k2", StreamId::Comm, 5.0, vec![])); // no deps, but queued after k1
        let s = schedule(&t);
        assert!(
            (s.windows[2].start.as_ms() - 15.0).abs() < 1e-9,
            "in-order stream"
        );
        assert!((s.makespan.as_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn diamond_dependencies() {
        let mut t = Trace::new();
        let a = t.push(op("a", StreamId::Compute, 2.0, vec![]));
        let b = t.push(op("b", StreamId::Comm, 8.0, vec![a]));
        let c = t.push(op("c", StreamId::Compute, 3.0, vec![a]));
        t.push(op("d", StreamId::Compute, 1.0, vec![b, c]));
        let s = schedule(&t);
        // d waits for the slower branch (b finishes at 10).
        assert!((s.windows[3].start.as_ms() - 10.0).abs() < 1e-9);
        assert!((s.makespan.as_ms() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn union_and_difference_measures() {
        let mut a = vec![(0.0, 5.0), (3.0, 8.0), (10.0, 12.0)];
        assert!((union_measure(&mut a.clone()) - 10.0).abs() < 1e-12);
        let mut b = vec![(4.0, 11.0)];
        // a \ b = [0,4) + [11,12) = 5.
        assert!((difference_measure(&mut a, &mut b) - 5.0).abs() < 1e-12);
        // Empty cases.
        assert_eq!(union_measure(&mut []), 0.0);
        assert_eq!(difference_measure(&mut [], &mut [(0.0, 1.0)]), 0.0);
        assert!((difference_measure(&mut [(0.0, 2.0)], &mut []) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_schedules() {
        let t = Trace::new();
        let s = schedule(&t);
        assert_eq!(s.makespan, Seconds::ZERO);
        assert!(s.windows.is_empty());
    }
}
