//! Two-stream overlap simulator: executes a [`Trace`] with in-order streams
//! and data-dependency stalls, assuming kernels launch as soon as their
//! dependencies resolve (Section IV-C: "Computation-Communication
//! Overlap").
//!
//! Per-stream availability is tracked in a dense slot table
//! ([`StreamTable`], indexed by [`StreamId::slot`]) rather than an ordered
//! map: streams are a tiny enum times a stage index, so the flat engine
//! touches three slots and a `p`-stage pipeline `3 + 3p`. The scheduler
//! also supports writing into caller-owned buffers
//! ([`schedule_into`] / [`EngineScratch`]) so the design-space-exploration
//! hot path reuses one allocation set across candidates.

use serde::{Deserialize, Serialize};

use madmax_hw::units::Seconds;

use crate::trace::{StreamId, Trace};

/// Start/finish times of one op after scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpWindow {
    /// Time the op begins executing.
    pub start: Seconds,
    /// Time the op completes.
    pub finish: Seconds,
}

/// The scheduled timeline of a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-op windows, parallel to `trace.ops()`.
    pub windows: Vec<OpWindow>,
    /// Completion time of the last op (the overlapped iteration time).
    pub makespan: Seconds,
}

/// Dense per-stream availability table, indexed by [`StreamId::slot`].
/// Missing slots read as `t = 0`; the table grows on first write to a
/// stage's slot triple and keeps its capacity across [`StreamTable::reset`]
/// calls.
#[derive(Debug, Clone, Default)]
pub struct StreamTable {
    avail: Vec<Seconds>,
}

impl StreamTable {
    /// Time at which `stream` is free to start its next op.
    #[inline]
    pub fn available(&self, stream: StreamId) -> Seconds {
        self.avail
            .get(stream.slot())
            .copied()
            .unwrap_or(Seconds::ZERO)
    }

    /// Marks `stream` busy until `t`.
    #[inline]
    pub fn occupy_until(&mut self, stream: StreamId, t: Seconds) {
        let slot = stream.slot();
        if slot >= self.avail.len() {
            self.avail.resize(slot + 1, Seconds::ZERO);
        }
        self.avail[slot] = t;
    }

    /// Clears every slot (keeping capacity) for the next trace.
    pub fn reset(&mut self) {
        self.avail.clear();
    }
}

/// Executes `trace` with list scheduling: each stream runs its ops in issue
/// order, and an op starts at `max(stream available, deps finished)`.
///
/// The trace's issue order is a topological order (enforced by
/// [`Trace::push`]), so one forward sweep suffices and the result is
/// deterministic.
pub fn schedule(trace: &Trace) -> Schedule {
    let mut sched = Schedule::default();
    let mut streams = StreamTable::default();
    schedule_into(trace, &mut sched, &mut streams);
    sched
}

/// [`schedule`], writing into caller-owned buffers: `sched` and `streams`
/// are cleared and refilled, retaining their allocations so repeated
/// evaluation recycles one buffer set.
pub fn schedule_into(trace: &Trace, sched: &mut Schedule, streams: &mut StreamTable) {
    sched.windows.clear();
    sched.windows.reserve(trace.len());
    streams.reset();
    let mut makespan = Seconds::ZERO;

    for op in trace.ops() {
        let avail = streams.available(op.stream);
        let deps_done = op
            .deps
            .iter()
            .map(|d| sched.windows[d.0].finish)
            .fold(Seconds::ZERO, Seconds::max);
        let start = avail.max(deps_done);
        let finish = start + op.duration;
        streams.occupy_until(op.stream, finish);
        makespan = makespan.max(finish);
        sched.windows.push(OpWindow { start, finish });
    }
    sched.makespan = makespan;
}

/// Debug-build cross-check of a `(trace, schedule)` pair: window count,
/// non-negative durations, window/duration agreement, dependency
/// causality, in-order per-stream exclusivity, and makespan consistency —
/// one O(ops) pass with no allocation beyond a stream-slot table.
///
/// This is the engines' `debug_assertions` contract: both the flat and
/// the pipelined engine run it after every fresh assembly (memo hits are
/// exempt — their schedule was checked when it was first produced), so a
/// scheduler or builder regression panics in debug test runs instead of
/// silently skewing reports. Release builds never pay for it. The full
/// rule set — pipeline structure, bubble floors, critical-path analysis,
/// structured diagnostics instead of panics — lives in `madmax-verify`.
///
/// The per-stream check exploits the scheduler's in-order guarantee
/// (each stream runs its ops in issue order), so it only compares
/// consecutive windows per slot.
pub fn debug_check_schedule(trace: &Trace, sched: &Schedule) {
    assert_eq!(
        sched.windows.len(),
        trace.len(),
        "schedule has {} windows for {} trace ops",
        sched.windows.len(),
        trace.len()
    );
    let tol = 1e-9 * sched.makespan.as_secs().abs().max(1.0);
    let mut last_finish: Vec<f64> = Vec::new();
    let mut max_finish = 0.0f64;
    for (i, (op, w)) in trace.ops().iter().zip(&sched.windows).enumerate() {
        let (start, finish) = (w.start.as_secs(), w.finish.as_secs());
        assert!(
            op.duration.as_secs() >= 0.0,
            "op {i} ({}) has negative duration {}",
            op.name,
            op.duration
        );
        assert!(
            ((finish - start) - op.duration.as_secs()).abs() <= tol,
            "op {i} ({}) occupies [{start}, {finish}] but lasts {}",
            op.name,
            op.duration
        );
        for d in op.deps.as_slice() {
            assert!(d.0 < i, "op {i} ({}) depends on later op {}", op.name, d.0);
            let dep_finish = sched.windows[d.0].finish.as_secs();
            assert!(
                start + tol >= dep_finish,
                "op {i} ({}) starts at {start} before dependency {} finishes at {dep_finish}",
                op.name,
                d.0
            );
        }
        let slot = op.stream.slot();
        if slot >= last_finish.len() {
            last_finish.resize(slot + 1, 0.0);
        }
        assert!(
            start + tol >= last_finish[slot],
            "op {i} ({}) starts at {start} while {:?} is busy until {}",
            op.name,
            op.stream,
            last_finish[slot]
        );
        last_finish[slot] = finish;
        max_finish = max_finish.max(finish);
    }
    assert!(
        (sched.makespan.as_secs() - max_finish).abs() <= tol,
        "makespan {} does not match the last window finish {max_finish}",
        sched.makespan
    );
}

/// A memoized engine result: the opaque key of one assembly's inputs and
/// the report they produced. The pipeline engine's cached path keeps a
/// keyed store of these on the shared pricing table to skip
/// re-assembling, re-scheduling, and re-sweeping a trace whose inputs are
/// identical to an already-evaluated candidate's — notably the schedule
/// axis of serve searches, whose decode stream is schedule-independent.
/// Keys are minted by the pricing table (a table generation plus an entry
/// id), so results can never leak across tables or entries.
#[derive(Debug)]
pub struct ReportMemo {
    /// Opaque assembly-input key, minted by the pricing layer.
    pub key: (u64, usize, u8),
    /// The report those inputs produced.
    pub report: crate::metrics::IterationReport,
}

/// Reusable evaluation buffers: one trace arena, one schedule, and one
/// stream-slot table. A design-space-exploration worker thread keeps one
/// `EngineScratch` and evaluates every candidate through it, so the
/// per-candidate cost is the simulation itself — not allocator traffic.
#[derive(Debug, Default)]
pub struct EngineScratch {
    /// Trace arena, cleared (capacity retained) per candidate.
    pub trace: Trace,
    /// Schedule buffer, cleared per candidate.
    pub sched: Schedule,
    /// Stream availability slots, cleared per candidate.
    pub streams: StreamTable,
    /// Report-construction interval buffers, cleared per candidate.
    pub report: crate::metrics::ReportScratch,
    /// Closed-form serve evaluation buffers (see [`crate::steady`]).
    pub steady: crate::steady::SteadyScratch,
}

impl EngineScratch {
    /// A fresh buffer set.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Measures the total time in `intervals` (a possibly-overlapping set)
/// covered by their union.
pub fn union_measure(intervals: &mut [(f64, f64)]) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite interval bounds"));
    let mut total = 0.0;
    let (mut cur_s, mut cur_e) = intervals[0];
    for &(s, e) in intervals.iter().skip(1) {
        if s > cur_e {
            total += cur_e - cur_s;
            (cur_s, cur_e) = (s, e);
        } else {
            cur_e = cur_e.max(e);
        }
    }
    total + (cur_e - cur_s)
}

/// Measures `|a \ b|`: time covered by union(`a`) but not union(`b`).
/// `b` must be in non-decreasing start order (a single stream's busy
/// intervals in issue order qualify).
pub fn difference_measure(a: &mut [(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let a_measure = union_measure(a);
    if b.is_empty() {
        return a_measure;
    }
    // |a \ b| = |a| - |a ∩ b|; compute the intersection by sweeping the two
    // (now sorted, disjoint) unions.
    let a_merged = merged(a);
    let b_merged = merged(b);
    let mut inter = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a_merged.len() && j < b_merged.len() {
        let (as_, ae) = a_merged[i];
        let (bs, be) = b_merged[j];
        let lo = as_.max(bs);
        let hi = ae.min(be);
        if hi > lo {
            inter += hi - lo;
        }
        if ae < be {
            i += 1;
        } else {
            j += 1;
        }
    }
    a_measure - inter
}

/// Measures `|a \ b|` for a single interval `a` against a pre-merged,
/// sorted, disjoint interval set `b_merged` (see [`merged`]) — the
/// allocation-free special case behind per-collective exposure
/// accounting. Produces exactly [`difference_measure`]'s result for
/// `a = [span]`.
pub fn single_difference_measure(span: (f64, f64), b_merged: &[(f64, f64)]) -> f64 {
    let (a_start, a_end) = span;
    let a_measure = a_end - a_start;
    if b_merged.is_empty() {
        return a_measure;
    }
    let mut inter = 0.0;
    // Intervals ending at or before `a_start` cannot intersect; skip them
    // in one binary search instead of sweeping from the front.
    let mut j = b_merged.partition_point(|&(_, b_end)| b_end <= a_start);
    while j < b_merged.len() {
        let (b_start, b_end) = b_merged[j];
        let lo = a_start.max(b_start);
        let hi = a_end.min(b_end);
        if hi > lo {
            inter += hi - lo;
        }
        if a_end < b_end {
            break;
        }
        j += 1;
    }
    a_measure - inter
}

/// Merges a non-decreasing-start interval list into a sorted, disjoint
/// union (inputs out of order are not detected; callers pass per-stream
/// busy intervals, which are in issue order).
pub fn merged(sorted: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(sorted.len());
    merged_into(sorted, &mut out);
    out
}

/// [`merged`], writing into a caller-owned buffer (cleared first,
/// capacity retained).
pub fn merged_into(sorted: &[(f64, f64)], out: &mut Vec<(f64, f64)>) {
    out.clear();
    for &(s, e) in sorted {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpId, OpKind, Phase, TraceOp};
    use madmax_model::LayerClass;

    fn op(name: &str, stream: StreamId, ms: f64, deps: Vec<OpId>) -> TraceOp {
        TraceOp {
            name: name.to_owned().into(),
            stream,
            kind: OpKind::Gemm {
                class: LayerClass::Dense,
            },
            phase: Phase::Forward,
            duration: Seconds::from_ms(ms),
            deps: deps.into(),
        }
    }

    #[test]
    fn independent_streams_overlap() {
        let mut t = Trace::new();
        t.push(op("c", StreamId::Compute, 10.0, vec![]));
        t.push(op("k", StreamId::Comm, 10.0, vec![]));
        let s = schedule(&t);
        assert!((s.makespan.as_ms() - 10.0).abs() < 1e-9, "full overlap");
        assert!((t.serialized_time().as_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_stall() {
        let mut t = Trace::new();
        let a = t.push(op("a", StreamId::Compute, 10.0, vec![]));
        t.push(op("b", StreamId::Comm, 5.0, vec![a]));
        let s = schedule(&t);
        assert!((s.windows[1].start.as_ms() - 10.0).abs() < 1e-9);
        assert!((s.makespan.as_ms() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn streams_are_in_order() {
        let mut t = Trace::new();
        let a = t.push(op("blocker", StreamId::Compute, 10.0, vec![]));
        t.push(op("k1", StreamId::Comm, 5.0, vec![a])); // waits for a
        t.push(op("k2", StreamId::Comm, 5.0, vec![])); // no deps, but queued after k1
        let s = schedule(&t);
        assert!(
            (s.windows[2].start.as_ms() - 15.0).abs() < 1e-9,
            "in-order stream"
        );
        assert!((s.makespan.as_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn diamond_dependencies() {
        let mut t = Trace::new();
        let a = t.push(op("a", StreamId::Compute, 2.0, vec![]));
        let b = t.push(op("b", StreamId::Comm, 8.0, vec![a]));
        let c = t.push(op("c", StreamId::Compute, 3.0, vec![a]));
        t.push(op("d", StreamId::Compute, 1.0, vec![b, c]));
        let s = schedule(&t);
        // d waits for the slower branch (b finishes at 10).
        assert!((s.windows[3].start.as_ms() - 10.0).abs() < 1e-9);
        assert!((s.makespan.as_ms() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn union_and_difference_measures() {
        let mut a = vec![(0.0, 5.0), (3.0, 8.0), (10.0, 12.0)];
        assert!((union_measure(&mut a.clone()) - 10.0).abs() < 1e-12);
        let b = vec![(4.0, 11.0)];
        // a \ b = [0,4) + [11,12) = 5.
        assert!((difference_measure(&mut a, &b) - 5.0).abs() < 1e-12);
        // Empty cases.
        assert_eq!(union_measure(&mut []), 0.0);
        assert_eq!(difference_measure(&mut [], &[(0.0, 1.0)]), 0.0);
        assert!((difference_measure(&mut [(0.0, 2.0)], &[]) - 2.0).abs() < 1e-12);
        // The single-interval fast path matches the general measure.
        let merged_b = merged(&b);
        for span in [
            (0.0, 3.0),
            (4.5, 10.0),
            (3.0, 12.0),
            (11.0, 11.0),
            (12.0, 20.0),
        ] {
            let general = difference_measure(&mut [span], &b);
            let fast = single_difference_measure(span, &merged_b);
            assert_eq!(general, fast, "{span:?}");
        }
        assert_eq!(single_difference_measure((1.0, 2.0), &[]), 1.0);
    }

    #[test]
    fn empty_trace_schedules() {
        let t = Trace::new();
        let s = schedule(&t);
        assert_eq!(s.makespan, Seconds::ZERO);
        assert!(s.windows.is_empty());
    }
}
