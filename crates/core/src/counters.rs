//! Cache hit/miss counters shared across the search worker pool.
//!
//! The price→assemble fast paths ([`crate::costs::CostTable`], the
//! pipeline table, and the per-scratch report memo) are the levers that
//! make design-space searches cheap — and, until now, were invisible:
//! there was no way to tell whether a slow search was re-pricing
//! candidates or reusing the table as intended. [`CacheCounters`] is the
//! instrument: a pair of relaxed atomics bumped on the hot path (one
//! `fetch_add` per event, no branches, no locks) that any number of
//! worker threads can share through `&CostTable`.
//!
//! **Sharing contract**: counters are monotonic and never reset; readers
//! take a [`CacheStats`] snapshot *after* the worker pool joins, so the
//! totals are exact (relaxed ordering is sufficient because the
//! `thread::scope` join provides the happens-before edge). Snapshots are
//! plain serializable data and feed `madmax-obs`'s `SearchTelemetry`.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Monotonic hit/miss tally for one cache (price table, memo, ...).
///
/// Increment methods take `&self` so a read-only shared table can still
/// count: `CostTable` is shared as `&CostTable` across the worker pool
/// and its pricing happens behind `&mut self`, but assembly-time reuse
/// is observed from `&self` on every worker.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheCounters {
    /// A zeroed counter pair.
    pub const fn new() -> Self {
        Self {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Records one cache hit (work was reused).
    #[inline]
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cache miss (work was priced/built fresh).
    #[inline]
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots the current totals as plain data.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl Clone for CacheCounters {
    fn clone(&self) -> Self {
        let s = self.snapshot();
        Self {
            hits: AtomicU64::new(s.hits),
            misses: AtomicU64::new(s.misses),
        }
    }
}

/// A point-in-time snapshot of a [`CacheCounters`] pair: plain
/// serializable data for telemetry reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Events that reused cached work.
    pub hits: u64,
    /// Events that paid for the work fresh.
    pub misses: u64,
}

impl CacheStats {
    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of events served from cache; `None` before any event.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Accumulates another snapshot into this one.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = CacheCounters::new();
        c.hit();
        c.hit();
        c.miss();
        let s = c.snapshot();
        assert_eq!(s, CacheStats { hits: 2, misses: 1 });
        assert_eq!(s.total(), 3);
        assert!((s.hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), None);
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let c = CacheCounters::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.hit();
                        c.miss();
                    }
                });
            }
        });
        let s = c.snapshot();
        assert_eq!((s.hits, s.misses), (4000, 4000));
    }

    #[test]
    fn stats_serde_round_trip() {
        let s = CacheStats { hits: 7, misses: 3 };
        let js = serde_json::to_string(&s).unwrap();
        let back: CacheStats = serde_json::from_str(&js).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = CacheStats { hits: 1, misses: 2 };
        a.absorb(CacheStats { hits: 3, misses: 4 });
        assert_eq!(a, CacheStats { hits: 4, misses: 6 });
    }
}
