//! Feature-gated self-profiling spans around the engine's own phases.
//!
//! The simulator profiles *simulated* time; this module profiles the
//! simulator itself. Call sites wrap a phase in a guard —
//!
//! ```
//! let _span = madmax_core::prof::span("price.flat");
//! // ... priced here ...
//! ```
//!
//! — and, when the `self-profile` cargo feature is enabled *and*
//! recording is switched on at runtime ([`set_recording`]), each guard
//! appends a [`SpanRecord`] (wall-clock start, duration, thread) to a
//! process-global buffer drained by [`take`]. `madmax-obs` exports the
//! drained records into the same Chrome trace JSON as the simulated
//! schedule, so the explorer's price/assemble/report wall-clock profile
//! is viewable next to the simulated timeline in Perfetto.
//!
//! Without the feature the guard is a zero-sized type with an empty
//! `Drop`, [`take`] always returns an empty vector, and the optimizer
//! removes every call — the hot evaluation paths cost nothing. The
//! [`SpanRecord`] type itself is available unconditionally so consumers
//! never need `cfg` at call sites.

use serde::{Deserialize, Serialize};

/// One recorded span: a named phase on one thread, in microseconds since
/// the first span of the process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Phase name, e.g. `"price.flat"` or `"assemble.pipeline"`.
    pub name: String,
    /// Start offset in microseconds from the process profiling epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Dense per-process thread index (0 = first thread that recorded).
    pub thread: u64,
}

#[cfg(feature = "self-profile")]
mod imp {
    use super::SpanRecord;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    static RECORDING: AtomicBool = AtomicBool::new(false);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static THREAD_INDEX: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    pub fn set_recording(on: bool) {
        if on {
            epoch();
        }
        RECORDING.store(on, Ordering::Relaxed);
    }

    pub fn is_recording() -> bool {
        RECORDING.load(Ordering::Relaxed)
    }

    pub fn take() -> Vec<SpanRecord> {
        std::mem::take(&mut *SPANS.lock().unwrap())
    }

    /// RAII guard: records the span on drop.
    #[derive(Debug)]
    pub struct Span {
        name: &'static str,
        start: Option<Instant>,
    }

    pub fn span(name: &'static str) -> Span {
        let start = is_recording().then(Instant::now);
        Span { name, start }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(start) = self.start else { return };
            let dur_us = start.elapsed().as_secs_f64() * 1e6;
            let start_us = start.duration_since(epoch()).as_secs_f64() * 1e6;
            let thread = THREAD_INDEX.with(|t| *t);
            SPANS.lock().unwrap().push(SpanRecord {
                name: self.name.to_owned(),
                start_us,
                dur_us,
                thread,
            });
        }
    }
}

#[cfg(not(feature = "self-profile"))]
mod imp {
    use super::SpanRecord;

    pub fn set_recording(_on: bool) {}

    pub fn is_recording() -> bool {
        false
    }

    pub fn take() -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Zero-sized no-op guard (the `self-profile` feature is off).
    #[derive(Debug)]
    pub struct Span;

    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }
}

/// Switches span recording on or off for the whole process. The first
/// activation pins the profiling epoch all `start_us` offsets are
/// measured from. No-op without the `self-profile` feature.
pub fn set_recording(on: bool) {
    imp::set_recording(on);
}

/// Whether spans are currently being recorded (always `false` without
/// the `self-profile` feature).
pub fn is_recording() -> bool {
    imp::is_recording()
}

/// Drains every span recorded so far (empty without the feature).
pub fn take() -> Vec<SpanRecord> {
    imp::take()
}

/// Opens a span guard; the span is recorded when the guard drops.
pub fn span(name: &'static str) -> imp::Span {
    imp::span(name)
}

pub use imp::Span;

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "self-profile"))]
    #[test]
    fn disabled_profile_records_nothing() {
        set_recording(true);
        {
            let _s = span("test.phase");
        }
        assert!(!is_recording());
        assert!(take().is_empty());
        set_recording(false);
    }

    #[cfg(feature = "self-profile")]
    #[test]
    fn enabled_profile_records_spans() {
        set_recording(true);
        {
            let _s = span("test.enabled");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_recording(false);
        let spans = take();
        let s = spans
            .iter()
            .find(|s| s.name == "test.enabled")
            .expect("span recorded");
        assert!(s.dur_us >= 1000.0);
        assert!(s.start_us >= 0.0);
    }
}
