//! Fault-event materialization: seeded exponential fatal/transient
//! streams plus fixed maintenance windows, snapped onto the exact
//! integer duration grid.
//!
//! The discipline mirrors `materialize_arrivals` in `madmax-serve`
//! bit-for-bit: xorshift64* uniforms, exponential gaps snapped per-draw
//! with `grid_units_round`, and clocks accumulated in checked `i64`
//! grid units — so the same [`FaultSpec`](crate::FaultSpec) and seed
//! produce the same event stream on any platform at any thread count.

use madmax_core::steady::grid_units_round;
use madmax_hw::units::Seconds;
use serde::{Deserialize, Serialize};

use crate::spec::FaultSpec;

/// Timestamps must stay below `2^52` grid units (the exact-`f64` range).
const MAX_UNITS: i64 = 1 << 52;

/// What a fault event does to the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A device loss: in-flight serving work on the lost slots is
    /// interrupted and capacity is degraded until recovery.
    Fatal,
    /// A link degradation / straggler: decode and prefill step costs
    /// are scaled by the slowdown factor for the window.
    Transient,
    /// A planned drain: capacity is degraded for the window, in-flight
    /// work on the drained slots is requeued.
    Maintenance,
}

/// One materialized fault: a grid-time window and its effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Window start, grid units.
    pub at: i64,
    /// Window end (recovery), grid units.
    pub until: i64,
    /// The effect.
    pub kind: FaultKind,
    /// Serving slots lost for the window.
    pub slots_lost: usize,
    /// Step-cost multiplier for the window, percent (>= 100; `100`
    /// means no slowdown).
    pub slowdown_pct: u32,
}

/// Errors from fault materialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The spec is invalid (message from
    /// [`FaultSpec::validate`](crate::FaultSpec::validate)).
    Spec(String),
    /// A fault time left the exact integer grid range.
    GridRange(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Spec(m) => write!(f, "invalid fault spec: {m}"),
            FaultError::GridRange(m) => write!(f, "fault stream leaves the exact grid: {m}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// xorshift64*: the same tiny seeded PRNG the arrival layer uses, so
/// fault streams share its reproducibility contract.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform draw in `(0, 1]` from the high 53 bits.
fn uniform_01(state: &mut u64) -> f64 {
    let bits = next_u64(state) >> 11;
    (bits + 1) as f64 / (1u64 << 53) as f64
}

/// Seed 0 is a fixed point of xorshift; remap it (same constant as the
/// arrival layer).
fn seed_state(seed: u64) -> u64 {
    if seed == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        seed
    }
}

/// One exponential draw with mean `mean` seconds, snapped to grid units.
fn exp_units(state: &mut u64, mean: f64, what: &str) -> Result<i64, FaultError> {
    let gap = -uniform_01(state).ln() * mean;
    grid_units_round(Seconds::new(gap))
        .ok_or_else(|| FaultError::GridRange(format!("{what} gap {gap} s off-grid")))
}

/// Advances a grid clock, failing when it leaves the exact range.
fn advance(at: i64, delta: i64, what: &str) -> Result<i64, FaultError> {
    at.checked_add(delta)
        .filter(|t| *t < MAX_UNITS)
        .ok_or_else(|| FaultError::GridRange(format!("{what} clock beyond 2^52 grid units")))
}

/// Materializes the exponential transient-fault stream (slowdown
/// windows, no capacity loss) over `[0, horizon)`.
fn transient_stream(
    out: &mut Vec<FaultEvent>,
    seed: u64,
    mtbf: f64,
    duration: f64,
    horizon: i64,
    slowdown_pct: u32,
) -> Result<(), FaultError> {
    let mut state = seed_state(seed);
    let mut at = 0i64;
    loop {
        let gap = exp_units(&mut state, mtbf, "fault")?;
        at = advance(at, gap, "fault")?;
        if at >= horizon {
            return Ok(());
        }
        let len = exp_units(&mut state, duration, "fault-duration")?;
        let until = advance(at, len, "fault-duration")?;
        out.push(FaultEvent {
            at,
            until,
            kind: FaultKind::Transient,
            slots_lost: 0,
            slowdown_pct,
        });
    }
}

/// Materializes a fault spec into a time-sorted event stream over
/// `[0, horizon)` grid units. Fatal windows last exactly the recovery
/// time; transient windows draw exponential durations; maintenance
/// windows are fixed. An empty stream (inactive spec, or a horizon
/// before the first draw) is a valid result.
///
/// # Errors
///
/// [`FaultError::Spec`] for invalid specs, [`FaultError::GridRange`]
/// when any window leaves the exact grid range.
pub fn materialize_faults(spec: &FaultSpec, horizon: i64) -> Result<Vec<FaultEvent>, FaultError> {
    spec.validate().map_err(FaultError::Spec)?;
    if horizon < 0 {
        return Err(FaultError::Spec(format!(
            "horizon {horizon} grid units must be >= 0"
        )));
    }
    let mut events = Vec::new();
    if let Some(mtbf) = spec.mtbf {
        let recovery = grid_units_round(Seconds::new(spec.recovery)).ok_or_else(|| {
            FaultError::GridRange(format!("recovery {} s off-grid", spec.recovery))
        })?;
        let mut state = seed_state(spec.seed);
        let mut at = 0i64;
        loop {
            let gap = exp_units(&mut state, mtbf, "fatal")?;
            at = advance(at, gap, "fatal")?;
            if at >= horizon {
                break;
            }
            events.push(FaultEvent {
                at,
                until: advance(at, recovery, "fatal-recovery")?,
                kind: FaultKind::Fatal,
                slots_lost: spec.slots_lost,
                slowdown_pct: 100,
            });
        }
    }
    if let Some(mtbf) = spec.transient_mtbf {
        // A distinct stream seed so the transient draw sequence is
        // independent of whether the fatal stream is enabled.
        transient_stream(
            &mut events,
            spec.seed ^ 0x6C62_272E_07BB_0142,
            mtbf,
            spec.transient_duration,
            horizon,
            spec.slowdown_pct,
        )?;
    }
    for (i, w) in spec.maintenance.iter().enumerate() {
        let at = grid_units_round(Seconds::new(w.start)).ok_or_else(|| {
            FaultError::GridRange(format!(
                "maintenance window {i} start {} s off-grid",
                w.start
            ))
        })?;
        if at >= horizon {
            continue;
        }
        let len = grid_units_round(Seconds::new(w.duration)).ok_or_else(|| {
            FaultError::GridRange(format!(
                "maintenance window {i} duration {} s off-grid",
                w.duration
            ))
        })?;
        events.push(FaultEvent {
            at,
            until: advance(at, len, "maintenance")?,
            kind: FaultKind::Maintenance,
            slots_lost: w.slots_lost,
            slowdown_pct: 100,
        });
    }
    events.sort_by_key(|e| (e.at, e.until));
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MaintenanceWindow;
    use madmax_core::steady::grid_units_round as snap;

    fn units(secs: f64) -> i64 {
        snap(Seconds::new(secs)).unwrap()
    }

    #[test]
    fn streams_are_seed_deterministic_and_sorted() {
        let spec = FaultSpec::fatal(2.0, 0.5, 9).with_transients(3.0, 0.25, 140);
        let h = units(60.0);
        let a = materialize_faults(&spec, h).unwrap();
        let b = materialize_faults(&spec, h).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        assert!(a.iter().all(|e| e.at < h && e.until >= e.at));
        let other = materialize_faults(&FaultSpec::fatal(2.0, 0.5, 10), h).unwrap();
        let fatal: Vec<_> = a.iter().filter(|e| e.kind == FaultKind::Fatal).collect();
        assert_ne!(
            fatal.iter().map(|e| e.at).collect::<Vec<_>>(),
            other.iter().map(|e| e.at).collect::<Vec<_>>(),
            "seed changes the stream"
        );
    }

    #[test]
    fn mtbf_scales_the_event_count() {
        let h = units(600.0);
        let frequent = materialize_faults(&FaultSpec::fatal(2.0, 0.1, 4), h).unwrap();
        let rare = materialize_faults(&FaultSpec::fatal(20.0, 0.1, 4), h).unwrap();
        assert!(
            frequent.len() > 5 * rare.len(),
            "{} vs {}",
            frequent.len(),
            rare.len()
        );
    }

    #[test]
    fn transient_stream_is_independent_of_the_fatal_stream() {
        let h = units(120.0);
        let both = materialize_faults(
            &FaultSpec::fatal(5.0, 0.5, 3).with_transients(4.0, 0.5, 150),
            h,
        )
        .unwrap();
        let alone = materialize_faults(
            &FaultSpec::none()
                .with_transients(4.0, 0.5, 150)
                .with_seed(3),
            h,
        )
        .unwrap();
        let both_t: Vec<_> = both
            .iter()
            .filter(|e| e.kind == FaultKind::Transient)
            .copied()
            .collect();
        assert_eq!(both_t, alone);
    }

    #[test]
    fn maintenance_windows_land_at_their_fixed_times() {
        let spec = FaultSpec::none().with_maintenance(MaintenanceWindow {
            start: 1.5,
            duration: 0.5,
            slots_lost: 2,
        });
        let ev = materialize_faults(&spec, units(10.0)).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].at, units(1.5));
        assert_eq!(ev[0].until, units(1.5) + units(0.5));
        assert_eq!(ev[0].slots_lost, 2);
        assert_eq!(ev[0].kind, FaultKind::Maintenance);
        // Beyond the horizon: dropped.
        let none = materialize_faults(&spec, units(1.0)).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn inactive_specs_materialize_empty() {
        assert!(materialize_faults(&FaultSpec::none(), units(100.0))
            .unwrap()
            .is_empty());
    }
}
