//! # madmax-fault
//!
//! The fault model: what happens to a MAD-Max deployment when the fleet
//! *breaks*. Three pieces, consumed across the stack:
//!
//! 1. **Fault events** ([`FaultSpec`] → [`materialize_faults`]) — a
//!    seeded, deterministic stream of [`FaultEvent`]s materialized onto
//!    the exact integer duration grid (`2^-38` s, the same discipline as
//!    `materialize_arrivals` in `madmax-serve`): per-fleet exponential
//!    MTBF for **fatal** faults (devices lost until recovery, in-flight
//!    work interrupted), exponential **transient** faults (link
//!    degradation / stragglers as a step-cost slowdown factor), and
//!    planned **maintenance** windows at fixed times. The same seed
//!    produces the same stream bit-for-bit at any thread count.
//! 2. **Checkpoint/restart pricing** ([`CheckpointModel`]) — the
//!    checkpoint write is the per-device restart-critical state
//!    (parameters + optimizer from `MemoryBreakdown`) drained through
//!    the fabric via the existing collective model; restart is the
//!    reload of the same bytes. Plans that replicate state (DDP-style)
//!    pay bigger checkpoints than plans that shard it (FSDP-style) —
//!    exactly the asymmetry that makes the goodput-optimal plan diverge
//!    from the latency-optimal one as MTBF shrinks.
//! 3. **Expected goodput** ([`expected_goodput`]) — the closed-form
//!    Young/Daly-style evaluator: with exponential failures at rate
//!    `λ = 1/MTBF`, restart cost `R`, and checkpoint segments of `τ`
//!    useful seconds plus a `δ`-second write, the expected wall time to
//!    commit one segment is `E[T] = (1/λ + R)(e^{λ(τ+δ)} − 1)` and the
//!    goodput fraction is `τ / E[T]`. [`young_daly_interval`] gives the
//!    first-order optimal interval `√(2δ·MTBF)`, and [`replay_goodput`]
//!    cross-checks the closed form against a seeded discrete-event
//!    replay of the same failure process (see `crates/fault/README.md`
//!    for the documented tolerance).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod events;
mod goodput;
mod spec;

pub use events::{materialize_faults, FaultError, FaultEvent, FaultKind};
pub use goodput::{
    expected_goodput, replay_goodput, young_daly_interval, CheckpointModel, GoodputReport,
};
pub use spec::{FaultSpec, MaintenanceWindow, RetryPolicy};
