//! Fault-process and retry-policy configuration.

use serde::{Deserialize, Serialize};

/// A planned maintenance window: a fixed span during which part of the
/// fleet's capacity is drained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// Window start, seconds.
    pub start: f64,
    /// Window length, seconds.
    pub duration: f64,
    /// Serving slots drained for the window.
    pub slots_lost: usize,
}

/// The fault process of a deployment: seeded stochastic fatal and
/// transient faults plus planned maintenance, all materialized
/// deterministically onto the integer duration grid by
/// [`materialize_faults`](crate::materialize_faults).
///
/// `mtbf` and `transient_mtbf` are *fleet-level* mean times between
/// failures in seconds (at cluster scale, per-device MTBFs of weeks
/// compress to fleet MTBFs of hours).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Mean time between fatal faults, seconds. `None` disables the
    /// fatal stream.
    pub mtbf: Option<f64>,
    /// Capacity-recovery time after a fatal fault, seconds.
    pub recovery: f64,
    /// Serving slots lost per fatal fault until recovery.
    pub slots_lost: usize,
    /// Mean time between transient faults (link degradation,
    /// stragglers), seconds. `None` disables the transient stream.
    pub transient_mtbf: Option<f64>,
    /// Mean transient-fault duration, seconds (exponential).
    pub transient_duration: f64,
    /// Step-cost multiplier during transient windows, percent
    /// (`150` = 1.5x slower; must be >= 100).
    pub slowdown_pct: u32,
    /// Planned maintenance windows.
    pub maintenance: Vec<MaintenanceWindow>,
    /// Training checkpoint interval, seconds of useful work between
    /// checkpoint writes. `None` picks the Young/Daly optimum.
    pub checkpoint_interval: Option<f64>,
    /// PRNG seed for the fatal and transient streams.
    pub seed: u64,
}

impl FaultSpec {
    /// A fatal-faults-only process: fleet MTBF `mtbf` seconds,
    /// `recovery`-second recovery windows costing one slot, seeded.
    pub fn fatal(mtbf: f64, recovery: f64, seed: u64) -> Self {
        FaultSpec {
            mtbf: Some(mtbf),
            recovery,
            slots_lost: 1,
            transient_mtbf: None,
            transient_duration: 0.0,
            slowdown_pct: 100,
            maintenance: Vec::new(),
            checkpoint_interval: None,
            seed,
        }
    }

    /// A fault-free process (no streams, no windows); useful as a
    /// baseline spec that still exercises the fault plumbing.
    pub fn none() -> Self {
        FaultSpec {
            mtbf: None,
            recovery: 0.0,
            slots_lost: 0,
            transient_mtbf: None,
            transient_duration: 0.0,
            slowdown_pct: 100,
            maintenance: Vec::new(),
            checkpoint_interval: None,
            seed: 0,
        }
    }

    /// Adds a transient-fault stream: mean time between faults, mean
    /// duration, and the step slowdown in percent.
    #[must_use]
    pub fn with_transients(mut self, mtbf: f64, duration: f64, slowdown_pct: u32) -> Self {
        self.transient_mtbf = Some(mtbf);
        self.transient_duration = duration;
        self.slowdown_pct = slowdown_pct;
        self
    }

    /// Adds a planned maintenance window.
    #[must_use]
    pub fn with_maintenance(mut self, window: MaintenanceWindow) -> Self {
        self.maintenance.push(window);
        self
    }

    /// Sets the serving slots lost per fatal fault.
    #[must_use]
    pub fn with_slots_lost(mut self, slots: usize) -> Self {
        self.slots_lost = slots;
        self
    }

    /// Sets the training checkpoint interval (seconds of useful work).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, secs: f64) -> Self {
        self.checkpoint_interval = Some(secs);
        self
    }

    /// Sets the PRNG seed for the stochastic streams.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// A human-readable message for non-positive MTBFs/durations, a
    /// sub-100% slowdown, or a malformed maintenance window.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(m) = self.mtbf {
            if !m.is_finite() || m <= 0.0 {
                return Err(format!("mtbf {m} must be a positive number of seconds"));
            }
            if !self.recovery.is_finite() || self.recovery < 0.0 {
                return Err(format!("recovery {} must be >= 0 seconds", self.recovery));
            }
        }
        if let Some(m) = self.transient_mtbf {
            if !m.is_finite() || m <= 0.0 {
                return Err(format!(
                    "transient_mtbf {m} must be a positive number of seconds"
                ));
            }
            if !self.transient_duration.is_finite() || self.transient_duration <= 0.0 {
                return Err(format!(
                    "transient_duration {} must be > 0 seconds",
                    self.transient_duration
                ));
            }
            if self.slowdown_pct < 100 {
                return Err(format!(
                    "slowdown_pct {} must be >= 100 (a percentage multiplier)",
                    self.slowdown_pct
                ));
            }
        }
        for (i, w) in self.maintenance.iter().enumerate() {
            if !w.start.is_finite() || w.start < 0.0 || !w.duration.is_finite() || w.duration <= 0.0
            {
                return Err(format!(
                    "maintenance window {i}: start {} and duration {} must be >= 0 and > 0",
                    w.start, w.duration
                ));
            }
        }
        if let Some(ci) = self.checkpoint_interval {
            if !ci.is_finite() || ci <= 0.0 {
                return Err(format!(
                    "checkpoint_interval {ci} must be a positive number of seconds"
                ));
            }
        }
        Ok(())
    }

    /// Whether the spec produces any fault events at all.
    pub fn is_active(&self) -> bool {
        self.mtbf.is_some() || self.transient_mtbf.is_some() || !self.maintenance.is_empty()
    }
}

/// What happens to in-flight serving requests interrupted by a fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Interruptions a request survives before it is dropped: the
    /// `max_retries + 1`-th interruption fails the request.
    pub max_retries: u32,
    /// Drop an interrupted request outright once it has been in the
    /// system longer than this many seconds, regardless of retry budget.
    pub timeout: Option<f64>,
    /// Delay before an interrupted request may be re-admitted, seconds.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            timeout: None,
            backoff: 0.0,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `max_retries` times with no backoff or
    /// timeout.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..Self::default()
        }
    }

    /// Sets the re-admission backoff, seconds.
    #[must_use]
    pub fn with_backoff(mut self, secs: f64) -> Self {
        self.backoff = secs;
        self
    }

    /// Sets the in-system timeout, seconds.
    #[must_use]
    pub fn with_timeout(mut self, secs: f64) -> Self {
        self.timeout = Some(secs);
        self
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// A human-readable message for negative backoff or a non-positive
    /// timeout.
    pub fn validate(&self) -> Result<(), String> {
        if !self.backoff.is_finite() || self.backoff < 0.0 {
            return Err(format!("backoff {} must be >= 0 seconds", self.backoff));
        }
        if let Some(t) = self.timeout {
            if !t.is_finite() || t <= 0.0 {
                return Err(format!("timeout {t} must be > 0 seconds"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_knobs() {
        assert!(FaultSpec::fatal(3600.0, 30.0, 7).validate().is_ok());
        assert!(FaultSpec::none().validate().is_ok());
        assert!(FaultSpec::fatal(0.0, 30.0, 7).validate().is_err());
        assert!(FaultSpec::fatal(3600.0, -1.0, 7).validate().is_err());
        assert!(FaultSpec::none()
            .with_transients(60.0, 5.0, 50)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_maintenance(MaintenanceWindow {
                start: -1.0,
                duration: 10.0,
                slots_lost: 1,
            })
            .validate()
            .is_err());
        assert!(FaultSpec::fatal(10.0, 1.0, 0)
            .with_checkpoint_interval(0.0)
            .validate()
            .is_err());
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::retries(2)
            .with_backoff(-0.5)
            .validate()
            .is_err());
        assert!(RetryPolicy::retries(2)
            .with_timeout(0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn activity_reflects_configured_streams() {
        assert!(!FaultSpec::none().is_active());
        assert!(FaultSpec::fatal(10.0, 1.0, 1).is_active());
        assert!(FaultSpec::none().with_transients(5.0, 1.0, 120).is_active());
        assert!(FaultSpec::none()
            .with_maintenance(MaintenanceWindow {
                start: 1.0,
                duration: 2.0,
                slots_lost: 1,
            })
            .is_active());
    }
}
