//! Checkpoint/restart pricing and the expected-goodput evaluator.
//!
//! ## Checkpoint pricing
//!
//! The restart-critical state of a training job is its parameters plus
//! optimizer state — exactly the `params` and `optimizer` terms of
//! [`MemoryBreakdown`]. [`CheckpointModel::price`] drains that
//! per-device footprint through the fabric as a point-to-point transfer
//! priced by the existing [`CollectiveModel`], so a plan that shards
//! state (FSDP) checkpoints proportionally faster than one that
//! replicates it (DDP) — the asymmetry the goodput search exploits.
//!
//! ## The closed form
//!
//! With exponential failures at rate `λ = 1/MTBF` and restart cost `R`
//! (state reload; lost work is accounted by the restart-from-checkpoint
//! semantics), a checkpoint segment of `τ` useful seconds plus a
//! `δ`-second write completes in expected wall time
//!
//! ```text
//! E[T] = (1/λ + R) · (e^{λ(τ+δ)} − 1)
//! ```
//!
//! (the classic exact result for work that must complete between
//! failures, restarting from the last checkpoint). The goodput fraction
//! is `τ / E[T]`; as `λ → 0` it approaches `τ / (τ + δ)`, the pure
//! checkpoint tax. [`young_daly_interval`] gives the first-order
//! optimal `τ ≈ √(2δ·MTBF)`, and [`replay_goodput`] validates the
//! closed form by discrete-event replay of the same process under a
//! seeded PRNG (tolerance documented in `crates/fault/README.md`).

use madmax_core::collective::CollectiveModel;
use madmax_hw::units::{ByteCount, Seconds};
use madmax_hw::ClusterSpec;
use madmax_parallel::{CollectiveKind, CommPosition, CommReq, CommScope, MemoryBreakdown, Urgency};
use serde::{Deserialize, Serialize};

/// Priced checkpoint/restart costs of one plan on one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointModel {
    /// Restart-critical state per device (params + optimizer).
    pub state_bytes: ByteCount,
    /// Checkpoint write time (state drained through the fabric).
    pub write: Seconds,
    /// Restart cost: state reload (lost work since the last checkpoint
    /// is accounted separately by the goodput formula).
    pub restart: Seconds,
}

impl CheckpointModel {
    /// Prices checkpoint/restart from a plan's per-device memory
    /// breakdown: the write drains `params + optimizer` bytes through
    /// the fabric (point-to-point, global scope — checkpoint traffic
    /// crosses the slowest level toward persistent storage), the
    /// restart reloads the same bytes.
    pub fn price(
        memory: &MemoryBreakdown,
        cluster: &ClusterSpec,
        collectives: &dyn CollectiveModel,
    ) -> Self {
        let state_bytes = memory.params + memory.optimizer;
        let req = CommReq {
            collective: CollectiveKind::PointToPoint,
            scope: CommScope::Global,
            group_size: 2,
            payload: state_bytes,
            urgency: Urgency::Blocking,
            position: CommPosition::AfterCompute,
            label: "ckpt.write".to_owned(),
        };
        let write = collectives.time(&req, cluster);
        CheckpointModel {
            state_bytes,
            write,
            restart: write,
        }
    }
}

/// The expected-goodput evaluation of one plan under one fault process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputReport {
    /// Fleet MTBF, seconds.
    pub mtbf: f64,
    /// Checkpoint interval evaluated (useful seconds between writes).
    pub interval: f64,
    /// Checkpoint write time, seconds.
    pub checkpoint_write: f64,
    /// Restart cost, seconds.
    pub restart: f64,
    /// Iterations per second with no faults and no checkpoints.
    pub fault_free_throughput: f64,
    /// Useful time / expected wall time, in `(0, 1]`.
    pub goodput_fraction: f64,
    /// Expected iterations per second under faults:
    /// `goodput_fraction * fault_free_throughput`.
    pub effective_throughput: f64,
}

/// The Young/Daly first-order optimal checkpoint interval
/// `√(2 · write · MTBF)` seconds, floored at one checkpoint write.
pub fn young_daly_interval(write: f64, mtbf: f64) -> f64 {
    (2.0 * write * mtbf).sqrt().max(write)
}

/// Evaluates the closed-form expected goodput of a job with iteration
/// time `iter_time` seconds, checkpointing every `interval` useful
/// seconds, under exponential failures with the given fleet `mtbf` and
/// a `restart`-second restart. All times in seconds; `interval`,
/// `iter_time`, and `mtbf` must be positive (checked by callers via
/// [`FaultSpec::validate`](crate::FaultSpec::validate)).
pub fn expected_goodput(
    iter_time: f64,
    write: f64,
    restart: f64,
    mtbf: f64,
    interval: f64,
) -> GoodputReport {
    let lambda = 1.0 / mtbf;
    let span = interval + write;
    // E[T] per segment; e^{λ·span} overflows only for spans thousands of
    // MTBFs long, where the fraction is indistinguishable from 0.
    let expected = (mtbf + restart) * ((lambda * span).exp() - 1.0);
    let fraction = if expected.is_finite() && expected > 0.0 {
        (interval / expected).min(1.0)
    } else {
        0.0
    };
    let fault_free = 1.0 / iter_time;
    GoodputReport {
        mtbf,
        interval,
        checkpoint_write: write,
        restart,
        fault_free_throughput: fault_free,
        goodput_fraction: fraction,
        effective_throughput: fraction * fault_free,
    }
}

/// xorshift64* (the crate-wide PRNG) for the replay.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn uniform_01(state: &mut u64) -> f64 {
    let bits = next_u64(state) >> 11;
    (bits + 1) as f64 / (1u64 << 53) as f64
}

/// Cross-checks [`expected_goodput`] by seeded discrete-event replay:
/// simulates `segments` checkpoint segments under the same exponential
/// failure process (draw time-to-failure; a failure inside the segment
/// pays the elapsed time plus the restart and re-runs the segment from
/// the checkpoint) and returns the measured goodput fraction
/// `useful / wall`. Deterministic for a fixed seed.
pub fn replay_goodput(
    write: f64,
    restart: f64,
    mtbf: f64,
    interval: f64,
    seed: u64,
    segments: usize,
) -> f64 {
    let mut state = if seed == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        seed
    };
    let span = interval + write;
    let mut wall = 0.0f64;
    let mut useful = 0.0f64;
    for _ in 0..segments {
        // Memoryless failures: each attempt draws a fresh exponential
        // time-to-failure.
        loop {
            let ttf = -uniform_01(&mut state).ln() * mtbf;
            if ttf >= span {
                wall += span;
                useful += interval;
                break;
            }
            wall += ttf + restart;
        }
    }
    if wall > 0.0 {
        useful / wall
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_core::collective::HierarchicalNccl;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::{memory_per_device, Plan, Workload};

    #[test]
    fn checkpoint_price_scales_with_per_device_state() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let mem = memory_per_device(&model, &sys, &plan, &Workload::pretrain());
        let ckpt = CheckpointModel::price(&mem, &sys, &HierarchicalNccl);
        assert!(ckpt.write.as_secs() > 0.0);
        assert_eq!(ckpt.restart, ckpt.write);
        // Doubling the state doubles the drain time under a linear
        // bandwidth model.
        let double = MemoryBreakdown {
            params: mem.params * 2.0,
            optimizer: mem.optimizer * 2.0,
            ..mem
        };
        let ckpt2 = CheckpointModel::price(&double, &sys, &HierarchicalNccl);
        assert!((ckpt2.write.as_secs() / ckpt.write.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_degrades_as_mtbf_shrinks() {
        let at = |mtbf: f64| expected_goodput(1.0, 10.0, 10.0, mtbf, 100.0).goodput_fraction;
        let plentiful = at(1e6);
        let scarce = at(100.0);
        assert!(plentiful > scarce, "{plentiful} vs {scarce}");
        // With effectively no faults the only tax is the checkpoint
        // write: 100 / 110.
        assert!((plentiful - 100.0 / 110.0).abs() < 1e-3, "{plentiful}");
        assert!(scarce > 0.0 && scarce < 1.0);
    }

    #[test]
    fn young_daly_interval_is_near_the_closed_form_optimum() {
        let (write, restart, mtbf) = (30.0, 30.0, 3600.0);
        let tau = young_daly_interval(write, mtbf);
        let at = |t: f64| expected_goodput(1.0, write, restart, mtbf, t).goodput_fraction;
        let best = at(tau);
        // Both an aggressive and a lazy interval must do worse.
        assert!(best >= at(tau / 4.0), "{best} vs {}", at(tau / 4.0));
        assert!(best >= at(tau * 4.0), "{best} vs {}", at(tau * 4.0));
    }

    #[test]
    fn replay_matches_the_closed_form_within_tolerance() {
        // The documented cross-check: 200k seeded segments vs the exact
        // expectation, within 2% relative (see crates/fault/README.md).
        for (write, restart, mtbf, interval) in [
            (10.0, 10.0, 3600.0, 268.0),
            (30.0, 60.0, 1800.0, 300.0),
            (5.0, 5.0, 120.0, 34.0),
        ] {
            let closed = expected_goodput(1.0, write, restart, mtbf, interval).goodput_fraction;
            let replayed = replay_goodput(write, restart, mtbf, interval, 42, 200_000);
            let rel = (closed - replayed).abs() / closed;
            assert!(
                rel < 0.02,
                "closed {closed} vs replay {replayed} (rel {rel})"
            );
        }
    }

    #[test]
    fn replay_is_seed_deterministic() {
        let a = replay_goodput(10.0, 10.0, 600.0, 100.0, 7, 10_000);
        let b = replay_goodput(10.0, 10.0, 600.0, 100.0, 7, 10_000);
        assert_eq!(a, b);
        let c = replay_goodput(10.0, 10.0, 600.0, 100.0, 8, 10_000);
        assert_ne!(a, c);
    }
}
